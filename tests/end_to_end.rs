//! Cross-crate integration tests: the full pipeline from dataset generation
//! through key generation, simulated-GPU evaluation and reconstruction.

use std::time::Duration;

use gpu_pir_repro::pir_core::{Application, PrivateInferenceSystem, SystemConfig};
use gpu_pir_repro::pir_ml::datasets::{DatasetKind, DatasetScale, SyntheticDataset};
use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::{
    CodesignParams, CpuPirServer, FullTableMode, GpuPirServer, PirClient, PirServer, PirTable,
    ShardedGpuServer,
};
use gpu_pir_repro::pir_serve::{PirServeRuntime, ServeConfig, TableConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn reconstructed_matches_reference(app: &Application, system: &PrivateInferenceSystem, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for session in app.test_workload().sessions.iter().take(3) {
        let outcome = system.infer(session, &mut rng).expect("inference succeeds");
        for (&index, embedding) in &outcome.embeddings {
            let expected = app.embeddings().row(index as usize);
            for (a, b) in embedding.iter().zip(expected) {
                assert!((a - b).abs() < 1e-3, "index {index}");
            }
        }
        // Every requested index is either served or explicitly dropped.
        let unique: std::collections::HashSet<u64> = session.iter().copied().collect();
        assert_eq!(
            outcome.embeddings.len() + outcome.dropped.len(),
            unique
                .len()
                .max(outcome.embeddings.len() + outcome.dropped.len())
                .min(unique.len() + outcome.dropped.len())
        );
    }
}

#[test]
fn every_application_runs_privately_end_to_end() {
    for (kind, seed) in [
        (DatasetKind::MovieLens20M, 1u64),
        (DatasetKind::TaobaoAds, 2),
        (DatasetKind::WikiText2, 3),
    ] {
        let dataset = SyntheticDataset::generate(kind, DatasetScale::Small, 20, seed);
        let app = Application::new(dataset, seed);
        let system = PrivateInferenceSystem::deploy(&app, SystemConfig::plain(PrfKind::SipHash, 8));
        reconstructed_matches_reference(&app, &system, seed);
    }
}

#[test]
fn codesigned_deployment_reduces_cost_without_breaking_correctness() {
    let dataset = SyntheticDataset::generate(DatasetKind::MovieLens20M, DatasetScale::Small, 30, 4);
    let app = Application::new(dataset, 4);

    let plain = PrivateInferenceSystem::deploy(&app, SystemConfig::plain(PrfKind::SipHash, 16));
    let codesigned = PrivateInferenceSystem::deploy(
        &app,
        SystemConfig::with_codesign(
            PrfKind::SipHash,
            CodesignParams {
                colocation_degree: 2,
                hot_entries: 96,
                q_hot: 6,
                full_mode: FullTableMode::Pbr { bin_size: 64 },
            },
        ),
    );
    reconstructed_matches_reference(&app, &codesigned, 5);

    let mut rng = StdRng::seed_from_u64(6);
    let session = &app.test_workload().sessions[0];
    let plain_outcome = plain.infer(session, &mut rng).unwrap();
    let codesigned_outcome = codesigned.infer(session, &mut rng).unwrap();
    // The co-designed deployment does far less server work per inference than
    // issuing 16 independent full-table queries.
    assert!(codesigned_outcome.server_prf_calls < plain_outcome.server_prf_calls);
}

#[test]
fn query_counts_do_not_depend_on_private_demand() {
    // Privacy invariant: two inferences with very different numbers of real
    // lookups issue exactly the same number of PIR queries and bytes.
    let dataset = SyntheticDataset::generate(DatasetKind::TaobaoAds, DatasetScale::Small, 20, 7);
    let app = Application::new(dataset, 7);
    let system = PrivateInferenceSystem::deploy(
        &app,
        SystemConfig::with_codesign(
            PrfKind::SipHash,
            CodesignParams {
                colocation_degree: 0,
                hot_entries: 128,
                q_hot: 2,
                full_mode: FullTableMode::Pbr { bin_size: 512 },
            },
        ),
    );
    let mut rng = StdRng::seed_from_u64(8);
    let light = system.infer(&[1], &mut rng).unwrap();
    let heavy_indices: Vec<u64> = (0..40u64)
        .map(|i| i * 13 % app.dataset().table_entries)
        .collect();
    let heavy = system.infer(&heavy_indices, &mut rng).unwrap();
    assert_eq!(light.queries_issued, heavy.queries_issued);
    assert_eq!(light.upload_bytes, heavy.upload_bytes);
}

#[test]
fn cpu_and_gpu_servers_are_interchangeable_parties() {
    // The two non-colluding servers need not run the same implementation.
    let table = PirTable::generate(2000, 32, |row, offset| (row as u8) ^ (offset as u8));
    let client = PirClient::new(table.schema(), PrfKind::Aes128);
    let gpu = GpuPirServer::with_defaults(table.clone(), PrfKind::Aes128);
    let cpu = CpuPirServer::new(table.clone(), PrfKind::Aes128, 2);
    let mut rng = StdRng::seed_from_u64(9);

    for _ in 0..5 {
        let index = rng.gen_range(0..table.entries());
        let query = client.query(index, &mut rng);
        let r0 = gpu.answer(&query.to_server(0)).unwrap();
        let r1 = cpu.answer(&query.to_server(1)).unwrap();
        assert_eq!(
            client.reconstruct(&query, &r0, &r1).unwrap(),
            table.entry(index)
        );
    }
    assert!(gpu.metrics().queries_served >= 5);
    assert!(cpu.metrics().queries_served >= 5);
}

#[test]
fn sharded_and_single_device_servers_are_interchangeable_parties() {
    // A table sharded across 4 simulated devices on one side and a single
    // V100 on the other still reconstructs: sharding is server-local.
    let table = PirTable::generate(1 << 10, 24, |row, offset| {
        (row as u8).wrapping_add(offset as u8)
    });
    let client = PirClient::new(table.schema(), PrfKind::SipHash);
    let sharded = ShardedGpuServer::with_v100_shards(table.clone(), PrfKind::SipHash, 4).unwrap();
    let single = GpuPirServer::with_defaults(table.clone(), PrfKind::SipHash);
    let mut rng = StdRng::seed_from_u64(10);

    for _ in 0..4 {
        let index = rng.gen_range(0..table.entries());
        let query = client.query(index, &mut rng);
        let r0 = sharded.answer(&query.to_server(0)).unwrap();
        let r1 = single.answer(&query.to_server(1)).unwrap();
        assert_eq!(
            client.reconstruct(&query, &r0, &r1).unwrap(),
            table.entry(index)
        );
    }
}

#[test]
fn serving_runtime_batches_concurrent_queries_across_tables() {
    // End-to-end through the new serving layer: two hosted tables, many
    // concurrent clients, every row must reconstruct and dynamic batching
    // must demonstrably coalesce queries (occupancy > 1).
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(42).build().unwrap());
    let shapes: &[(&str, u64, usize)] = &[("users", 1 << 10, 16), ("items", 1 << 9, 8)];
    for &(name, entries, entry_bytes) in shapes {
        let table = PirTable::generate(entries, entry_bytes, |row, offset| {
            (row as u8).wrapping_mul(13).wrapping_add(offset as u8)
        });
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(32)
            .max_wait(Duration::from_millis(3))
            .build()
            .unwrap();
        runtime.register_table(name, table, config).unwrap();
    }

    let mut joins = Vec::new();
    for client in 0..8u64 {
        let handle = runtime.handle();
        joins.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + client);
            for _ in 0..20 {
                let (name, entries, entry_bytes) = if rng.gen_bool(0.5) {
                    ("users", 1u64 << 10, 16usize)
                } else {
                    ("items", 1u64 << 9, 8usize)
                };
                let index = rng.gen_range(0..entries);
                let row = handle
                    .query(name, &format!("tenant-{}", client % 3), index)
                    .unwrap()
                    .wait()
                    .unwrap();
                let expected: Vec<u8> = (0..entry_bytes)
                    .map(|offset| (index as u8).wrapping_mul(13).wrapping_add(offset as u8))
                    .collect();
                assert_eq!(row, expected, "row {index} of '{name}'");
            }
        }));
    }
    for join in joins {
        join.join().unwrap();
    }

    let stats = runtime.stats();
    assert_eq!(stats.answered(), 8 * 20);
    assert_eq!(stats.shed(), 0);
    assert!(
        stats.batch_occupancy() > 1.0,
        "8 concurrent clients must coalesce (occupancy {:.2})",
        stats.batch_occupancy()
    );
    for table in &stats.tables {
        assert!(table.e2e_p99_ms.is_some());
        assert!(table.max_batch <= 32);
    }
    runtime.shutdown();
}
