//! Workspace-level property tests on the DPF ↔ PIR stack: invariants that
//! span crates (field arithmetic, PRFs, DPF evaluation, table multiplication).

use gpu_pir_repro::pir_dpf::{
    eval_full_domain, eval_point, fused_eval_matmul, generate_keys, DpfParams, EvalStrategy,
    NullRecorder,
};
use gpu_pir_repro::pir_field::{reconstruct_lanes, Ring128, ShareMatrix};
use gpu_pir_repro::pir_prf::{build_prf, GgmPrg, PrfKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table_from_seed(seed: u64, rows: usize, lanes: usize) -> ShareMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<u32> = (0..rows * lanes).map(|_| rng.gen()).collect();
    ShareMatrix::from_rows(rows, lanes, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DPF correctness holds for every PRF family the paper evaluates.
    #[test]
    fn dpf_correctness_for_every_prf(
        prf_index in 0usize..5,
        domain in 2u64..200,
        seed in any::<u64>(),
    ) {
        let kind = PrfKind::ALL[prf_index];
        let prg = GgmPrg::new(build_prf(kind));
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = seed % domain;
        let params = DpfParams::for_domain(domain);
        let (a, b) = generate_keys(&prg, &params, alpha, Ring128::ONE, &mut rng);
        for j in [0, alpha, domain - 1, (alpha + 1) % domain] {
            let sum = eval_point(&prg, &a, j) + eval_point(&prg, &b, j);
            let expected = if j == alpha { Ring128::ONE } else { Ring128::ZERO };
            prop_assert_eq!(sum, expected);
        }
    }

    /// Full-domain expansion agrees with point evaluation for every strategy,
    /// and the fused table product retrieves exactly the target row.
    #[test]
    fn full_pipeline_retrieves_the_target_row(
        rows in 2usize..150,
        lanes in 1usize..8,
        seed in any::<u64>(),
    ) {
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let mut rng = StdRng::seed_from_u64(seed);
        let target = (seed as usize) % rows;
        let table = table_from_seed(seed ^ 0xabc, rows, lanes);
        let params = DpfParams::for_domain(rows as u64);
        let (a, b) = generate_keys(&prg, &params, target as u64, Ring128::ONE, &mut rng);

        for strategy in [
            EvalStrategy::LevelByLevel,
            EvalStrategy::MemoryBounded { chunk: 16 },
            EvalStrategy::BranchParallel,
        ] {
            let va = eval_full_domain(&prg, &a, strategy, &NullRecorder);
            let vb = eval_full_domain(&prg, &b, strategy, &NullRecorder);
            prop_assert_eq!(va[target] + vb[target], Ring128::ONE);

            let sa = fused_eval_matmul(&prg, &a, &table, strategy, &NullRecorder);
            let sb = fused_eval_matmul(&prg, &b, &table, strategy, &NullRecorder);
            let row = reconstruct_lanes(&Vec::from(sa), &Vec::from(sb));
            prop_assert_eq!(row.as_slice(), table.row(target));
        }
    }

    /// A single party's expanded share vector reveals (statistically) nothing
    /// obvious about the target index: it is never the plain indicator vector
    /// and its non-zero support covers essentially the whole domain.
    #[test]
    fn single_share_is_not_an_indicator(
        domain in 8u64..256,
        seed in any::<u64>(),
    ) {
        let prg = GgmPrg::new(build_prf(PrfKind::Chacha20));
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = seed % domain;
        let params = DpfParams::for_domain(domain);
        let (a, _b) = generate_keys(&prg, &params, alpha, Ring128::ONE, &mut rng);
        let share = eval_full_domain(&prg, &a, EvalStrategy::LevelByLevel, &NullRecorder);
        let nonzero = share.iter().filter(|v| **v != Ring128::ZERO).count() as u64;
        prop_assert!(nonzero >= domain - 1);
        prop_assert!(share[alpha as usize] != Ring128::ONE || domain <= 2);
    }
}
