//! Multi-node sharded serving, end to end over real sockets: per party, two
//! shard-owner processes (threads here) × two replicas each behind TCP
//! listeners, fronted by a [`ClusterRouter`] that owns the client-facing
//! endpoint. The client is an ordinary [`PirSession`] — it cannot tell the
//! cluster from one giant server.
//!
//! ```text
//! cargo run --example cluster --release
//! ```
//!
//! Three claims are demonstrated, in order:
//!
//! 1. **Bit-identical answers** — the sharded cluster's rows equal both the
//!    reference table and a real single-process deployment, row for row.
//! 2. **Failover without loss** — one replica of shard 1 is killed on both
//!    parties mid-run (sockets reset, listener closed, runtime shut down);
//!    the routers redial the surviving replica and every in-flight and
//!    subsequent query still completes.
//! 3. **Reload fence under churn** — a writer hot-reloads rows on both
//!    shards throughout; every reconstructed row is either the old or the
//!    new value, never a mix, and `staged == flipped` proves no update was
//!    left half-applied.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gpu_pir_repro::pir_cluster::{
    ClusterConfig, ClusterMembership, ClusterRouter, ShardEndpoints, ShardMap,
};
use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::PirTable;
use gpu_pir_repro::pir_serve::{PirServeRuntime, ServeConfig, TableConfig, WireFrontend};
use gpu_pir_repro::pir_wire::{PirSession, PirTransport, TcpDialer, TcpTransport, WireError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENTRIES: u64 = 1 << 12;
const ENTRY_BYTES: usize = 32;
const SHARDS: usize = 2;
const QUERIES: usize = 240;
const WINDOW: usize = 8;
/// Rows the churn writer flips (one per shard for 2 shards over 4096 rows).
const CHURNED: [u64; 2] = [100, 3000];
const FILLS: [u8; 3] = [0xA1, 0xB2, 0xC3];

fn reference_table() -> PirTable {
    PirTable::generate(ENTRIES, ENTRY_BYTES, |row, offset| {
        (row as u8).wrapping_mul(31).wrapping_add(offset as u8)
    })
}

fn runtime_for(view: PirTable, seed: u64) -> Arc<PirServeRuntime> {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(seed).build().unwrap());
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .max_batch(8)
        .max_wait(Duration::from_micros(50))
        .build()
        .unwrap();
    runtime.register_table("emb", view, config).unwrap();
    Arc::new(runtime)
}

/// A TCP endpoint whose accept loop hands every connection to `serve`, and
/// that can be killed abruptly: listener closed, every live socket reset.
struct TcpEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    fn spawn<F>(serve: F) -> Self
    where
        F: Fn(Box<dyn PirTransport>) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind listener");
        let addr = listener.local_addr().expect("local addr");
        let stop = Arc::new(AtomicBool::new(false));
        let accepted: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let serve = Arc::new(serve);
        let accept = {
            let (stop, accepted, workers) = (stop.clone(), accepted.clone(), workers.clone());
            std::thread::spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if stop.load(Ordering::SeqCst) {
                        return; // the unblocking dummy connection
                    }
                    accepted
                        .lock()
                        .unwrap()
                        .push(stream.try_clone().expect("clone stream"));
                    let serve = Arc::clone(&serve);
                    workers.lock().unwrap().push(std::thread::spawn(move || {
                        let transport = TcpTransport::from_stream(stream).expect("wrap stream");
                        serve(Box::new(transport));
                    }));
                }
            })
        };
        Self {
            addr,
            stop,
            accepted,
            workers,
            accept: Some(accept),
        }
    }

    /// Tear the endpoint down the unfriendly way a crashed process would:
    /// reset every live connection and stop accepting new ones.
    fn kill(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for stream in self.accepted.lock().unwrap().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop so it observes the stop flag and drops
        // the listener (subsequent dials are then refused, not hung).
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept loop exits");
        }
        for worker in self.workers.lock().unwrap().drain(..) {
            worker.join().expect("serve thread exits");
        }
    }
}

/// One shard replica: its own runtime over its masked view, behind TCP.
struct Replica {
    endpoint: TcpEndpoint,
    runtime: Arc<PirServeRuntime>,
}

impl Replica {
    fn spawn(view: PirTable, party: u8, seed: u64) -> Self {
        let runtime = runtime_for(view, seed);
        let handle = runtime.handle();
        let endpoint = TcpEndpoint::spawn(move |transport| {
            // Per-frame errors end the connection; the replica lives on.
            let _ = WireFrontend::new(handle.clone(), party).serve(transport);
        });
        Self { endpoint, runtime }
    }

    fn kill(&mut self) {
        self.endpoint.kill();
        self.runtime.shutdown();
    }
}

fn check_row(index: u64, row: &[u8], reference: &PirTable) {
    if CHURNED.contains(&index) {
        let original = reference.entry(index);
        let ok = row == original.as_slice()
            || FILLS
                .iter()
                .any(|&fill| row.len() == ENTRY_BYTES && row.iter().all(|&byte| byte == fill));
        assert!(
            ok,
            "row {index} reconstructed as a mixed-version value: {row:02x?}"
        );
    } else {
        assert_eq!(row, reference.entry(index).as_slice(), "row {index}");
    }
}

/// A real single-process deployment (full table per party over loopback),
/// the baseline the cluster must be indistinguishable from.
fn single_process_session(table: &PirTable) -> PirSession {
    let mut ends: Vec<Box<dyn PirTransport>> = Vec::new();
    for party in 0..2u8 {
        let runtime = runtime_for(table.clone(), 0x51_000 + u64::from(party));
        let handle = runtime.handle();
        let (client, server) = gpu_pir_repro::pir_wire::loopback_pair();
        std::thread::spawn(move || {
            let _ = WireFrontend::new(handle, party).serve(Box::new(server));
            runtime.shutdown();
        });
        ends.push(Box::new(client));
    }
    let t1 = ends.pop().unwrap();
    let t0 = ends.pop().unwrap();
    PirSession::connect(t0, t1, "baseline").expect("baseline session")
}

fn main() {
    println!("pir-cluster: {SHARDS} shards x 2 replicas x 2 parties over TCP\n");
    let table = reference_table();
    let map = ShardMap::new(ENTRIES, SHARDS).expect("shard map");
    let views = map.provision(&table);

    // 8 replica processes: one runtime per (shard, party, replica). The
    // replicas of a shard hold identical masked views but deliberately
    // different seeds — answer shares are a deterministic linear reduction,
    // so a failover mid-query cannot change the reconstructed row.
    let mut replicas: Vec<Vec<Vec<Replica>>> = Vec::new(); // [party][shard][replica]
    let mut routers: Vec<Arc<ClusterRouter>> = Vec::new();
    for party in 0..2u8 {
        let mut party_replicas = Vec::new();
        let mut endpoints = Vec::new();
        for (shard, view) in views.iter().enumerate() {
            let pair: Vec<Replica> = (0..2)
                .map(|replica| {
                    let seed =
                        0xEE_0000 + 0x100 * u64::from(party) + 0x10 * shard as u64 + replica as u64;
                    Replica::spawn(view.clone(), party, seed)
                })
                .collect();
            endpoints.push(ShardEndpoints::new(
                pair.iter()
                    .map(|replica| {
                        Arc::new(TcpDialer::with_timeouts(
                            replica.endpoint.addr,
                            Duration::from_millis(200),
                            Duration::from_secs(2),
                        )) as Arc<dyn gpu_pir_repro::pir_wire::Dialer>
                    })
                    .collect(),
            ));
            party_replicas.push(pair);
        }
        replicas.push(party_replicas);
        let config = ClusterConfig {
            probe_interval: Some(Duration::from_millis(50)),
        };
        let membership = ClusterMembership::new(endpoints);
        routers.push(Arc::new(
            ClusterRouter::connect(&membership, &config, party).expect("router connect"),
        ));
        println!("router party {party}: connected to {SHARDS} shards, fence calibrated");
    }

    // Each router's client-facing endpoint is itself TCP.
    let mut router_endpoints: Vec<TcpEndpoint> = routers
        .iter()
        .map(|router| {
            let router = Arc::clone(router);
            TcpEndpoint::spawn(move |transport| {
                let _ = router.serve(transport);
            })
        })
        .collect();
    let connect_session = |tenant: &str, window: usize| -> PirSession {
        let t0 = Box::new(TcpTransport::connect(router_endpoints[0].addr).expect("dial router 0"));
        let t1 = Box::new(TcpTransport::connect(router_endpoints[1].addr).expect("dial router 1"));
        PirSession::connect_with_window(t0, t1, tenant, window).expect("session connect")
    };

    // ---- Phase 1: bit-identical to the single-process deployment --------
    let mut session = connect_session("cluster-demo", 1);
    let mut baseline = single_process_session(&table);
    let mut rng = StdRng::seed_from_u64(17);
    let mut indices = vec![0, 2047, 2048, ENTRIES - 1]; // subtree boundary rows
    indices.extend((0..8).map(|_| rng.gen_range(0..ENTRIES)));
    let mut cluster_time = Duration::ZERO;
    let mut baseline_time = Duration::ZERO;
    for &index in &indices {
        let started = std::time::Instant::now();
        let clustered = session.query("emb", index, &mut rng).expect("cluster row");
        cluster_time += started.elapsed();
        let started = std::time::Instant::now();
        let single = baseline
            .query("emb", index, &mut rng)
            .expect("baseline row");
        baseline_time += started.elapsed();
        assert_eq!(clustered, single, "row {index} differs from single-process");
        assert_eq!(
            clustered,
            table.entry(index),
            "row {index} differs from table"
        );
    }
    drop(baseline);
    println!(
        "phase 1: {} rows bit-identical to the single-process server \
         (cluster avg {:?}, single-process avg {:?})\n",
        indices.len(),
        cluster_time / indices.len() as u32,
        baseline_time / indices.len() as u32
    );

    // ---- Phase 2: pipelined load + reload churn + a mid-run crash -------
    let stop_churn = Arc::new(AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop_churn);
        let mut admin = connect_session("cluster-admin", 1);
        std::thread::spawn(move || {
            let mut updates = 0u64;
            while !stop.load(Ordering::SeqCst) {
                for &index in &CHURNED {
                    let fill = FILLS[updates as usize % FILLS.len()];
                    admin
                        .update_entry("emb", index, &[fill; ENTRY_BYTES])
                        .expect("hot reload");
                    updates += 1;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            updates
        })
    };

    let mut load = connect_session("cluster-load", WINDOW);
    let mut remaining: VecDeque<u64> = (0..QUERIES)
        .map(|i| match i % 4 {
            0 => CHURNED[i % CHURNED.len()],
            _ => rng.gen_range(0..ENTRIES),
        })
        .collect();
    let (mut completed, mut in_flight, mut resubmits, mut killed) = (0usize, 0usize, 0usize, false);
    while completed < QUERIES {
        while in_flight < WINDOW {
            let Some(index) = remaining.pop_front() else {
                break;
            };
            load.submit("emb", index, &mut rng).expect("submit");
            in_flight += 1;
        }
        let done = load.poll().expect("session healthy");
        in_flight -= 1;
        match done.outcome {
            Ok(row) => {
                check_row(done.index, &row, &table);
                completed += 1;
            }
            // A double version straddle or a briefly replica-less shard:
            // typed, retryable, and the row is *not* handed over garbled.
            Err(err @ WireError::VersionSkew { .. })
            | Err(err @ WireError::Remote { shed: true, .. }) => {
                resubmits += 1;
                assert!(resubmits < QUERIES * 20, "resubmit budget exhausted: {err}");
                remaining.push_back(done.index);
            }
            Err(err) => panic!("query {} failed hard: {err}", done.index),
        }
        if !killed && completed >= QUERIES / 2 {
            // Crash one replica of shard 1 on BOTH parties, mid-pipeline.
            for party_replicas in &mut replicas {
                party_replicas[1][0].kill();
            }
            killed = true;
            println!("killed shard 1 replica 0 on both parties at {completed} completions");
        }
    }
    stop_churn.store(true, Ordering::SeqCst);
    let updates = churn.join().expect("churn writer exits");
    assert!(killed, "the crash must happen mid-run");
    println!(
        "phase 2: {QUERIES} queries completed ({resubmits} typed resubmits), {updates} hot reloads"
    );

    // ---- The ledger: failover taken, no update left half-applied --------
    for router in &routers {
        let stats = router.stats();
        assert!(
            stats.shards[1].failovers >= 1,
            "party {}: shard 1 must have failed over: {stats:?}",
            stats.party
        );
        assert_eq!(
            stats.updates_staged, updates,
            "party {}: every reload staged",
            stats.party
        );
        assert_eq!(
            stats.updates_flipped, updates,
            "party {}: every staged reload flipped",
            stats.party
        );
        assert_eq!(stats.fences[0].cluster_version, 1 + updates);
        assert_eq!(
            stats.shards[1].stale_replicas, 1,
            "party {}: the dead replica is excluded from failover",
            stats.party
        );
        assert!(stats.shards.iter().all(|shard| shard.in_flight == 0));
        println!(
            "party {}: shard-1 failovers {}, fence retries {}, lagged {}, staged/flipped {}/{}",
            stats.party,
            stats.shards[1].failovers,
            stats.fence_retries,
            stats.fence_lagged,
            stats.updates_staged,
            stats.updates_flipped,
        );
    }

    // Clean teardown: sessions first, then routers, then replicas.
    drop(session);
    drop(load);
    for router in &routers {
        router.shutdown();
    }
    for endpoint in &mut router_endpoints {
        endpoint.kill();
    }
    for party_replicas in &mut replicas {
        for (shard, shard_replicas) in party_replicas.iter_mut().enumerate() {
            for (index, replica) in shard_replicas.iter_mut().enumerate() {
                if !(shard == 1 && index == 0) {
                    replica.kill(); // (1, 0) already died mid-run
                }
            }
        }
    }
    println!("\ncluster example finished: bit-identical, crash-tolerant, reload-safe");
}
