//! Quickstart: privately fetch one embedding row from two PIR servers.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This walks the protocol of the paper's Figure 2: the client turns its
//! private index into two DPF keys, each (non-colluding) server expands its
//! key against the embedding table on the simulated GPU, and the client adds
//! the two answer shares to recover exactly the row it asked for — while
//! neither server learns which row that was.

use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::{GpuPirServer, PirClient, PirServer, PirTable};
use rand::SeedableRng;

fn main() {
    // A small embedding table: 4,096 entries of 64 bytes.
    let table = PirTable::generate(4096, 64, |row, offset| {
        (row as u8).wrapping_mul(31).wrapping_add(offset as u8)
    });
    println!(
        "Serving a table of {} entries x {} B ({} KB total) from two servers.",
        table.entries(),
        table.entry_bytes(),
        table.size_bytes() / 1000
    );

    // Each server holds a replica of the table; ChaCha20 is the GPU-friendly PRF.
    let server0 = GpuPirServer::with_defaults(table.clone(), PrfKind::Chacha20);
    let server1 = GpuPirServer::with_defaults(table.clone(), PrfKind::Chacha20);
    let client = PirClient::new(table.schema(), PrfKind::Chacha20);

    // The client's private index.
    let secret_index = 1234u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let query = client.query(secret_index, &mut rng);
    println!(
        "Client uploads {} B to each server (vs {} KB for the naive linear scheme).",
        query.upload_bytes_per_server(),
        table.entries() * 16 / 1000
    );

    // Each server answers independently; it only ever sees one DPF key.
    let response0 = server0
        .answer(&query.to_server(0))
        .expect("server 0 answers");
    let response1 = server1
        .answer(&query.to_server(1))
        .expect("server 1 answers");

    // The client combines the two additive shares.
    let row = client
        .reconstruct(&query, &response0, &response1)
        .expect("shares combine");
    assert_eq!(row, table.entry(secret_index));
    println!(
        "Reconstructed entry {} correctly: {:02x?}...",
        secret_index,
        &row[..8]
    );

    // The simulated V100 reports what the evaluation cost.
    let report = server0.last_report().expect("a kernel ran");
    println!(
        "Server kernel: {} PRF calls, estimated {:.3} ms on the simulated V100, utilization {:.1}%.",
        report.counters.prf_calls,
        report.latency_ms(),
        report.utilization() * 100.0
    );
}
