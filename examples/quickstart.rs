//! Quickstart: privately fetch one embedding row from two PIR servers.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This walks the protocol of the paper's Figure 2: the client turns its
//! private index into two DPF keys, each (non-colluding) server expands its
//! key against the embedding table on the simulated GPU, and the client adds
//! the two answer shares to recover exactly the row it asked for — while
//! neither server learns which row that was.
//!
//! The exchange crosses the versioned `pir-wire` boundary as real bytes:
//! each server decodes a frame carrying *its* key only (the pair never
//! leaves the client), and all communication numbers printed below are
//! measured on the encoded frames. For the full client API — catalog
//! discovery, sessions over TCP, hot reload — see `examples/wire_tcp.rs`.

use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::{GpuPirServer, PirClient, PirServer, PirTable};
use gpu_pir_repro::pir_wire::{decode_message, encode_message, QueryMsg, WireMessage};
use rand::SeedableRng;

fn main() {
    // A small embedding table: 4,096 entries of 64 bytes.
    let table = PirTable::generate(4096, 64, |row, offset| {
        (row as u8).wrapping_mul(31).wrapping_add(offset as u8)
    });
    println!(
        "Serving a table of {} entries x {} B ({} KB total) from two servers.",
        table.entries(),
        table.entry_bytes(),
        table.size_bytes() / 1000
    );

    // Each server holds a replica of the table; ChaCha20 is the GPU-friendly PRF.
    let server0 = GpuPirServer::with_defaults(table.clone(), PrfKind::Chacha20);
    let server1 = GpuPirServer::with_defaults(table.clone(), PrfKind::Chacha20);
    let client = PirClient::new(table.schema(), PrfKind::Chacha20);

    // The client's private index.
    let secret_index = 1234u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let query = client.query(secret_index, &mut rng);

    // Each server receives its own key projection as an encoded wire frame;
    // there is no frame that could carry the pair.
    let frames: Vec<Vec<u8>> = (0..2u8)
        .map(|party| {
            encode_message(&WireMessage::Query(QueryMsg {
                table: "embeddings".to_string(),
                tenant: "quickstart".to_string(),
                query: query.to_server(party),
            }))
        })
        .collect();
    println!(
        "Client uploads a {} B frame to each server — {} B of that is the query record \
         (vs {} KB for the naive linear scheme).",
        frames[0].len(),
        query.upload_bytes_per_server(),
        table.entries() * 16 / 1000
    );

    // Server side: decode the frame, answer the single-key query.
    let answer = |server: &GpuPirServer, frame: &[u8]| {
        let decoded = decode_message(frame).expect("well-formed frame");
        let WireMessage::Query(request) = decoded else {
            panic!("expected a query frame");
        };
        let response = server.answer(&request.query).expect("server answers");
        encode_message(&WireMessage::Response(
            gpu_pir_repro::pir_wire::ResponseMsg {
                response,
                table_version: 0, // v1 framing: unstamped
            },
        ))
    };
    let reply0 = answer(&server0, &frames[0]);
    let reply1 = answer(&server1, &frames[1]);
    println!(
        "Each server returns a {} B response frame.",
        reply0.len().max(reply1.len())
    );

    // The client decodes the two frames and combines the additive shares.
    let decode_share = |frame: &[u8]| match decode_message(frame).expect("well-formed reply") {
        WireMessage::Response(msg) => msg.response,
        other => panic!("expected a response frame, got {}", other.name()),
    };
    let row = client
        .reconstruct(&query, &decode_share(&reply0), &decode_share(&reply1))
        .expect("shares combine");
    assert_eq!(row, table.entry(secret_index));
    println!(
        "Reconstructed entry {} correctly: {:02x?}...",
        secret_index,
        &row[..8]
    );

    // The simulated V100 reports what the evaluation cost.
    let report = server0.last_report().expect("a kernel ran");
    println!(
        "Server kernel: {} PRF calls, estimated {:.3} ms on the simulated V100, utilization {:.1}%.",
        report.counters.prf_calls,
        report.latency_ms(),
        report.utilization() * 100.0
    );
}
