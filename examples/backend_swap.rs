//! Backend-swap acceptance gate: the same skewed workload served once on
//! the simulated (cost-model) backend and once on the measured in-process
//! host backend, with bit-identical reconstructions required.
//!
//! ```text
//! cargo run --example backend_swap --release
//! ```
//!
//! The two backends share one kernel-execution path and differ only in
//! what a "transfer" is (accounted bytes vs real staged memcpys) and how
//! time is attributed (cost model vs wall clock) — so swapping them must
//! change *nothing* about the answers. This example drives a skewed
//! two-table load (one sharded, one pooled) through both configurations
//! with the same seed, asserts every reconstructed row matches its
//! ground truth *and* its counterpart from the other backend, and prints
//! each runtime's resident-plan ledger: plan-directed residency should
//! upload each table slice once per replica and avoid every repeat
//! transfer, on both backends alike.

use std::time::Duration;

use gpu_pir_repro::gpu_sim::BackendKind;
use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::PirTable;
use gpu_pir_repro::pir_serve::{PirServeRuntime, ServeConfig, StatsSnapshot, TableConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(29).wrapping_add(offset as u8)
}

/// (name, entries, entry_bytes, shards, replicas, traffic weight of 10).
const TABLES: &[(&str, u64, usize, usize, usize, u32)] =
    &[("hot", 1 << 10, 16, 2, 2, 7), ("cold", 1 << 8, 8, 1, 1, 3)];

/// Run the deterministic skewed load on one backend; returns the rows in
/// submission order plus the final stats snapshot.
fn run_workload(backend: BackendKind) -> (Vec<Vec<u8>>, StatsSnapshot) {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .seed(7_117)
            .build()
            .expect("valid serve config"),
    );
    for &(name, entries, entry_bytes, shards, replicas, _) in TABLES {
        let table = PirTable::generate(entries, entry_bytes, fill);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .shards(shards)
            .replicas(replicas)
            .backend(backend)
            .max_batch(8)
            .max_wait(Duration::from_millis(1))
            .build()
            .expect("valid table config");
        runtime
            .register_table(name, table, config)
            .expect("register table");
    }

    let handle = runtime.handle();
    let mut rng = StdRng::seed_from_u64(31_337);
    let mut rows = Vec::new();
    for wave in 0..12 {
        // Waves of concurrent queries so the formers actually batch.
        let pending: Vec<_> = (0..16)
            .map(|_| {
                let mut ticket = rng.gen_range(0..10u32);
                let &(name, entries, entry_bytes, ..) = TABLES
                    .iter()
                    .find(|&&(.., weight)| {
                        let hit = ticket < weight;
                        if !hit {
                            ticket -= weight;
                        }
                        hit
                    })
                    .expect("weights sum to 10");
                let index = rng.gen_range(0..entries);
                let query = handle.query(name, "swap", index).expect("query admitted");
                (index, entry_bytes, query)
            })
            .collect();
        for (index, entry_bytes, query) in pending {
            let row = query.wait().expect("query answered");
            let expected: Vec<u8> = (0..entry_bytes).map(|o| fill(index, o)).collect();
            assert_eq!(row, expected, "wave {wave}: row {index} reconstructs");
            rows.push(row);
        }
    }
    let stats = runtime.stats();
    runtime.shutdown();
    (rows, stats)
}

fn report(label: &str, stats: &StatsSnapshot) {
    println!("--- {label}: resident-plan ledger ---");
    for table in &stats.tables {
        let plan = table.plan;
        println!(
            "  {:<5} resident {:>7} B | transfers issued {:>2}, avoided {:>3} | plan cache {} hits / {} misses",
            table.table,
            plan.resident_bytes,
            plan.transfers_issued,
            plan.transfers_avoided,
            plan.plan_cache_hits,
            plan.plan_cache_misses,
        );
        assert!(
            plan.resident_bytes > 0,
            "{label}: table stays plan-resident"
        );
        assert!(
            plan.transfers_avoided > 0,
            "{label}: residency must avoid repeat uploads"
        );
    }
    println!(
        "  fleet: {} resident bytes leased now, peak {} B\n",
        stats.resident_bytes_in_use, stats.peak_resident_bytes
    );
    assert_eq!(stats.resident_bytes_in_use, 0, "all leases returned");
    assert!(stats.peak_resident_bytes > 0, "launches leased plan bytes");
}

fn main() {
    println!("backend swap: identical skewed load on simulated and host backends\n");

    let (simulated_rows, simulated_stats) = run_workload(BackendKind::Simulated);
    let (host_rows, host_stats) = run_workload(BackendKind::Host);

    assert_eq!(
        simulated_rows, host_rows,
        "the two backends must reconstruct bit-identical rows"
    );
    println!(
        "{} queries answered per backend, all rows bit-identical across backends\n",
        simulated_rows.len()
    );

    report("simulated backend", &simulated_stats);
    report("host backend", &host_stats);

    println!("backend swap acceptance gate passed");
}
