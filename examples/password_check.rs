//! Compromised-password checking with GPU-accelerated PIR.
//!
//! ```text
//! cargo run --example password_check --release
//! ```
//!
//! The paper notes its GPU DPF can accelerate any PIR application, giving
//! compromised-password checking as an example. Here a client checks whether
//! its password's fingerprint appears in a breach corpus hosted by two
//! servers, without revealing which bucket it looked up.

use gpu_pir_repro::pir_prf::{sha256, PrfKind};
use gpu_pir_repro::pir_protocol::{GpuPirServer, PirClient, PirServer, PirTable};
use rand::SeedableRng;

/// Number of buckets in the breach corpus (each bucket stores a Bloom-style
/// bitmap of breached fingerprints).
const BUCKETS: u64 = 1 << 14;
/// Bytes per bucket.
const BUCKET_BYTES: usize = 64;

fn bucket_and_probe(password: &str) -> (u64, usize) {
    let digest = sha256(password.as_bytes());
    let bucket = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")) % BUCKETS;
    let probe = (digest[8] as usize) % (BUCKET_BYTES * 8);
    (bucket, probe)
}

fn main() {
    // Build the breach corpus from a list of known-compromised passwords.
    let breached = ["hunter2", "password123", "letmein", "qwerty", "123456"];
    let mut corpus = vec![vec![0u8; BUCKET_BYTES]; BUCKETS as usize];
    for password in breached {
        let (bucket, probe) = bucket_and_probe(password);
        corpus[bucket as usize][probe / 8] |= 1 << (probe % 8);
    }
    let table = PirTable::from_entries(&corpus);
    println!(
        "Breach corpus: {} buckets x {} B = {} MB, replicated on two servers.",
        BUCKETS,
        BUCKET_BYTES,
        table.size_bytes() / 1_000_000
    );

    let server0 = GpuPirServer::with_defaults(table.clone(), PrfKind::Chacha20);
    let server1 = GpuPirServer::with_defaults(table.clone(), PrfKind::Chacha20);
    let client = PirClient::new(table.schema(), PrfKind::Chacha20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);

    for candidate in ["hunter2", "correct horse battery staple"] {
        let (bucket, probe) = bucket_and_probe(candidate);
        let query = client.query(bucket, &mut rng);
        let r0 = server0.answer(&query.to_server(0)).expect("server 0");
        let r1 = server1.answer(&query.to_server(1)).expect("server 1");
        let row = client.reconstruct(&query, &r0, &r1).expect("reconstruct");
        let compromised = row[probe / 8] & (1 << (probe % 8)) != 0;
        println!(
            "'{candidate}': {} (query: {} B up / {} B down per server, bucket hidden from servers)",
            if compromised {
                "COMPROMISED"
            } else {
                "not found"
            },
            query.upload_bytes_per_server(),
            r0.size_bytes()
        );
        assert_eq!(compromised, breached.contains(&candidate));
    }
}
