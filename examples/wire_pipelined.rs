//! Pipelined multiplexed wire sessions vs the lockstep v1 protocol, on the
//! same skewed load — with queue-depth autoscaling and concurrent hot
//! reloads.
//!
//! ```text
//! cargo run --example wire_pipelined --release
//! ```
//!
//! Two phases run the identical skewed two-table workload (hot table takes
//! ~70% of queries) through the wire boundary:
//!
//! * **lockstep** — the servers are capped at protocol v1, so the session
//!   falls back to one-query-at-a-time. Every device batch carries one
//!   query: the batcher never sees two requests at once.
//! * **pipelined** — v2 servers, a 32-deep session window. The batcher sees
//!   the whole window, forms real batches, the autoscaler grows the hot
//!   table's replica pool under the backlog, and responses come back **out
//!   of order** (fast cold-table answers overtake slow hot-table batches).
//!   Meanwhile an admin session hammers the hot table with hot reloads;
//!   version-stamped responses catch every query whose two shares straddled
//!   a reload, and the session retries it — zero garbage reconstructions.
//!
//! The printed comparison is *modeled device throughput* (answered queries
//! per second of simulated device makespan), the same metric the
//! `replicated` example reports: pipelining must deliver at least 2x.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::PirTable;
use gpu_pir_repro::pir_serve::{
    AutoscalePolicy, PirServeRuntime, ServeConfig, StatsSnapshot, TableConfig, WireFrontend,
};
use gpu_pir_repro::pir_wire::{loopback_pair, PirSession, PirTransport, PROTOCOL_V1, PROTOCOL_V2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HOT_ENTRIES: u64 = 1 << 13;
const HOT_BYTES: usize = 32;
const COLD_ENTRIES: u64 = 1 << 9;
const COLD_BYTES: usize = 8;
const QUERIES: usize = 320;
const WINDOW: usize = 32;

/// Hot-table rows the admin churns during the pipelined phase, and the
/// rotation of fill bytes it writes. A mixed-version reconstruction would
/// yield a row matching *none* of the allowed fills.
const CHURNED_ROWS: [u64; 4] = [11, 97, 1024, 8000];
const CHURN_FILLS: [u8; 3] = [0xA1, 0xB2, 0xC3];

fn hot_fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(31).wrapping_add(offset as u8)
}

fn cold_fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(13).wrapping_add(offset as u8)
}

fn build_runtime(seed: u64) -> Arc<PirServeRuntime> {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .queue_capacity(8192)
            .per_tenant_quota(4096)
            .device_budget(16)
            .seed(seed)
            .build()
            .expect("valid serve config"),
    );
    let hot = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .replica_range(1, 4)
        .autoscale(AutoscalePolicy {
            high_depth: 8,
            low_depth: 1,
            sustain_ticks: 2,
            tick: Duration::from_millis(1),
        })
        .max_batch(16)
        .max_wait(Duration::from_millis(1))
        .build()
        .expect("valid hot config");
    runtime
        .register_table(
            "hot",
            PirTable::generate(HOT_ENTRIES, HOT_BYTES, hot_fill),
            hot,
        )
        .expect("register hot");
    let cold = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .max_batch(16)
        .max_wait(Duration::from_millis(1))
        .build()
        .expect("valid cold config");
    runtime
        .register_table(
            "cold",
            PirTable::generate(COLD_ENTRIES, COLD_BYTES, cold_fill),
            cold,
        )
        .expect("register cold");
    Arc::new(runtime)
}

/// Serve one loopback connection with a version-capped frontend, returning
/// the client end.
fn serve_conn(
    runtime: &Arc<PirServeRuntime>,
    party: u8,
    max_version: u16,
) -> (Box<dyn PirTransport>, std::thread::JoinHandle<()>) {
    let (client_end, server_end) = loopback_pair();
    let frontend = WireFrontend::with_max_version(runtime.handle(), party, max_version);
    let worker = std::thread::spawn(move || {
        frontend
            .serve(Box::new(server_end))
            .expect("serve connection");
    });
    (Box::new(client_end), worker)
}

/// The skewed query schedule, identical across both phases.
fn schedule(rng: &mut StdRng) -> Vec<(&'static str, u64)> {
    (0..QUERIES)
        .map(|_| {
            if rng.gen_range(0..10u32) < 7 {
                ("hot", rng.gen_range(0..HOT_ENTRIES))
            } else {
                ("cold", rng.gen_range(0..COLD_ENTRIES))
            }
        })
        .collect()
}

/// Check one reconstructed row against every value it could legitimately
/// hold (pre-churn fill, or any churn rotation fill for churned rows).
fn check_row(table: &str, index: u64, row: &[u8]) {
    let pristine: Vec<u8> = match table {
        "hot" => (0..HOT_BYTES).map(|o| hot_fill(index, o)).collect(),
        _ => (0..COLD_BYTES).map(|o| cold_fill(index, o)).collect(),
    };
    if row == pristine {
        return;
    }
    if table == "hot" && CHURNED_ROWS.contains(&index) {
        for fill in CHURN_FILLS {
            if row.iter().all(|&b| b == fill) {
                return;
            }
        }
    }
    panic!(
        "row {index} of '{table}' reconstructed to garbage — a mixed-version \
         share pair slipped through: {row:02x?}"
    );
}

fn fleet_makespan_s(stats: &StatsSnapshot) -> f64 {
    stats
        .tables
        .iter()
        .map(|t| t.device_makespan_s())
        .fold(0.0f64, f64::max)
}

struct PhaseOutcome {
    stats: StatsSnapshot,
    wall: Duration,
    out_of_order: u64,
    version_retries: u64,
    skew_failures: u64,
}

/// Phase 1: v1-capped servers, lockstep session.
fn run_lockstep() -> PhaseOutcome {
    let runtime = build_runtime(1001);
    let (t0, w0) = serve_conn(&runtime, 0, PROTOCOL_V1);
    let (t1, w1) = serve_conn(&runtime, 1, PROTOCOL_V1);
    let mut session = PirSession::connect_with_window(t0, t1, "loadgen", WINDOW).expect("connect");
    assert_eq!(session.negotiated_version(), PROTOCOL_V1);
    assert_eq!(session.window(), 1, "v1 fallback is lockstep");

    let mut rng = StdRng::seed_from_u64(2026);
    let started = Instant::now();
    for (table, index) in schedule(&mut rng) {
        let row = session.query(table, index, &mut rng).expect("answered");
        check_row(table, index, &row);
    }
    let wall = started.elapsed();
    let stats = session.pipeline_stats();
    let snapshot = runtime.stats();
    drop(session);
    w0.join().expect("server 0");
    w1.join().expect("server 1");
    runtime.shutdown();
    PhaseOutcome {
        stats: snapshot,
        wall,
        out_of_order: stats.out_of_order_completions,
        version_retries: stats.version_retries,
        skew_failures: stats.version_skew_failures,
    }
}

/// Phase 2: v2 servers, 32-deep pipeline, autoscaling, concurrent reloads.
fn run_pipelined() -> PhaseOutcome {
    let runtime = build_runtime(1001);
    let (t0, w0) = serve_conn(&runtime, 0, PROTOCOL_V2);
    let (t1, w1) = serve_conn(&runtime, 1, PROTOCOL_V2);
    let mut session = PirSession::connect_with_window(t0, t1, "loadgen", WINDOW).expect("connect");
    assert_eq!(session.negotiated_version(), PROTOCOL_V2);
    assert_eq!(session.window(), WINDOW);

    // The admin: its own session on fresh connections, churning hot-table
    // rows for the whole traffic phase. Every update moves the table
    // version, so in-flight queries can straddle it — the stamps must catch
    // each straddle.
    let stop_churn = Arc::new(AtomicBool::new(false));
    let churn = {
        let (a0, aw0) = serve_conn(&runtime, 0, PROTOCOL_V2);
        let (a1, aw1) = serve_conn(&runtime, 1, PROTOCOL_V2);
        let stop = Arc::clone(&stop_churn);
        let handle = std::thread::spawn(move || {
            let mut admin = PirSession::connect(a0, a1, "admin").expect("admin connect");
            let mut round = 0usize;
            let mut updates = 0u64;
            while !stop.load(Ordering::Acquire) {
                let row = CHURNED_ROWS[round % CHURNED_ROWS.len()];
                let fill = CHURN_FILLS[round % CHURN_FILLS.len()];
                admin
                    .update_entry("hot", row, &[fill; HOT_BYTES])
                    .expect("hot reload");
                updates += 1;
                round += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
            drop(admin);
            updates
        });
        (handle, aw0, aw1)
    };

    // A query that straddles hot reloads *twice* fails with the typed
    // `VersionSkew` after its one transparent retry — never with a garbage
    // row. Under this example's deliberately brutal churn that is rare but
    // legitimate, and the documented client behavior is to re-issue; the
    // bound keeps a hypothetical livelock from hanging CI.
    let mut resubmits = 0u64;
    fn settle(
        session: &mut PirSession,
        rng: &mut StdRng,
        done: gpu_pir_repro::pir_wire::CompletedQuery,
        completed: &mut usize,
        resubmits: &mut u64,
    ) {
        match done.outcome {
            Ok(row) => {
                check_row(&done.table, done.index, &row);
                *completed += 1;
            }
            Err(err @ gpu_pir_repro::pir_wire::WireError::VersionSkew { .. }) => {
                *resubmits += 1;
                assert!(*resubmits < 100, "skew resubmissions runaway: {err}");
                session
                    .submit(&done.table, done.index, rng)
                    .expect("resubmit after skew");
            }
            Err(err) => panic!("query {} failed: {err}", done.query_id),
        }
    }

    let mut rng = StdRng::seed_from_u64(2026);
    let started = Instant::now();
    let mut completed = 0usize;
    for (table, index) in schedule(&mut rng) {
        session.submit(table, index, &mut rng).expect("submitted");
        // Opportunistically collect whatever already finished.
        while session.ready() > 0 {
            let done = session.poll().expect("poll");
            settle(&mut session, &mut rng, done, &mut completed, &mut resubmits);
        }
    }
    while completed < QUERIES {
        let done = session.poll().expect("poll");
        settle(&mut session, &mut rng, done, &mut completed, &mut resubmits);
    }
    let wall = started.elapsed();

    stop_churn.store(true, Ordering::Release);
    let (churn_handle, aw0, aw1) = churn;
    let updates = churn_handle.join().expect("churn thread");
    aw0.join().expect("admin server 0");
    aw1.join().expect("admin server 1");

    let stats = session.pipeline_stats();
    let snapshot = runtime.stats();
    drop(session);
    w0.join().expect("server 0");
    w1.join().expect("server 1");
    runtime.shutdown();
    println!(
        "  (churn: {updates} hot reloads applied concurrently; table now at versions {:?})",
        snapshot.table("hot").expect("hot stats").table_versions
    );
    PhaseOutcome {
        stats: snapshot,
        wall,
        out_of_order: stats.out_of_order_completions,
        version_retries: stats.version_retries,
        skew_failures: stats.version_skew_failures,
    }
}

fn report(label: &str, outcome: &PhaseOutcome) -> f64 {
    let makespan = fleet_makespan_s(&outcome.stats);
    let qps = outcome.stats.answered() as f64 / makespan.max(1e-12);
    println!(
        "{label}: answered {} in {:.2?} wall; occupancy {:.2} q/launch; modeled \
         makespan {:.2} ms -> {qps:.0} q/s; out-of-order {}, stamp retries {}",
        outcome.stats.answered(),
        outcome.wall,
        outcome.stats.batch_occupancy(),
        makespan * 1e3,
        outcome.out_of_order,
        outcome.version_retries,
    );
    for table in &outcome.stats.tables {
        println!(
            "  {:<4} answered {:>4}, batches {:>4}, active replicas {:?}, \
             scale-ups {}, scale-downs {}",
            table.table,
            table.answered,
            table.batches,
            table.active_replicas,
            table.scale_up_events,
            table.scale_down_events,
        );
    }
    qps
}

fn main() {
    println!(
        "skewed load ({QUERIES} queries, hot 70%/cold 30%) through the wire \
         boundary, twice\n"
    );

    println!("--- lockstep (servers capped at v1) ---");
    let lockstep = run_lockstep();
    let lockstep_qps = report("lockstep ", &lockstep);

    println!("\n--- pipelined (v2, window {WINDOW}, autoscaling, reload churn) ---");
    let pipelined = run_pipelined();
    let pipelined_qps = report("pipelined", &pipelined);

    println!(
        "\nmodeled throughput: {lockstep_qps:.0} q/s lockstep -> {pipelined_qps:.0} q/s \
         pipelined ({:.2}x)",
        pipelined_qps / lockstep_qps
    );

    // The acceptance gates.
    assert_eq!(lockstep.out_of_order, 0, "lockstep cannot reorder");
    assert!(
        pipelined.out_of_order > 0,
        "pipelined phase must observe out-of-order completions"
    );
    assert_eq!(lockstep.skew_failures, 0, "no churn ran in phase 1");
    assert_eq!(lockstep.version_retries, 0, "v1 frames carry no stamps");
    // Note on pipelined.skew_failures: a nonzero count is fine — each one
    // is a query that straddled reloads twice, was *detected* by the
    // stamps, failed typed, and was re-issued above. The "zero
    // mixed-version reconstructions" guarantee is enforced by check_row
    // panicking on any garbage row, which no completion produced.
    assert!(
        pipelined_qps >= 2.0 * lockstep_qps,
        "pipelining must at least double modeled throughput \
         ({lockstep_qps:.0} -> {pipelined_qps:.0} q/s)"
    );
    println!(
        "\nall {QUERIES} rows reconstructed exactly in both phases; \
         zero mixed-version reconstructions"
    );
}
