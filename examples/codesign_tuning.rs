//! Sweep the PIR + ML co-design space and print the chosen operating points.
//!
//! ```text
//! cargo run --example codesign_tuning --release
//! ```
//!
//! Reproduces the selection loop behind the paper's Figure 11 for one
//! application: sweep co-location / hot-table / batch-PIR parameters on the
//! training workload, keep the configurations whose predicted model quality
//! and communication fit the budget, and report the throughput of the best
//! configuration with and without co-design.

use gpu_pir_repro::pir_core::{Application, CodesignOptimizer, QualityTarget};
use gpu_pir_repro::pir_ml::datasets::{DatasetKind, DatasetScale, SyntheticDataset};
use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::{Budget, CodesignSpace};

fn main() {
    let dataset = SyntheticDataset::generate(DatasetKind::MovieLens20M, DatasetScale::Small, 60, 5);
    let app = Application::new(dataset, 9);
    println!(
        "Tuning {} ({} entries, ~{:.0} lookups/inference) under a {} budget\n",
        app.kind(),
        app.dataset().table_entries,
        app.avg_queries_per_inference(),
        Budget::paper_default().label()
    );

    let optimizer = CodesignOptimizer::new(Budget::paper_default()).with_space(CodesignSpace {
        colocation_degrees: vec![0, 1, 2, 4],
        hot_fractions: vec![0.0, 0.1, 0.2],
        q_hot_options: vec![4, 8],
        bin_sizes: vec![64, 256, 1024],
        q_full_options: vec![1, 2, 4],
    });

    for target in QualityTarget::ALL {
        println!("--- {} ---", target.label());
        for point in [
            optimizer.cpu_baseline(&app, target),
            optimizer.gpu_plain(&app, PrfKind::Aes128, target),
            optimizer.gpu_codesign(&app, PrfKind::Aes128, target),
            optimizer.gpu_codesign(&app, PrfKind::Chacha20, target),
        ]
        .into_iter()
        .flatten()
        {
            println!(
                "{:<36} {:>10.0} QPS  latency {:>7.1} ms  quality {:>7.4}  drop {:>5.1}%  comm {:>6.1} KB",
                point.system,
                point.qps,
                point.latency_ms,
                point.quality,
                point.point.drop_rate * 100.0,
                point.point.communication_bytes_per_inference / 1e3,
            );
        }
        println!();
    }
}
