//! Soak test: SLO tiers + autoscaler + client cache under a flash crowd.
//!
//! ```text
//! cargo run --example soak --release            # full soak (~10 s trace)
//! SOAK_QUICK=1 cargo run --example soak --release   # CI smoke (~2 s trace)
//! ```
//!
//! Drives a deterministic `pir-load` trace — Zipf indices, a diurnal swing,
//! and a 10x flash crowd on the interactive tenant — against a hosted table
//! with two SLO tiers and an elastic replica pool, while a reloader thread
//! hot-swaps a row mid-soak. The run asserts the whole PR 10 contract:
//!
//! * every reconstructed row (fresh or cache-hit) matches the ground truth
//!   *for the table generation that answered it* — zero mixed-version
//!   reconstructions across hot reloads;
//! * the interactive tier keeps answering through the flash while the
//!   background tier absorbs the shedding (displacement + queue-full);
//! * the autoscaler reacts to the sustained flash queue depth;
//! * the client-side hot-entry cache hits, and reload generation bumps
//!   invalidate it.
//!
//! Emits the structured report to `BENCH_soak.json` (override with
//! `BENCH_SOAK_JSON=<path>`).

use std::time::Duration;

use gpu_pir_repro::pir_load::{
    replay, Diurnal, FlashCrowd, ReplayConfig, RuntimeTarget, SoakReport, TenantSpec, TraceConfig,
};
use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::PirTable;
use gpu_pir_repro::pir_serve::{AutoscalePolicy, PirServeRuntime, ServeConfig, TableConfig};

const TABLE: &str = "embeddings";
const ENTRY_BYTES: usize = 16;
/// The row the reloader thread rewrites; every other row keeps its seed
/// content for the whole soak.
const RELOADED_INDEX: u64 = 0;

fn base_fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(31).wrapping_add(offset as u8)
}

/// Content of `RELOADED_INDEX` after `updates` hot reloads.
fn reloaded_row(updates: u64) -> Vec<u8> {
    vec![(updates as u8).wrapping_mul(17).wrapping_add(3); ENTRY_BYTES]
}

/// Ground truth for `(index, generation)`: generation `g` means `g - 1`
/// reloads were applied (versions start at 1), and every reload rewrites
/// only `RELOADED_INDEX`. Pure, so worker threads verify with no shared
/// state — a mixed-version reconstruction produces garbage that matches no
/// generation and lands in the corrupt counter.
fn expected_row(index: u64, generation: u64) -> Vec<u8> {
    let updates = generation.saturating_sub(1);
    if index == RELOADED_INDEX && updates > 0 {
        reloaded_row(updates)
    } else {
        (0..ENTRY_BYTES).map(|o| base_fill(index, o)).collect()
    }
}

struct SoakKnobs {
    entries: u64,
    duration: Duration,
    base_rps: f64,
    flash_start: Duration,
    flash_duration: Duration,
    workers: usize,
    reload_every: Duration,
    queue_capacity: usize,
}

fn knobs(quick: bool) -> SoakKnobs {
    if quick {
        SoakKnobs {
            entries: 512,
            duration: Duration::from_secs(2),
            base_rps: 600.0,
            flash_start: Duration::from_millis(600),
            flash_duration: Duration::from_millis(700),
            workers: 24,
            reload_every: Duration::from_millis(250),
            queue_capacity: 8,
        }
    } else {
        SoakKnobs {
            entries: 1 << 10,
            duration: Duration::from_secs(10),
            base_rps: 1000.0,
            flash_start: Duration::from_secs(3),
            flash_duration: Duration::from_secs(3),
            workers: 32,
            reload_every: Duration::from_millis(400),
            queue_capacity: 16,
        }
    }
}

fn main() {
    let quick = std::env::var("SOAK_QUICK").is_ok_and(|v| v == "1");
    let knobs = knobs(quick);
    println!(
        "soak: {} mode — {}s trace, {} rps base, 10x flash, {} workers",
        if quick { "quick" } else { "full" },
        knobs.duration.as_secs(),
        knobs.base_rps,
        knobs.workers
    );

    // --- Serving side: one table, two SLO tiers, elastic replicas. -------
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .queue_capacity(knobs.queue_capacity)
            .per_tenant_quota(knobs.workers)
            .seed(2026)
            .build()
            .expect("valid serve config"),
    );
    let table = PirTable::generate(knobs.entries, ENTRY_BYTES, base_fill);
    let config = TableConfig::builder()
        .prf_kind(PrfKind::Chacha20)
        .max_batch(32)
        .max_wait(Duration::from_millis(2))
        .tier("interactive", Duration::from_millis(2), 0)
        .tier("background", Duration::from_millis(20), 2)
        .assign_tenant("mobile-app", "interactive")
        .default_tier("background")
        .replica_range(1, 3)
        .autoscale(AutoscalePolicy {
            high_depth: 4,
            low_depth: 1,
            sustain_ticks: 2,
            tick: Duration::from_millis(1),
        })
        .build()
        .expect("valid table config");
    runtime
        .register_table(TABLE, table, config)
        .expect("register table");

    // --- Traffic: interactive tenant flashes 10x; analytics stays flat. --
    let trace = TraceConfig {
        entries: knobs.entries,
        zipf_exponent: 1.1,
        duration: knobs.duration,
        base_rps: knobs.base_rps,
        tick: Duration::from_millis(50),
        diurnal: Some(Diurnal {
            period: knobs.duration,
            amplitude: 0.25,
        }),
        flash: Some(FlashCrowd {
            start: knobs.flash_start,
            duration: knobs.flash_duration,
        }),
        tenants: vec![
            TenantSpec::flashy("mobile-app", "interactive", 1.0, 10.0),
            TenantSpec::steady("analytics-1", "background", 2.0),
            TenantSpec::steady("analytics-2", "background", 2.0),
        ],
        seed: 7,
    }
    .generate()
    .expect("valid trace");
    println!(
        "trace: {} requests, peak {:.0} rps over 50 ms ticks",
        trace.len(),
        trace.peak_tick_rps(Duration::from_millis(50))
    );

    // --- Reloader: hot-swap one row mid-soak, bumping the generation. ----
    let reload_handle = runtime.handle();
    let reload_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reloader = {
        let stop = std::sync::Arc::clone(&reload_stop);
        let every = knobs.reload_every;
        std::thread::spawn(move || {
            let mut updates = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(every);
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                updates += 1;
                reload_handle
                    .update_entry(TABLE, RELOADED_INDEX, &reloaded_row(updates))
                    .expect("hot reload applies");
            }
            updates
        })
    };

    // --- Replay. ---------------------------------------------------------
    let replay_config = ReplayConfig {
        workers: knobs.workers,
        time_scale: 1.0,
        cache_capacity: 64,
    };
    let handle = runtime.handle();
    let result = replay(
        &trace,
        &replay_config,
        |_worker| RuntimeTarget::new(handle.clone(), TABLE),
        |index, generation, row| row == expected_row(index, generation),
    )
    .expect("replay runs");

    reload_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let reloads = reloader.join().expect("reloader thread");
    let stats = runtime.stats();
    let table_stats = stats
        .tables
        .iter()
        .find(|t| t.table == TABLE)
        .expect("table stats present");

    // --- Report. ---------------------------------------------------------
    let mut report = SoakReport::build(
        if quick { "soak-quick" } else { "soak-full" },
        &trace,
        &result,
    );
    report.reloads = reloads;
    report.autoscale.scale_ups = table_stats.scale_up_events;
    report.autoscale.scale_downs = table_stats.scale_down_events;
    report.autoscale.final_active_replicas = table_stats.active_replicas;
    let json_path =
        std::env::var("BENCH_SOAK_JSON").unwrap_or_else(|_| "BENCH_soak.json".to_string());
    report.write_json(&json_path).expect("write soak report");

    let interactive = report.tier("interactive").expect("interactive tier");
    let background = report.tier("background").expect("background tier");
    let flash_interactive = report.phase("flash", "interactive");
    println!("\ntier      submitted answered cache  shed failed    p50ms    p99ms");
    for tier in &report.tiers {
        println!(
            "{:<12} {:>6} {:>8} {:>5} {:>5} {:>6} {:>8.2} {:>8.2}",
            tier.tier,
            tier.counts.submitted,
            tier.counts.answered,
            tier.counts.cache_hits,
            tier.counts.shed,
            tier.counts.failed,
            tier.latency.p50_ms.unwrap_or(f64::NAN),
            tier.latency.p99_ms.unwrap_or(f64::NAN),
        );
    }
    println!(
        "reloads {reloads}, corrupt {}, displaced {}, scale-ups {}, active replicas {:?}",
        report.corrupt,
        table_stats.displaced,
        report.autoscale.scale_ups,
        report.autoscale.final_active_replicas
    );
    println!(
        "cache: {} hits / {} misses ({}), {} invalidations, {} stale admits rejected",
        report.cache.hits,
        report.cache.misses,
        report
            .cache
            .hit_rate()
            .map_or("n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
        report.cache.invalidations,
        report.cache.stale_rejected
    );

    // --- The soak contract. ----------------------------------------------
    assert_eq!(
        report.corrupt, 0,
        "zero mixed-version or corrupt reconstructions across {reloads} hot reloads"
    );
    assert!(
        reloads >= 2,
        "soak must span several hot reloads, got {reloads}"
    );
    assert!(
        report.cache.hits > 0,
        "hot-entry cache must absorb repeated Zipf-head lookups"
    );
    assert!(
        report.cache.invalidations >= 1,
        "reload generation bumps must invalidate the client cache"
    );
    assert_eq!(
        report.requests,
        trace.len() as u64,
        "every request accounted"
    );
    assert!(
        interactive.counts.failed == 0 && background.counts.failed == 0,
        "no hard failures: interactive {} background {}",
        interactive.counts.failed,
        background.counts.failed
    );
    if let Some(flash) = flash_interactive {
        assert!(
            flash.counts.answer_rate() > 0.95,
            "interactive tier must keep answering through the flash (rate {:.3})",
            flash.counts.answer_rate()
        );
    }
    // Background absorbs the shedding: under the flash overload the
    // interactive tier displaces queued background work, so any shed skew
    // must point at background.
    if interactive.counts.shed + background.counts.shed > 0 {
        let interactive_rate =
            interactive.counts.shed as f64 / interactive.counts.submitted.max(1) as f64;
        let background_rate =
            background.counts.shed as f64 / background.counts.submitted.max(1) as f64;
        assert!(
            interactive_rate <= background_rate,
            "shedding must skew to background (interactive {interactive_rate:.4} vs background {background_rate:.4})"
        );
    }
    // Latency ordering: the urgent tier's deadline-aware batches must not be
    // slower than the background tier that fills residue behind it.
    if let (Some(ip99), Some(bp99)) = (interactive.latency.p99_ms, background.latency.p99_ms) {
        assert!(
            ip99 <= bp99 * 1.5,
            "interactive p99 {ip99:.2} ms must not trail background p99 {bp99:.2} ms"
        );
    }
    println!("\nsoak report written to {json_path}");

    runtime.shutdown();
}
