//! Replica pools demo: a skewed multi-table workload served by per-party
//! replica pools under a shared device budget.
//!
//! ```text
//! cargo run --example replicated --release
//! ```
//!
//! Three hosted tables receive deliberately skewed traffic (the "hot" table
//! takes ~70% of all queries). The workload runs twice with the same seed:
//! once with a single server replica per party (PR 1's layout) and once with
//! replica pools (3× for the hot table, 2× for the rest). The point to look
//! at is the **modeled device makespan**: replicas answer batches in
//! parallel, so a table is done when its busiest replica is done, and the
//! pooled configuration finishes the same work in less simulated device time
//! — higher aggregate throughput — while every row still reconstructs
//! exactly. Per-replica utilization shows the dispatcher actually spreading
//! formed batches across the pool instead of pinning them to one server.

use std::time::{Duration, Instant};

use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::PirTable;
use gpu_pir_repro::pir_serve::{PirServeRuntime, ServeConfig, StatsSnapshot, TableConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(41).wrapping_add(offset as u8)
}

/// (name, entries, entry_bytes, traffic weight out of 10).
const TABLES: &[(&str, u64, usize, u32)] = &[
    ("hot", 1 << 12, 32, 7),
    ("warm", 1 << 10, 16, 2),
    ("cold", 1 << 9, 8, 1),
];

fn pick_table(rng: &mut StdRng) -> (&'static str, u64, usize) {
    let mut ticket = rng.gen_range(0..10u32);
    for &(name, entries, entry_bytes, weight) in TABLES {
        if ticket < weight {
            return (name, entries, entry_bytes);
        }
        ticket -= weight;
    }
    unreachable!("weights sum to 10");
}

/// Run the skewed workload against a runtime whose hot table has
/// `hot_replicas` replicas per party (and the others `cold_replicas`).
/// Returns the stats snapshot and the host wall time.
fn run_workload(hot_replicas: usize, cold_replicas: usize) -> (StatsSnapshot, Duration) {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .queue_capacity(8192)
            .per_tenant_quota(1024)
            .device_budget(16)
            .seed(4242)
            .build()
            .expect("valid serve config"),
    );
    for &(name, entries, entry_bytes, _) in TABLES {
        let replicas = if name == "hot" {
            hot_replicas
        } else {
            cold_replicas
        };
        let table = PirTable::generate(entries, entry_bytes, fill);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .replicas(replicas)
            .max_batch(32)
            .max_wait(Duration::from_millis(2))
            .build()
            .expect("valid table config");
        runtime
            .register_table(name, table, config)
            .expect("register table");
    }

    let client_threads = 8;
    let queries_per_thread = 60;
    let started = Instant::now();
    let mut joins = Vec::new();
    for client in 0..client_threads {
        let handle = runtime.handle();
        joins.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(9_000 + client as u64);
            let tenant = format!("tenant-{}", client % 4);
            for _ in 0..queries_per_thread {
                let (name, entries, entry_bytes) = pick_table(&mut rng);
                let index = rng.gen_range(0..entries);
                let pending = loop {
                    match handle.query(name, &tenant, index) {
                        Ok(pending) => break pending,
                        Err(err) if err.is_shed() => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(err) => panic!("unexpected serve error: {err}"),
                    }
                };
                let row = pending.wait().expect("query answered");
                let expected: Vec<u8> = (0..entry_bytes).map(|o| fill(index, o)).collect();
                assert_eq!(row, expected, "row {index} of '{name}' reconstructs");
            }
        }));
    }
    for join in joins {
        join.join().expect("client thread");
    }
    let elapsed = started.elapsed();
    let stats = runtime.stats();
    runtime.shutdown();
    (stats, elapsed)
}

/// Aggregate modeled makespan: tables' fleets are disjoint and run in
/// parallel, so the workload is done when the slowest table's busiest
/// replica is done.
fn fleet_makespan_s(stats: &StatsSnapshot) -> f64 {
    stats
        .tables
        .iter()
        .map(|t| t.device_makespan_s())
        .fold(0.0f64, f64::max)
}

fn main() {
    println!("skewed 3-table workload: hot 70%, warm 20%, cold 10% of 480 queries\n");

    println!("--- single replica per party (PR 1 layout) ---");
    let (single, single_wall) = run_workload(1, 1);
    report(&single, single_wall);

    println!("\n--- replica pools (hot x3, others x2) under a 16-device budget ---");
    let (pooled, pooled_wall) = run_workload(3, 2);
    report(&pooled, pooled_wall);

    let single_makespan = fleet_makespan_s(&single);
    let pooled_makespan = fleet_makespan_s(&pooled);
    let single_qps = single.answered() as f64 / single_makespan;
    let pooled_qps = pooled.answered() as f64 / pooled_makespan;
    println!(
        "\naggregate modeled throughput: {single_qps:.0} q/s single -> {pooled_qps:.0} q/s pooled \
         ({:.2}x, makespan {:.2} ms -> {:.2} ms)",
        pooled_qps / single_qps,
        single_makespan * 1e3,
        pooled_makespan * 1e3,
    );

    assert_eq!(
        single.answered(),
        pooled.answered(),
        "same admitted workload"
    );
    assert!(
        pooled.answered() >= 480,
        "every query answered ({} of 480)",
        pooled.answered()
    );
    // The whole point of replica pools: the same work finishes in less
    // simulated device time because batches fan out across the pool.
    assert!(
        pooled_qps > single_qps * 1.1,
        "replica pools must raise aggregate throughput ({single_qps:.0} -> {pooled_qps:.0} q/s)"
    );
    // The dispatcher actually balanced: every hot-table replica served work.
    let hot = pooled.table("hot").expect("hot table stats");
    assert_eq!(hot.replicas.len(), 6, "3 replicas x 2 parties");
    for replica in &hot.replicas {
        assert!(
            replica.batches > 0,
            "replica {}/{} never served a batch",
            replica.party,
            replica.replica
        );
    }
    println!("\nall rows reconstructed; every hot-table replica served traffic");
}

fn report(stats: &StatsSnapshot, wall: Duration) {
    println!(
        "answered {} queries in {wall:.2?} host wall clock (device time is simulated); \
         device budget {:?}, occupancy {:.2} queries/launch",
        stats.answered(),
        stats.device_budget,
        stats.batch_occupancy(),
    );
    println!(
        "{:<6} {:>8} {:>9} {:>13} {:>13}",
        "table", "answered", "batches", "makespan (ms)", "e2e p50 (ms)"
    );
    for table in &stats.tables {
        println!(
            "{:<6} {:>8} {:>9} {:>13.2} {:>13.2}",
            table.table,
            table.answered,
            table.batches,
            table.device_makespan_s() * 1e3,
            table.e2e_p50_ms.unwrap_or(f64::NAN),
        );
    }
    println!(
        "{:<6} {:>6} {:>8} {:>9} {:>8} {:>15} {:>12}",
        "table", "party", "replica", "batches", "queries", "device busy (ms)", "utilization"
    );
    for table in &stats.tables {
        for replica in &table.replicas {
            println!(
                "{:<6} {:>6} {:>8} {:>9} {:>8} {:>15.2} {:>11.1}%",
                table.table,
                replica.party,
                replica.replica,
                replica.batches,
                replica.queries,
                replica.device_busy_s * 1e3,
                replica.utilization * 100.0,
            );
        }
    }
}
