//! Serving demo: thousands of concurrent private lookups through the
//! `pir-serve` runtime.
//!
//! ```text
//! cargo run --example serving --release
//! ```
//!
//! Spawns client threads hammering three hosted tables (one sharded across
//! four simulated devices) from several tenants, then prints the runtime's
//! telemetry. The point to look at is **batch occupancy**: none of these
//! clients coordinate, yet the dynamic batch former coalesces their
//! concurrent queries into multi-query device batches (§3.2.1/§3.2.5) — and
//! every row still reconstructs exactly.

use std::time::{Duration, Instant};

use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::PirTable;
use gpu_pir_repro::pir_serve::{PirServeRuntime, ServeConfig, ServeError, TableConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(37).wrapping_add(offset as u8)
}

fn main() {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .queue_capacity(8192)
            .per_tenant_quota(512)
            .seed(2024)
            .build()
            .expect("valid serve config"),
    );

    // Three tables with different shapes and policies; "items" is large
    // enough to be sharded across 4 simulated devices.
    let tables: &[(&str, u64, usize, usize)] = &[
        ("users", 1 << 11, 16, 1),
        ("items", 1 << 13, 32, 4),
        ("ads", 1 << 9, 8, 1),
    ];
    for &(name, entries, entry_bytes, shards) in tables {
        let table = PirTable::generate(entries, entry_bytes, fill);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::Chacha20)
            .shards(shards)
            .max_batch(64)
            .max_wait(Duration::from_millis(3))
            .build()
            .expect("valid table config");
        runtime
            .register_table(name, table, config)
            .expect("register table");
        println!("registered '{name}': {entries} x {entry_bytes} B, {shards} shard(s)");
    }

    // 16 client threads x 72 queries = 1,152 concurrent private lookups.
    let client_threads = 16;
    let queries_per_thread = 72;
    let started = Instant::now();
    let mut joins = Vec::new();
    for client in 0..client_threads {
        let handle = runtime.handle();
        joins.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(7_000 + client as u64);
            let tenant = format!("tenant-{}", client % 5);
            let mut verified = 0usize;
            let mut shed = 0usize;
            for _ in 0..queries_per_thread {
                let (name, entries, entry_bytes): (&str, u64, usize) = match rng.gen_range(0..3u32)
                {
                    0 => ("users", 1 << 11, 16),
                    1 => ("items", 1 << 13, 32),
                    _ => ("ads", 1 << 9, 8),
                };
                let index = rng.gen_range(0..entries);
                // Back off briefly when shed; admission errors are signals,
                // not failures.
                let pending = loop {
                    match handle.query(name, &tenant, index) {
                        Ok(pending) => break pending,
                        Err(err) if err.is_shed() => {
                            shed += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(err) => panic!("unexpected serve error: {err}"),
                    }
                };
                let row = pending.wait().expect("query answered");
                let expected: Vec<u8> = (0..entry_bytes).map(|o| fill(index, o)).collect();
                assert_eq!(row, expected, "row {index} of '{name}' reconstructs");
                verified += 1;
            }
            (verified, shed)
        }));
    }

    let mut verified = 0usize;
    let mut shed_retries = 0usize;
    for join in joins {
        let (v, s) = join.join().expect("client thread");
        verified += v;
        shed_retries += s;
    }
    let elapsed = started.elapsed();

    // Demonstrate backpressure explicitly: a runaway tenant with the default
    // quota eventually sheds instead of wedging the runtime.
    let greedy = runtime.handle();
    let mut held = Vec::new();
    let quota_shed = loop {
        match greedy.query("users", "runaway", 1) {
            Ok(pending) => held.push(pending),
            Err(err @ ServeError::QuotaExceeded { .. }) => break err,
            Err(err) => panic!("expected quota shed, got {err}"),
        }
    };
    println!(
        "\nbackpressure: runaway tenant shed after {} in-flight ({quota_shed})",
        held.len()
    );
    drop(held);

    let stats = runtime.stats();
    println!(
        "\nanswered {} queries from {} clients in {:.2?} (host wall clock; device time is simulated)",
        stats.answered(),
        client_threads,
        elapsed
    );
    println!("{shed_retries} submissions were shed and retried");
    println!(
        "\n{:<8} {:>9} {:>7} {:>9} {:>11} {:>10} {:>10} {:>10} {:>8} {:>5}",
        "table",
        "answered",
        "shed",
        "batches",
        "occupancy",
        "max batch",
        "p50 (ms)",
        "p99 (ms)",
        "backend",
        "tile"
    );
    for table in &stats.tables {
        println!(
            "{:<8} {:>9} {:>7} {:>9} {:>11.2} {:>10} {:>10.2} {:>10.2} {:>8} {:>5}",
            table.table,
            table.answered,
            table.shed,
            table.batches,
            table.batch_occupancy(),
            table.max_batch,
            table.e2e_p50_ms.unwrap_or(f64::NAN),
            table.e2e_p99_ms.unwrap_or(f64::NAN),
            table.prf_backend,
            table
                .frontier_tile
                .map_or_else(|| "-".to_string(), |t| t.to_string()),
        );
    }

    assert!(
        verified >= 1_000,
        "ran {verified} queries, expected >= 1000"
    );
    assert!(
        stats.batch_occupancy() > 1.0,
        "dynamic batching must coalesce concurrent queries (occupancy {:.2})",
        stats.batch_occupancy()
    );
    println!(
        "\nall {} rows reconstructed correctly; overall batch occupancy {:.2} queries/launch",
        verified,
        stats.batch_occupancy()
    );

    runtime.shutdown();
}
