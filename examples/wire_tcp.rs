//! The paper's deployment shape, end to end over real sockets: two
//! non-colluding PIR server processes (threads here) behind TCP listeners,
//! and a phone-class client that talks to them only through the versioned
//! wire protocol.
//!
//! ```text
//! cargo run --example wire_tcp --release
//! ```
//!
//! Each server thread owns its *own* serving runtime (registry, batch
//! formers, device budget) and a [`WireFrontend`] for its party; the client
//! is a [`PirSession`] holding two independent TCP connections. The session
//! discovers the table catalog from both servers — no schema is injected
//! client-side — uploads exactly one DPF key projection per server, and
//! adds the two answer shares. It finishes with a hot reload pushed through
//! the admin `UpdateEntry` message, and prints wire-true byte accounting
//! measured on the actual encoded frames.

use std::net::TcpListener;
use std::time::Duration;

use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::PirTable;
use gpu_pir_repro::pir_serve::{PirServeRuntime, ServeConfig, TableConfig, WireFrontend};
use gpu_pir_repro::pir_wire::{PirSession, TcpTransport, MAX_SUPPORTED_VERSION};
use rand::SeedableRng;

const ENTRIES: u64 = 1 << 12;
const ENTRY_BYTES: usize = 64;

fn build_table() -> PirTable {
    PirTable::generate(ENTRIES, ENTRY_BYTES, |row, offset| {
        (row as u8).wrapping_mul(31).wrapping_add(offset as u8)
    })
}

fn spawn_server(party: u8) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind listener");
    let addr = listener.local_addr().expect("local addr");
    let worker = std::thread::spawn(move || {
        let runtime = PirServeRuntime::new(
            ServeConfig::builder()
                .seed(0xC0FFEE + u64::from(party))
                .build()
                .expect("valid config"),
        );
        let config = TableConfig::builder()
            .prf_kind(PrfKind::Chacha20)
            .max_batch(32)
            .max_wait(Duration::from_millis(1))
            .build()
            .expect("valid table config");
        runtime
            .register_table("embeddings", build_table(), config)
            .expect("register table");
        let frontend = WireFrontend::new(runtime.handle(), party);
        // One client connection for this demo; a production accept loop
        // would spawn a serve thread per connection.
        let (stream, peer) = listener.accept().expect("accept client");
        println!("server {party}: client connected from {peer}");
        let transport = TcpTransport::from_stream(stream).expect("wrap stream");
        frontend
            .serve(Box::new(transport))
            .expect("serve connection");
        let answered = runtime.stats().answered();
        println!("server {party}: connection closed after {answered} shares");
        runtime.shutdown();
    });
    (addr, worker)
}

fn main() {
    println!("wire protocol (up to v{MAX_SUPPORTED_VERSION}): two TCP servers, one session\n");
    let (addr0, server0) = spawn_server(0);
    let (addr1, server1) = spawn_server(1);

    // The client side: two independent connections, nothing else.
    let t0 = Box::new(TcpTransport::connect(addr0).expect("connect server 0"));
    let t1 = Box::new(TcpTransport::connect(addr1).expect("connect server 1"));
    let mut session = PirSession::connect(t0, t1, "wire-demo").expect("catalog handshake");
    println!("negotiated protocol v{}", session.negotiated_version());

    let schema = session.schema("embeddings").expect("discovered table");
    println!(
        "catalog discovered: {:?} hosting {} entries x {} B\n",
        session.table_names(),
        schema.entries,
        schema.entry_bytes
    );

    // Private lookups over the wire.
    let reference = build_table();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for index in [3u64, 1234, 4095] {
        let row = session
            .query("embeddings", index, &mut rng)
            .expect("row reconstructs");
        assert_eq!(row, reference.entry(index), "index {index}");
        println!(
            "row {index:>4} reconstructed correctly: {:02x?}...",
            &row[..6]
        );
    }

    // Hot reload through the admin message: both servers apply it, clients
    // need no new keys.
    let fresh = vec![0xAB; ENTRY_BYTES];
    session
        .update_entry("embeddings", 1234, &fresh)
        .expect("hot reload");
    let row = session
        .query("embeddings", 1234, &mut rng)
        .expect("updated row reconstructs");
    assert_eq!(row, fresh);
    println!("row 1234 hot-reloaded and re-read through the same session");

    // Wire-true communication accounting, measured on actual frames.
    let stats = session.conn_stats();
    assert_eq!(stats[0].bytes_sent, stats[1].bytes_sent);
    println!(
        "\nper-server communication: {} frames / {} B uploaded, {} frames / {} B downloaded",
        stats[0].frames_sent,
        stats[0].bytes_sent,
        stats[0].frames_received,
        stats[0].bytes_received,
    );
    println!(
        "(vs {} KB to ship the whole table: the DPF advantage, now measured on encoded bytes)",
        reference.size_bytes() / 1000
    );

    drop(session);
    server0.join().expect("server 0 exits");
    server1.join().expect("server 1 exits");
    println!("\nwire_tcp example finished: both servers exited cleanly");
}
