//! Private next-word prediction with a server-side word-embedding table.
//!
//! ```text
//! cargo run --example private_language_model --release
//! ```
//!
//! The WikiText-2-style workload: an on-device LSTM does the modelling, but
//! its word-embedding table is too large to ship, so each sentence's word
//! embeddings are fetched privately. The example trains a tiny LSTM, then
//! compares perplexity when every lookup succeeds versus when the PIR layer's
//! fixed budgets drop some lookups.

use gpu_pir_repro::pir_ml::datasets::sessions_as_token_sequences;
use gpu_pir_repro::pir_ml::datasets::{DatasetKind, DatasetScale, SyntheticDataset};
use gpu_pir_repro::pir_ml::{LstmConfig, LstmLanguageModel};
use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::{PbrClient, PbrConfig, PbrServer, PirTable};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);

    // A scaled-down WikiText-2-like corpus.
    let dataset = SyntheticDataset::generate(DatasetKind::WikiText2, DatasetScale::Small, 60, 9);
    let vocab = 512usize; // train a small LM over the most frequent words
    let train = sessions_as_token_sequences(&dataset.train_workload.sessions, vocab);
    let test = sessions_as_token_sequences(&dataset.test_workload.sessions, vocab);

    let mut model = LstmLanguageModel::new(
        LstmConfig {
            vocab_size: vocab,
            embedding_dim: 16,
            hidden_dim: 32,
            learning_rate: 0.15,
            gradient_clip: 1.0,
        },
        &mut rng,
    );
    println!(
        "Training a {}-parameter LSTM on {} sentences...",
        model.parameter_count(),
        train.len()
    );
    model.train(&train, 2);
    let clean_ppl = model.evaluate_perplexity(&test);
    println!("Perplexity with every embedding lookup served: {clean_ppl:.1}");

    // Host the word-embedding table on two PIR servers with partial batch
    // retrieval (one query per 64-word bin).
    let table = PirTable::from_entries(&model.embeddings().to_entries());
    let pbr = PbrConfig::new(64);
    let client = PbrClient::new(table.schema(), pbr, PrfKind::Chacha20);
    let server0 = PbrServer::new(&table, pbr, PrfKind::Chacha20);
    let server1 = PbrServer::new(&table, pbr, PrfKind::Chacha20);

    // Fetch the first test sentence's embeddings privately and record which
    // words had to be dropped because of bin conflicts.
    let sentence: Vec<u64> = test[0].iter().map(|&t| t as u64).collect();
    let assignment = client.assign(&sentence);
    let queries = client.queries(&assignment, &mut rng);
    let r0 = server0
        .answer(&queries.iter().map(|q| q.to_server(0)).collect::<Vec<_>>())
        .expect("server 0 answers");
    let r1 = server1
        .answer(&queries.iter().map(|q| q.to_server(1)).collect::<Vec<_>>())
        .expect("server 1 answers");
    let retrieved = client
        .reconstruct(&assignment, &queries, &r0, &r1)
        .expect("shares combine");
    println!(
        "Sentence of {} words: {} bins queried, {} embeddings retrieved, {} dropped",
        sentence.len(),
        queries.len(),
        retrieved.len(),
        assignment.dropped.len()
    );

    // Perplexity if the dropped words' embeddings are replaced with zeros.
    let dropped_ppl = model.evaluate_perplexity_with_drops(&test, &|sequence, position| {
        sequence == 0 && assignment.dropped.contains(&(test[0][position] as u64))
    });
    println!("Perplexity with those lookups dropped: {dropped_ppl:.1}");
    println!("(The co-design in the full system keeps that gap within the 5% tolerance.)");
}
