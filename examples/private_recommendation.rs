//! Private on-device recommendation (the paper's headline use case).
//!
//! ```text
//! cargo run --example private_recommendation --release
//! ```
//!
//! A MovieLens-like recommendation app keeps its big user-history embedding
//! table on two servers. For each inference the device fetches the embeddings
//! of the user's (private) watch history with the co-designed batch-PIR
//! pipeline — co-location, hot table and partial batch retrieval — then runs
//! a small on-device MLP over the pooled embeddings.

use gpu_pir_repro::pir_core::{Application, PrivateInferenceSystem, SystemConfig};
use gpu_pir_repro::pir_ml::datasets::{DatasetKind, DatasetScale, SyntheticDataset};
use gpu_pir_repro::pir_ml::{MlpConfig, MlpModel};
use gpu_pir_repro::pir_prf::PrfKind;
use gpu_pir_repro::pir_protocol::{CodesignParams, FullTableMode};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // The MovieLens-like workload: ~72 embedding lookups per inference.
    let dataset = SyntheticDataset::generate(DatasetKind::MovieLens20M, DatasetScale::Small, 40, 3);
    let app = Application::new(dataset, 11);
    println!(
        "Application: {} — {} entries x {} B, ~{:.0} lookups per inference",
        app.kind(),
        app.dataset().table_entries,
        app.dataset().entry_bytes,
        app.avg_queries_per_inference()
    );

    // Deploy with the ML co-design: co-locate co-watched movies, keep a hot
    // table of the most popular ones and serve the rest with batch PIR.
    let config = SystemConfig::with_codesign(
        PrfKind::Chacha20,
        CodesignParams {
            colocation_degree: 2,
            hot_entries: 96,
            q_hot: 6,
            full_mode: FullTableMode::Pbr { bin_size: 64 },
        },
    );
    let system = PrivateInferenceSystem::deploy(&app, config);

    // The on-device ranking model: a 2-layer MLP over the pooled embeddings.
    let embedding_dim = app.dataset().embedding_dim;
    let model = MlpModel::new(
        MlpConfig {
            input_dim: embedding_dim,
            hidden_dim: 64,
            learning_rate: 0.05,
        },
        &mut rng,
    );

    // Run a few real inference sessions from the (held-out) test workload.
    let sessions: Vec<Vec<u64>> = app
        .test_workload()
        .sessions
        .iter()
        .take(5)
        .cloned()
        .collect();
    for (i, session) in sessions.iter().enumerate() {
        let outcome = system.infer(session, &mut rng).expect("inference succeeds");
        // Pool whatever embeddings were retrieved (dropped ones are skipped,
        // which is exactly the quality/performance trade-off of batch PIR).
        let mut pooled = vec![0.0f32; embedding_dim];
        for embedding in outcome.embeddings.values() {
            for (acc, v) in pooled.iter_mut().zip(embedding) {
                *acc += v;
            }
        }
        if !outcome.embeddings.is_empty() {
            for v in &mut pooled {
                *v /= outcome.embeddings.len() as f32;
            }
        }
        let score = model.predict(&pooled);
        println!(
            "inference {i}: {} lookups, {} retrieved, {} dropped ({:.0}% drop), {:.1} KB comm, CTR score {:.3}",
            session.len(),
            outcome.embeddings.len(),
            outcome.dropped.len(),
            outcome.drop_rate() * 100.0,
            outcome.communication_bytes() as f64 / 1e3,
            score
        );
    }
    println!("No server ever saw which movies were in the user's history.");
}
