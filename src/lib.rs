//! Umbrella crate for the GPU-PIR reproduction workspace.
//!
//! This crate re-exports the public API of every member crate so the
//! runnable examples under `examples/` and the integration tests under
//! `tests/` can use a single, convenient namespace. Library users should
//! depend on the individual crates (`pir-core`, `pir-dpf`, ...) directly.

#![forbid(unsafe_code)]

pub use gpu_sim;
pub use pir_cluster;
pub use pir_core;
pub use pir_dpf;
pub use pir_field;
pub use pir_load;
pub use pir_ml;
pub use pir_prf;
pub use pir_protocol;
pub use pir_serve;
pub use pir_wire;
