//! Property tests of the wire format:
//!
//! (a) every message round-trips encode → decode bit-exactly,
//! (b) reported sizes are wire-true (`size_bytes()` == encoded length),
//! (c) truncated / corrupted / wrong-version frames decode to typed
//!     [`WireError`]s — never panics,
//! (d) the decoder is strict: a frame either decodes to exactly the message
//!     that produced it or is rejected.

use pir_dpf::{generate_keys, DpfParams};
use pir_field::Ring128;
use pir_prf::{build_prf, GgmPrg, PrfKind};
use pir_protocol::{PirResponse, ServerQuery, TableSchema};
use pir_wire::{
    decode_message, encode_message, Catalog, CatalogEntry, ErrorCode, ErrorReply, QueryMsg,
    ResponseMsg, UpdateAckMsg, UpdateEntryMsg, WireError, WireMessage,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn prf_kind_from(byte: u8) -> PrfKind {
    PrfKind::ALL[byte as usize % PrfKind::ALL.len()]
}

fn sample_server_query(seed: u64, entries: u64, entry_bytes: usize) -> ServerQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let prg = GgmPrg::new(build_prf(prf_kind_from(seed as u8)));
    let params = DpfParams::for_domain(entries);
    let (key0, key1) = generate_keys(&prg, &params, seed % entries, Ring128::ONE, &mut rng);
    ServerQuery {
        query_id: seed.wrapping_mul(0x9E37),
        schema: TableSchema::new(entries, entry_bytes),
        key: if seed.is_multiple_of(2) { key0 } else { key1 },
    }
}

/// Build one of every message shape from a seed.
fn sample_message(seed: u64) -> WireMessage {
    let mut rng = StdRng::seed_from_u64(seed);
    let entries = rng.gen_range(1u64..1 << 20);
    let entry_bytes = rng.gen_range(1usize..256);
    match seed % 7 {
        0 => WireMessage::CatalogRequest,
        1 => WireMessage::Catalog(Catalog {
            protocol_version: rng.gen_range(1u16..100),
            party: (seed % 2) as u8,
            tables: (0..rng.gen_range(0usize..5))
                .map(|i| CatalogEntry {
                    name: format!("table-{i}-{}", seed % 97),
                    schema: TableSchema::new(entries + i as u64, entry_bytes + i),
                    prf_kind: prf_kind_from(seed as u8 + i as u8),
                })
                .collect(),
        }),
        2 => WireMessage::Query(QueryMsg {
            table: format!("emb-{}", seed % 13),
            tenant: format!("tenant-{}", seed % 7),
            query: sample_server_query(seed, entries, entry_bytes),
        }),
        3 => WireMessage::Response(ResponseMsg {
            response: PirResponse {
                query_id: seed,
                party: (seed % 2) as u8,
                share: (0..rng.gen_range(0u32..128))
                    .map(|i| i ^ seed as u32)
                    .collect(),
            },
            // v1 framing cannot carry a stamp: only 0 roundtrips under the
            // baseline encoding exercised here (v2 stamps are covered by
            // the pipelined property tests).
            table_version: 0,
        }),
        4 => WireMessage::Error(ErrorReply {
            code: ErrorCode::from_u8((seed % 8) as u8 + 1).unwrap(),
            shed: seed.is_multiple_of(3),
            min_version: (seed % 5) as u16,
            max_version: (seed % 5) as u16 + 1,
            query_id: 0,
            message: format!("detail {seed}"),
        }),
        5 => WireMessage::UpdateEntry(UpdateEntryMsg {
            table: format!("emb-{}", seed % 13),
            index: seed % entries,
            bytes: (0..entry_bytes).map(|i| (i as u8) ^ (seed as u8)).collect(),
        }),
        _ => WireMessage::UpdateAck(UpdateAckMsg {
            table: format!("emb-{}", seed % 13),
            index: seed % entries,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_message_roundtrips_bit_exactly(seed in any::<u64>()) {
        let message = sample_message(seed);
        let frame = encode_message(&message);
        let decoded = decode_message(&frame).expect("canonical frame decodes");
        prop_assert_eq!(decoded, message);
        // Determinism: encoding the same message twice yields identical bytes.
        prop_assert_eq!(encode_message(&sample_message(seed)), frame);
    }

    #[test]
    fn reported_sizes_are_wire_true(seed in any::<u64>(), entries in 1u64..1 << 22) {
        let query = sample_server_query(seed, entries, (seed % 96) as usize + 1);
        let mut writer = pir_wire::codec::WireWriter::new();
        pir_wire::codec::encode_server_query(&query, &mut writer);
        prop_assert_eq!(writer.len(), query.size_bytes());

        let response = PirResponse {
            query_id: seed,
            party: 0,
            share: vec![7; (seed % 300) as usize],
        };
        let mut writer = pir_wire::codec::WireWriter::new();
        pir_wire::codec::encode_response(&response, &mut writer);
        prop_assert_eq!(writer.len(), response.size_bytes());
    }

    #[test]
    fn truncated_frames_are_typed_errors(seed in any::<u64>()) {
        let frame = encode_message(&sample_message(seed));
        // Every strict prefix must fail (a canonical frame has no slack) —
        // and must fail with an error, not a panic.
        for len in 0..frame.len() {
            match decode_message(&frame[..len]) {
                Err(_) => {}
                Ok(decoded) => prop_assert!(
                    false,
                    "truncated frame of {len}/{} bytes decoded to {}",
                    frame.len(),
                    decoded.name()
                ),
            }
        }
    }

    #[test]
    fn corrupted_frames_never_panic(seed in any::<u64>()) {
        let frame = encode_message(&sample_message(seed));
        // Flip every byte (all 8 bit patterns would be slow; one flip per
        // position across 64 seeds covers the field space well).
        for position in 0..frame.len() {
            let mut corrupted = frame.clone();
            corrupted[position] ^= 0x41;
            // Must return *something* — a typed error or a (different but
            // well-formed) message. The call simply must not panic or hang.
            let _ = decode_message(&corrupted);
        }
        // Corrupting the version bytes specifically must yield the typed
        // version error carrying the supported range.
        for position in [2usize, 3] {
            let mut corrupted = frame.clone();
            corrupted[position] ^= 0x41;
            match decode_message(&corrupted) {
                Err(WireError::UnsupportedVersion { min, max, .. }) => {
                    prop_assert_eq!(min, pir_wire::MIN_SUPPORTED_VERSION);
                    prop_assert_eq!(max, pir_wire::MAX_SUPPORTED_VERSION);
                }
                other => prop_assert!(false, "expected version error, got {other:?}"),
            }
        }
    }

    #[test]
    fn upload_accounting_matches_the_paired_query(
        seed in any::<u64>(),
        entries in 2u64..1 << 18,
    ) {
        // `PirQuery::upload_bytes_per_server` (the number every
        // communication table in the repo reports) equals the encoded
        // length of either projection.
        let mut rng = StdRng::seed_from_u64(seed);
        let client = pir_protocol::PirClient::new(
            TableSchema::new(entries, 16),
            prf_kind_from(seed as u8),
        );
        let query = client.query(seed % entries, &mut rng);
        for party in 0..2u8 {
            let projection = query.to_server(party);
            let mut writer = pir_wire::codec::WireWriter::new();
            pir_wire::codec::encode_server_query(&projection, &mut writer);
            prop_assert_eq!(writer.len(), query.upload_bytes_per_server());
        }
    }
}
