//! Property tests of the v2 pipelined session against *adversarially
//! scheduled* mock servers:
//!
//! (a) whatever completion permutation the two servers pick — independently
//!     of each other — every pipelined query reconstructs its exact row,
//! (b) a v2 client against v1-only servers cleanly falls back to lockstep,
//! (c) a table-version stamp mismatch triggers exactly one transparent
//!     retry; a second mismatch fails the query with a typed error without
//!     poisoning the session.
//!
//! The mock servers answer real DPF queries (so reconstruction is the
//! ground truth) but control frame *scheduling* and *stamping* exactly —
//! the two knobs a real batching runtime cannot pin down deterministically.

use pir_prf::PrfKind;
use pir_protocol::{GpuPirServer, PirServer, PirTable, TableSchema};
use pir_wire::{
    decode_message_versioned, encode_message_v, loopback_pair, Catalog, CatalogEntry, ErrorReply,
    LoopbackTransport, PirSession, PirTransport, ResponseMsg, WireError, WireMessage, PROTOCOL_V1,
    PROTOCOL_V2,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENTRIES: u64 = 256;
const ENTRY_BYTES: usize = 8;

fn table() -> PirTable {
    PirTable::generate(ENTRIES, ENTRY_BYTES, |row, offset| {
        (row as u8).wrapping_mul(29).wrapping_add(offset as u8)
    })
}

/// How a mock server stamps the responses it sends, by answer sequence
/// number (0-based, counted per server).
#[derive(Clone, Copy)]
enum StampRule {
    /// Always the same version — the steady-state server.
    Fixed(u64),
    /// The first `n` answers carry `skewed`, everything after `settled` —
    /// models a hot reload landing between the two projections.
    SkewFirst { n: u64, skewed: u64, settled: u64 },
}

impl StampRule {
    fn stamp(self, seq: u64) -> u64 {
        match self {
            Self::Fixed(version) => version,
            Self::SkewFirst { n, skewed, settled } => {
                if seq < n {
                    skewed
                } else {
                    settled
                }
            }
        }
    }
}

struct MockConfig {
    party: u8,
    /// Version the catalog advertises (1 = "v1-only server").
    protocol_version: u16,
    /// Buffer this many queries, then flush them in a permuted order.
    /// 1 = answer immediately (lockstep-compatible).
    burst: usize,
    /// Seed of the permutation RNG.
    permute_seed: u64,
    stamp: StampRule,
}

/// Serve one connection: real DPF answers, scripted scheduling/stamping.
fn run_mock(mut transport: LoopbackTransport, config: MockConfig) {
    let server = GpuPirServer::with_defaults(table(), PrfKind::SipHash);
    let mut rng = StdRng::seed_from_u64(config.permute_seed);
    let mut buffered: Vec<(u16, ResponseMsg)> = Vec::new();
    let mut answered = 0u64;
    loop {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(WireError::ConnectionClosed) => return,
            Err(err) => panic!("mock transport failed: {err}"),
        };
        let (version, message) = decode_message_versioned(&frame).expect("well-formed frame");
        match message {
            WireMessage::CatalogRequest => {
                let reply = WireMessage::Catalog(Catalog {
                    protocol_version: config.protocol_version,
                    party: config.party,
                    tables: vec![CatalogEntry {
                        name: "t".into(),
                        schema: TableSchema::new(ENTRIES, ENTRY_BYTES),
                        prf_kind: PrfKind::SipHash,
                    }],
                });
                transport
                    .send(&encode_message_v(&reply, version))
                    .expect("catalog reply");
            }
            WireMessage::Query(query) => {
                if config.protocol_version == PROTOCOL_V1 {
                    assert_eq!(version, PROTOCOL_V1, "v1-only server saw a v2 frame");
                }
                let response = server.answer(&query.query).expect("mock answers");
                let table_version = config.stamp.stamp(answered);
                answered += 1;
                buffered.push((
                    version,
                    ResponseMsg {
                        response,
                        table_version,
                    },
                ));
                if buffered.len() >= config.burst {
                    // Fisher–Yates under the scripted seed: THE permutation
                    // under test.
                    for i in (1..buffered.len()).rev() {
                        let j = rng.gen_range(0..=i);
                        buffered.swap(i, j);
                    }
                    for (reply_version, msg) in buffered.drain(..) {
                        transport
                            .send(&encode_message_v(
                                &WireMessage::Response(msg),
                                reply_version,
                            ))
                            .expect("response");
                    }
                }
            }
            other => {
                let reply = WireMessage::Error(ErrorReply {
                    code: pir_wire::ErrorCode::InvalidRequest,
                    shed: false,
                    min_version: 0,
                    max_version: 0,
                    query_id: 0,
                    message: format!("mock cannot handle {}", other.name()),
                });
                transport
                    .send(&encode_message_v(&reply, version))
                    .expect("error reply");
            }
        }
    }
}

fn spawn_pair(
    config0: MockConfig,
    config1: MockConfig,
) -> ([Box<dyn PirTransport>; 2], [std::thread::JoinHandle<()>; 2]) {
    let (c0, s0) = loopback_pair();
    let (c1, s1) = loopback_pair();
    let w0 = std::thread::spawn(move || run_mock(s0, config0));
    let w1 = std::thread::spawn(move || run_mock(s1, config1));
    ([Box::new(c0), Box::new(c1)], [w0, w1])
}

fn expected_row(index: u64) -> Vec<u8> {
    table().entry(index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Interleaved response ordering: both servers flush each wave in
    /// their own random permutation, and every query must still
    /// reconstruct its exact row under its original id.
    #[test]
    fn random_completion_permutations_always_reconstruct(
        seed in any::<u64>(),
        wave in 2usize..12,
    ) {
        let ([t0, t1], [w0, w1]) = spawn_pair(
            MockConfig {
                party: 0,
                protocol_version: PROTOCOL_V2,
                burst: wave,
                permute_seed: seed,
                stamp: StampRule::Fixed(1),
            },
            MockConfig {
                party: 1,
                protocol_version: PROTOCOL_V2,
                burst: wave,
                // A *different* permutation on the second connection.
                permute_seed: seed.wrapping_add(0x9E37_79B9),
                stamp: StampRule::Fixed(1),
            },
        );
        let mut session =
            PirSession::connect_with_window(t0, t1, "prop", wave).expect("connect");
        prop_assert_eq!(session.negotiated_version(), PROTOCOL_V2);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        // Two waves back to back: permutations must not leak state across
        // waves either.
        for _ in 0..2 {
            let mut expected = std::collections::HashMap::new();
            for _ in 0..wave {
                let index = rng.gen_range(0..ENTRIES);
                let id = session.submit("t", index, &mut rng).expect("submit");
                expected.insert(id, expected_row(index));
            }
            for _ in 0..wave {
                let done = session.poll().expect("poll");
                let want = expected.remove(&done.query_id).expect("known id");
                prop_assert_eq!(done.outcome.expect("reconstructs"), want);
                prop_assert!(!done.retried);
            }
            prop_assert!(expected.is_empty());
        }
        let stats = session.pipeline_stats();
        prop_assert_eq!(stats.completed, 2 * wave as u64);
        prop_assert_eq!(stats.version_retries, 0);
        drop(session);
        w0.join().unwrap();
        w1.join().unwrap();
    }

    /// (b) A v2 client connecting to v1-only servers falls back to
    /// lockstep: version 1, window 1, unstamped frames — and every query
    /// still works.
    #[test]
    fn v2_client_falls_back_to_lockstep_against_v1_servers(seed in any::<u64>()) {
        let ([t0, t1], [w0, w1]) = spawn_pair(
            MockConfig {
                party: 0,
                protocol_version: PROTOCOL_V1,
                burst: 1,
                permute_seed: seed,
                stamp: StampRule::Fixed(0),
            },
            MockConfig {
                party: 1,
                protocol_version: PROTOCOL_V1,
                burst: 1,
                permute_seed: seed,
                stamp: StampRule::Fixed(0),
            },
        );
        let mut session =
            PirSession::connect_with_window(t0, t1, "prop", 16).expect("connect");
        prop_assert_eq!(session.negotiated_version(), PROTOCOL_V1);
        prop_assert_eq!(session.window(), 1);

        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let index = rng.gen_range(0..ENTRIES);
            let row = session.query("t", index, &mut rng).expect("answered");
            prop_assert_eq!(row, expected_row(index));
        }
        let stats = session.pipeline_stats();
        prop_assert_eq!(stats.version_retries, 0);
        prop_assert_eq!(stats.out_of_order_completions, 0);
        drop(session);
        w0.join().unwrap();
        w1.join().unwrap();
    }

    /// (c) A stamp mismatch triggers exactly one transparent retry; once
    /// the reload has settled, the retried query succeeds.
    #[test]
    fn version_stamp_mismatch_triggers_exactly_one_retry(seed in any::<u64>()) {
        let ([t0, t1], [w0, w1]) = spawn_pair(
            MockConfig {
                party: 0,
                protocol_version: PROTOCOL_V2,
                burst: 1,
                permute_seed: seed,
                stamp: StampRule::Fixed(7),
            },
            MockConfig {
                party: 1,
                protocol_version: PROTOCOL_V2,
                burst: 1,
                permute_seed: seed,
                // First answer straddles the reload (stamp 8 vs 7), the
                // retry lands after it settled.
                stamp: StampRule::SkewFirst { n: 1, skewed: 8, settled: 7 },
            },
        );
        let mut session = PirSession::connect(t0, t1, "prop").expect("connect");
        let mut rng = StdRng::seed_from_u64(seed);
        let index = rng.gen_range(0..ENTRIES);
        let id = session.submit("t", index, &mut rng).expect("submit");
        let done = session.poll().expect("poll");
        prop_assert_eq!(done.query_id, id);
        prop_assert!(done.retried);
        prop_assert_eq!(done.outcome.expect("retry reconstructs"), expected_row(index));
        let stats = session.pipeline_stats();
        prop_assert_eq!(stats.version_retries, 1);
        prop_assert_eq!(stats.version_skew_failures, 0);

        // The session is not poisoned: later queries run clean.
        let row = session.query("t", index, &mut rng).expect("still usable");
        prop_assert_eq!(row, expected_row(index));
        prop_assert_eq!(session.pipeline_stats().version_retries, 1);
        drop(session);
        w0.join().unwrap();
        w1.join().unwrap();
    }

    /// (c') If the stamps disagree *again* on the retry, the query fails
    /// with the typed skew error — after exactly one retry, never more —
    /// and the session survives.
    #[test]
    fn persistent_skew_fails_after_exactly_one_retry(seed in any::<u64>()) {
        let ([t0, t1], [w0, w1]) = spawn_pair(
            MockConfig {
                party: 0,
                protocol_version: PROTOCOL_V2,
                burst: 1,
                permute_seed: seed,
                stamp: StampRule::Fixed(7),
            },
            MockConfig {
                party: 1,
                protocol_version: PROTOCOL_V2,
                burst: 1,
                permute_seed: seed,
                // Skewed on the first attempt AND the retry; settles after.
                stamp: StampRule::SkewFirst { n: 2, skewed: 9, settled: 7 },
            },
        );
        let mut session = PirSession::connect(t0, t1, "prop").expect("connect");
        let mut rng = StdRng::seed_from_u64(seed);
        let index = rng.gen_range(0..ENTRIES);
        session.submit("t", index, &mut rng).expect("submit");
        let done = session.poll().expect("poll");
        prop_assert!(done.retried);
        match done.outcome {
            Err(WireError::VersionSkew { versions, .. }) => {
                prop_assert_eq!(versions, [7, 9]);
            }
            other => prop_assert!(false, "expected VersionSkew, got {other:?}"),
        }
        let stats = session.pipeline_stats();
        prop_assert_eq!(stats.version_retries, 1);
        prop_assert_eq!(stats.version_skew_failures, 1);

        // Third answer onward is settled: the session keeps working.
        let row = session.query("t", index, &mut rng).expect("recovered");
        prop_assert_eq!(row, expected_row(index));
        drop(session);
        w0.join().unwrap();
        w1.join().unwrap();
    }
}

/// A misbehaving server that answers the same in-flight query twice must
/// get a typed error, not corrupt the session's owed-frame accounting
/// (pre-fix, the duplicate decremented `owed` a second time, underflowing
/// it when the sibling query's answer arrived — panicking in debug, or
/// hanging the client on an idle connection in release).
#[test]
fn duplicate_answers_are_rejected_not_miscounted() {
    use pir_protocol::PirResponse;
    use pir_wire::SplitTransport;

    /// Replays a pre-scripted frame sequence; swallows sends.
    struct Scripted {
        incoming: std::collections::VecDeque<Vec<u8>>,
    }
    impl PirTransport for Scripted {
        fn send(&mut self, _frame: &[u8]) -> Result<(), WireError> {
            Ok(())
        }
        fn recv(&mut self) -> Result<Vec<u8>, WireError> {
            self.incoming.pop_front().ok_or(WireError::ConnectionClosed)
        }
        fn split(self: Box<Self>) -> SplitTransport {
            SplitTransport::Whole(self)
        }
    }

    let catalog = |party: u8| {
        encode_message_v(
            &WireMessage::Catalog(Catalog {
                protocol_version: PROTOCOL_V2,
                party,
                tables: vec![CatalogEntry {
                    name: "t".into(),
                    schema: TableSchema::new(ENTRIES, ENTRY_BYTES),
                    prf_kind: PrfKind::SipHash,
                }],
            }),
            PROTOCOL_V2,
        )
    };
    let response = |query_id: u64, party: u8| {
        encode_message_v(
            &WireMessage::Response(ResponseMsg {
                response: PirResponse {
                    query_id,
                    party,
                    share: vec![0; ENTRY_BYTES],
                },
                table_version: 1,
            }),
            PROTOCOL_V2,
        )
    };
    // The session assigns wire ids 1, 2, ... — script party 0 to answer
    // query 1 twice while party 1 (which answers only query 2) still owes
    // query 1's sibling share, so query 1 is in flight when the duplicate
    // lands. The owed-count pump order makes the interleaving
    // deterministic: party 0, party 1, party 0 (the duplicate).
    let server0 = Box::new(Scripted {
        incoming: [catalog(0), response(1, 0), response(1, 0)].into(),
    });
    let server1 = Box::new(Scripted {
        incoming: [catalog(1), response(2, 1)].into(),
    });

    let mut session = PirSession::connect_with_window(server0, server1, "t", 2).expect("connect");
    let mut rng = StdRng::seed_from_u64(11);
    session.submit("t", 0, &mut rng).expect("submit 1");
    session.submit("t", 1, &mut rng).expect("submit 2");
    match session.poll() {
        Err(WireError::InvalidRequest(message)) => {
            assert!(message.contains("twice"), "got: {message}");
        }
        other => panic!("expected InvalidRequest for the duplicate, got {other:?}"),
    }
}
