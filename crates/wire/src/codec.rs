//! Hand-rolled deterministic binary codecs for the protocol bodies.
//!
//! All integers are little-endian. Every record has exactly one canonical
//! encoding: flag bytes must be `0`/`1`, reserved bits must be zero, string
//! and vector lengths are explicit, and decoders reject anything else with a
//! typed [`WireError`] instead of guessing. That determinism is what lets
//! the rest of the workspace report *wire-true* communication costs —
//! [`ServerQuery::size_bytes`] and [`PirResponse::size_bytes`] are defined
//! as the exact lengths these encoders produce, and tests assert the two
//! never drift.

use pir_dpf::{CorrectionWord, DpfKey, DpfParams};
use pir_field::{Block128, Ring128};
use pir_prf::PrfKind;
use pir_protocol::{PirResponse, ServerQuery, TableSchema};

use crate::error::WireError;

/// Longest string (table / tenant names) the canonical encoding carries.
pub const MAX_STRING_BYTES: usize = u16::MAX as usize;

/// Append-only writer for the canonical encoding.
#[derive(Debug, Default)]
pub struct WireWriter {
    bytes: Vec<u8>,
}

impl WireWriter {
    /// Start an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a writer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finish and take the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Write one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.bytes.push(value);
    }

    /// Write a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Write a little-endian `u128`.
    pub fn put_u128(&mut self, value: u128) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Write a strict boolean (`0` or `1`).
    pub fn put_bool(&mut self, value: bool) {
        self.bytes.push(u8::from(value));
    }

    /// Write raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Write a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds [`MAX_STRING_BYTES`]; names crossing the
    /// wire are bounded well below that.
    pub fn put_string(&mut self, value: &str) {
        assert!(value.len() <= MAX_STRING_BYTES, "string too long for wire");
        self.put_u16(value.len() as u16);
        self.bytes.extend_from_slice(value.as_bytes());
    }

    /// Write a `u32`-length-prefixed byte blob.
    pub fn put_bytes(&mut self, value: &[u8]) {
        self.put_u32(value.len() as u32);
        self.bytes.extend_from_slice(value);
    }
}

/// Cursor over a received frame; every read is bounds-checked.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take `len` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos.saturating_add(len))
            .ok_or(WireError::Truncated {
                needed: len,
                available: self.remaining(),
            })?;
        self.pos += len;
        Ok(slice)
    }

    /// Take exactly `N` bytes as a fixed-size array.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated {
            needed: N,
            available: 0,
        })
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of frame.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of frame.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of frame.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of frame.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of frame.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take_array()?))
    }

    /// Read a strict boolean byte (`0` or `1`).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidValue`] for any other byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidValue("boolean byte must be 0 or 1")),
        }
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] / [`WireError::InvalidValue`] on
    /// short or non-UTF-8 payloads.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::InvalidValue("string is not UTF-8"))
    }

    /// Read a `u32`-length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the declared length overruns the
    /// frame (checked before any allocation).
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Assert the frame is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] otherwise — a canonical message
    /// is exactly as long as its fields.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Encode a [`PrfKind`] as its stable wire byte.
#[must_use]
pub fn encode_prf_kind(kind: PrfKind) -> u8 {
    match kind {
        PrfKind::Aes128 => 0,
        PrfKind::Sha256 => 1,
        PrfKind::Chacha20 => 2,
        PrfKind::SipHash => 3,
        PrfKind::HighwayHash => 4,
    }
}

/// Decode a [`PrfKind`] from its wire byte.
///
/// # Errors
///
/// Returns [`WireError::InvalidValue`] for unknown bytes.
pub fn decode_prf_kind(value: u8) -> Result<PrfKind, WireError> {
    match value {
        0 => Ok(PrfKind::Aes128),
        1 => Ok(PrfKind::Sha256),
        2 => Ok(PrfKind::Chacha20),
        3 => Ok(PrfKind::SipHash),
        4 => Ok(PrfKind::HighwayHash),
        _ => Err(WireError::InvalidValue("unknown PRF kind byte")),
    }
}

/// Encode a [`TableSchema`]: 8-byte entry count, 4-byte entry width.
pub fn encode_schema(schema: TableSchema, writer: &mut WireWriter) {
    writer.put_u64(schema.entries);
    writer.put_u32(schema.entry_bytes as u32);
}

/// Decode a [`TableSchema`].
///
/// # Errors
///
/// Returns [`WireError::InvalidValue`] for zero-sized dimensions (which the
/// in-memory type forbids with panics — decoders must never panic).
pub fn decode_schema(reader: &mut WireReader<'_>) -> Result<TableSchema, WireError> {
    let entries = reader.u64()?;
    let entry_bytes = reader.u32()? as usize;
    if entries == 0 {
        return Err(WireError::InvalidValue("schema with zero entries"));
    }
    if entry_bytes == 0 {
        return Err(WireError::InvalidValue("schema with zero-byte entries"));
    }
    Ok(TableSchema {
        entries,
        entry_bytes,
    })
}

/// `DpfKey` header byte: party in bit 7, tree depth in bits 0..=6.
const KEY_PARTY_BIT: u8 = 0x80;
const KEY_DEPTH_MASK: u8 = 0x7F;
/// `CorrectionWord` flag byte: `t_left` in bit 0, `t_right` in bit 1.
const CW_T_LEFT: u8 = 0x01;
const CW_T_RIGHT: u8 = 0x02;

/// Encode a [`DpfKey`] in its canonical `DpfKey::size_bytes()` layout:
/// 1 header byte (party bit + depth), 16-byte root seed, 17 bytes per level
/// (seed correction + flag byte), 16-byte final correction word.
///
/// The domain *size* is not part of the key record — it travels in the
/// enclosing [`ServerQuery`]'s schema, and the depth is re-derived from it
/// on decode.
pub fn encode_dpf_key(key: &DpfKey, writer: &mut WireWriter) {
    debug_assert_eq!(
        key.levels.len(),
        key.params.domain_bits as usize,
        "key has one correction word per level"
    );
    debug_assert!(key.params.domain_bits <= u32::from(KEY_DEPTH_MASK));
    writer.put_u8((key.party & 1) << 7 | (key.params.domain_bits as u8 & KEY_DEPTH_MASK));
    writer.put_u128(key.root_seed.as_u128());
    for level in &key.levels {
        writer.put_u128(level.seed.as_u128());
        let mut flags = 0u8;
        if level.t_left {
            flags |= CW_T_LEFT;
        }
        if level.t_right {
            flags |= CW_T_RIGHT;
        }
        writer.put_u8(flags);
    }
    writer.put_u128(key.final_cw.value());
}

/// Decode a [`DpfKey`] for a table of `domain_size` entries.
///
/// # Errors
///
/// Returns [`WireError::InvalidValue`] if the header depth disagrees with
/// `domain_size` (a key that could never match the table it claims to
/// query) or a correction-word flag byte has reserved bits set, and
/// [`WireError::Truncated`] on short frames.
pub fn decode_dpf_key(reader: &mut WireReader<'_>, domain_size: u64) -> Result<DpfKey, WireError> {
    let header = reader.u8()?;
    let party = u8::from(header & KEY_PARTY_BIT != 0);
    let depth = u32::from(header & KEY_DEPTH_MASK);
    let params = DpfParams::for_domain(domain_size);
    if params.domain_bits != depth {
        return Err(WireError::InvalidValue("key depth does not match schema"));
    }
    let root_seed = Block128::from_u128(reader.u128()?);
    let mut levels = Vec::with_capacity(depth as usize);
    for _ in 0..depth {
        let seed = Block128::from_u128(reader.u128()?);
        let flags = reader.u8()?;
        if flags & !(CW_T_LEFT | CW_T_RIGHT) != 0 {
            return Err(WireError::InvalidValue(
                "correction-word flag byte has reserved bits set",
            ));
        }
        levels.push(CorrectionWord {
            seed,
            t_left: flags & CW_T_LEFT != 0,
            t_right: flags & CW_T_RIGHT != 0,
        });
    }
    let final_cw = Ring128::new(reader.u128()?);
    Ok(DpfKey {
        party,
        params,
        root_seed,
        levels,
        final_cw,
    })
}

/// Encode a [`ServerQuery`] record: 8-byte query id, schema, DPF key.
///
/// Produces exactly [`ServerQuery::size_bytes`] bytes.
pub fn encode_server_query(query: &ServerQuery, writer: &mut WireWriter) {
    writer.put_u64(query.query_id);
    encode_schema(query.schema, writer);
    encode_dpf_key(&query.key, writer);
}

/// Decode a [`ServerQuery`] record.
///
/// # Errors
///
/// Propagates schema and key decode failures.
pub fn decode_server_query(reader: &mut WireReader<'_>) -> Result<ServerQuery, WireError> {
    let query_id = reader.u64()?;
    let schema = decode_schema(reader)?;
    let key = decode_dpf_key(reader, schema.entries)?;
    Ok(ServerQuery {
        query_id,
        schema,
        key,
    })
}

/// Encode a [`PirResponse`] record: 8-byte query id, 1-byte party, 4-byte
/// lane count, then the lanes.
///
/// Produces exactly [`PirResponse::size_bytes`] bytes.
pub fn encode_response(response: &PirResponse, writer: &mut WireWriter) {
    writer.put_u64(response.query_id);
    writer.put_u8(response.party);
    writer.put_u32(response.share.len() as u32);
    for lane in &response.share {
        writer.put_u32(*lane);
    }
}

/// Decode a [`PirResponse`] record.
///
/// # Errors
///
/// Returns [`WireError::InvalidValue`] for a party byte other than 0/1 and
/// [`WireError::Truncated`] if the declared lane count overruns the frame
/// (checked before any allocation).
pub fn decode_response(reader: &mut WireReader<'_>) -> Result<PirResponse, WireError> {
    let query_id = reader.u64()?;
    let party = reader.u8()?;
    if party > 1 {
        return Err(WireError::InvalidValue("response party must be 0 or 1"));
    }
    let lanes = reader.u32()? as usize;
    if lanes.saturating_mul(4) > reader.remaining() {
        return Err(WireError::Truncated {
            needed: lanes.saturating_mul(4),
            available: reader.remaining(),
        });
    }
    let mut share = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        share.push(reader.u32()?);
    }
    Ok(PirResponse {
        query_id,
        party,
        share,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_dpf::generate_keys;
    use pir_prf::{build_prf, GgmPrg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_query(seed: u64, entries: u64) -> ServerQuery {
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DpfParams::for_domain(entries);
        let (key0, _key1) = generate_keys(&prg, &params, seed % entries, Ring128::ONE, &mut rng);
        ServerQuery {
            query_id: seed.wrapping_mul(77),
            schema: TableSchema::new(entries, 24),
            key: key0,
        }
    }

    #[test]
    fn server_query_roundtrips_and_size_is_wire_true() {
        for entries in [1u64, 2, 3, 1000, 1 << 16] {
            let query = sample_query(9, entries);
            let mut writer = WireWriter::new();
            encode_server_query(&query, &mut writer);
            let bytes = writer.into_bytes();
            assert_eq!(bytes.len(), query.size_bytes(), "{entries} entries");

            let mut reader = WireReader::new(&bytes);
            let decoded = decode_server_query(&mut reader).unwrap();
            reader.finish().unwrap();
            assert_eq!(decoded, query);
        }
    }

    #[test]
    fn response_roundtrips_and_size_is_wire_true() {
        let response = PirResponse {
            query_id: 31,
            party: 1,
            share: (0..33u32).collect(),
        };
        let mut writer = WireWriter::new();
        encode_response(&response, &mut writer);
        let bytes = writer.into_bytes();
        assert_eq!(bytes.len(), response.size_bytes());
        let mut reader = WireReader::new(&bytes);
        assert_eq!(decode_response(&mut reader).unwrap(), response);
        reader.finish().unwrap();
    }

    #[test]
    fn mismatched_key_depth_is_rejected() {
        let query = sample_query(4, 1024);
        let mut writer = WireWriter::new();
        writer.put_u64(query.query_id);
        // Lie about the table size: 512 entries needs depth 9, key has 10.
        encode_schema(TableSchema::new(512, 24), &mut writer);
        encode_dpf_key(&query.key, &mut writer);
        let bytes = writer.into_bytes();
        assert_eq!(
            decode_server_query(&mut WireReader::new(&bytes)),
            Err(WireError::InvalidValue("key depth does not match schema"))
        );
    }

    #[test]
    fn oversized_share_length_does_not_allocate() {
        let mut writer = WireWriter::new();
        writer.put_u64(1);
        writer.put_u8(0);
        writer.put_u32(u32::MAX); // declares a 16 GiB share
        let bytes = writer.into_bytes();
        assert!(matches!(
            decode_response(&mut WireReader::new(&bytes)),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn strict_booleans_and_strings() {
        let mut writer = WireWriter::new();
        writer.put_u8(2);
        assert_eq!(
            WireReader::new(&writer.into_bytes()).bool(),
            Err(WireError::InvalidValue("boolean byte must be 0 or 1"))
        );

        let mut writer = WireWriter::new();
        writer.put_u16(2);
        writer.put_raw(&[0xFF, 0xFE]);
        assert!(matches!(
            WireReader::new(&writer.into_bytes()).string(),
            Err(WireError::InvalidValue(_))
        ));

        let mut writer = WireWriter::new();
        writer.put_string("emb");
        let bytes = writer.into_bytes();
        let mut reader = WireReader::new(&bytes);
        assert_eq!(reader.string().unwrap(), "emb");
        reader.finish().unwrap();
    }

    #[test]
    fn prf_kinds_roundtrip() {
        for kind in PrfKind::ALL {
            assert_eq!(decode_prf_kind(encode_prf_kind(kind)).unwrap(), kind);
        }
        assert!(decode_prf_kind(9).is_err());
    }
}
