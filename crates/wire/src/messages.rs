//! The protocol's message set and its frame-level encode/decode entry
//! points.
//!
//! Everything that crosses the client↔server trust boundary is one of the
//! [`WireMessage`] variants below, wrapped in a [`WireEnvelope`]. Note what
//! is *not* here: there is no message carrying both DPF keys. The paired
//! [`PirQuery`](pir_protocol::PirQuery) never leaves the client — each
//! server only ever receives its own [`ServerQuery`] projection.

use pir_prf::PrfKind;
use pir_protocol::{PirResponse, ServerQuery, TableSchema};

use crate::codec::{
    decode_prf_kind, decode_response, decode_schema, decode_server_query, encode_prf_kind,
    encode_response, encode_schema, encode_server_query, WireReader, WireWriter,
};
use crate::envelope::{
    MsgType, WireEnvelope, MAX_SUPPORTED_VERSION, MIN_SUPPORTED_VERSION, PROTOCOL_V1, PROTOCOL_V2,
};
use crate::error::{ErrorCode, WireError};

/// One table a server advertises in its catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Registered table name.
    pub name: String,
    /// Table shape queries must be generated for.
    pub schema: TableSchema,
    /// PRF family the table's servers evaluate (must match key generation).
    pub prf_kind: PrfKind,
}

/// A server's self-description: protocol version, which non-colluding party
/// it is, and the tables it hosts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Catalog {
    /// Highest protocol version the server speaks.
    pub protocol_version: u16,
    /// The party (0 or 1) this server answers for.
    pub party: u8,
    /// Hosted tables, sorted by name.
    pub tables: Vec<CatalogEntry>,
}

/// A client query frame: routing fields plus one server's key projection.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryMsg {
    /// Which hosted table to read.
    pub table: String,
    /// Tenant the query is accounted against (quotas, telemetry).
    pub tenant: String,
    /// This server's projection of the query (schema + ONE key).
    pub query: ServerQuery,
}

/// One server's answer share, with its table-version stamp.
///
/// The stamp is a v2 addition: each party counts the hot reloads it has
/// applied to the table (starting at 1), and every share is stamped with the
/// version it was computed against. A client holding two shares whose stamps
/// differ knows the query straddled a reload — the shares would reconstruct
/// garbage — and retries instead. Under v1 framing the stamp is not encoded
/// and decodes as 0 ("unstamped").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseMsg {
    /// The answer share (query id, party, lanes).
    pub response: PirResponse,
    /// Table version the share was computed against (v2 frames only; 0
    /// under v1 framing).
    pub table_version: u64,
}

/// An admin frame overwriting one table entry (hot reload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateEntryMsg {
    /// Which hosted table to update.
    pub table: String,
    /// Row to overwrite.
    pub index: u64,
    /// New row value; must match the schema's entry width exactly.
    pub bytes: Vec<u8>,
}

/// Acknowledgement that an update was applied to every replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateAckMsg {
    /// Echoed table name.
    pub table: String,
    /// Echoed row index.
    pub index: u64,
}

/// A typed error / backpressure reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Whether this is a load-shedding signal (retry later) rather than a
    /// hard failure.
    pub shed: bool,
    /// For [`ErrorCode::UnsupportedVersion`]: the lowest version the server
    /// accepts. Zero otherwise.
    pub min_version: u16,
    /// For [`ErrorCode::UnsupportedVersion`]: the highest version the
    /// server accepts. Zero otherwise.
    pub max_version: u16,
    /// The query this error answers, so a pipelined client can attribute it
    /// (v2 frames only; 0 = connection-level error, and always 0 under v1
    /// framing, where attribution is positional).
    pub query_id: u64,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorReply {
    /// The reply a server sends when a frame's version is outside its
    /// supported range (the reject-with-supported-range negotiation rule).
    #[must_use]
    pub fn unsupported_version(got: u16) -> Self {
        Self::unsupported_range(got, MIN_SUPPORTED_VERSION, MAX_SUPPORTED_VERSION)
    }

    /// Like [`Self::unsupported_version`], but advertising an explicit
    /// range — a server capped below [`MAX_SUPPORTED_VERSION`] (staged
    /// rollout) rejects newer frames with its *own* ceiling.
    #[must_use]
    pub fn unsupported_range(got: u16, min: u16, max: u16) -> Self {
        Self {
            code: ErrorCode::UnsupportedVersion,
            shed: false,
            min_version: min,
            max_version: max,
            query_id: 0,
            message: format!("version {got} is not supported"),
        }
    }

    /// Convert into the typed client-side error; `spoken` is the protocol
    /// version this side had used (echoed into
    /// [`WireError::UnsupportedVersion::got`] for version rejections).
    #[must_use]
    pub fn into_wire_error(self, spoken: u16) -> WireError {
        if self.code == ErrorCode::UnsupportedVersion {
            // `got` is the version *we* spoke — the peer rejected it and
            // told us its supported range.
            return WireError::UnsupportedVersion {
                got: spoken,
                min: self.min_version,
                max: self.max_version,
            };
        }
        WireError::Remote {
            code: self.code,
            shed: self.shed,
            message: self.message,
        }
    }
}

/// Every message that can cross the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMessage {
    /// Client → server: describe your tables.
    CatalogRequest,
    /// Server → client: the catalog.
    Catalog(Catalog),
    /// Client → server: one key projection of a query.
    Query(QueryMsg),
    /// Server → client: one answer share (stamped under v2 framing).
    Response(ResponseMsg),
    /// Server → client: typed error / backpressure.
    Error(ErrorReply),
    /// Admin → server: overwrite one entry.
    UpdateEntry(UpdateEntryMsg),
    /// Server → admin: update applied.
    UpdateAck(UpdateAckMsg),
}

impl WireMessage {
    /// The envelope tag this message travels under.
    #[must_use]
    pub fn msg_type(&self) -> MsgType {
        match self {
            Self::CatalogRequest => MsgType::CatalogRequest,
            Self::Catalog(_) => MsgType::Catalog,
            Self::Query(_) => MsgType::Query,
            Self::Response(_) => MsgType::Response,
            Self::Error(_) => MsgType::Error,
            Self::UpdateEntry(_) => MsgType::UpdateEntry,
            Self::UpdateAck(_) => MsgType::UpdateAck,
        }
    }

    /// Human-readable message name for diagnostics.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.msg_type().name()
    }
}

/// Encode a message into a complete frame under the baseline
/// [`PROTOCOL_V1`] framing (no stamps, positional error attribution).
#[must_use]
pub fn encode_message(message: &WireMessage) -> Vec<u8> {
    encode_message_v(message, PROTOCOL_V1)
}

/// Encode a message into a complete frame under an explicit protocol
/// version.
///
/// The two versions share every body layout except:
///
/// * `Response` — v2 appends the 8-byte table-version stamp;
/// * `Error` — v2 appends the 8-byte query id the error answers.
///
/// Encoding a stamped [`ResponseMsg`] under v1 silently drops the stamp
/// (v1 cannot carry it); decoding it back yields `table_version == 0`.
///
/// # Panics
///
/// Panics if `version` is outside the supported range: the version here is
/// chosen by this implementation (negotiated or echoed from a frame that
/// already passed range validation), so an out-of-range value is a
/// programming error, not untrusted input.
#[must_use]
pub fn encode_message_v(message: &WireMessage, version: u16) -> Vec<u8> {
    assert!(
        (MIN_SUPPORTED_VERSION..=MAX_SUPPORTED_VERSION).contains(&version),
        "cannot encode under unsupported version {version}"
    );
    let mut body = WireWriter::new();
    match message {
        WireMessage::CatalogRequest => {}
        WireMessage::Catalog(catalog) => {
            body.put_u16(catalog.protocol_version);
            body.put_u8(catalog.party);
            body.put_u32(catalog.tables.len() as u32);
            for entry in &catalog.tables {
                body.put_string(&entry.name);
                encode_schema(entry.schema, &mut body);
                body.put_u8(encode_prf_kind(entry.prf_kind));
            }
        }
        WireMessage::Query(query) => {
            body.put_string(&query.table);
            body.put_string(&query.tenant);
            encode_server_query(&query.query, &mut body);
        }
        WireMessage::Response(response) => {
            encode_response(&response.response, &mut body);
            if version >= PROTOCOL_V2 {
                body.put_u64(response.table_version);
            }
        }
        WireMessage::Error(error) => {
            body.put_u8(error.code as u8);
            body.put_bool(error.shed);
            body.put_u16(error.min_version);
            body.put_u16(error.max_version);
            body.put_string(&error.message);
            if version >= PROTOCOL_V2 {
                body.put_u64(error.query_id);
            }
        }
        WireMessage::UpdateEntry(update) => {
            body.put_string(&update.table);
            body.put_u64(update.index);
            body.put_bytes(&update.bytes);
        }
        WireMessage::UpdateAck(ack) => {
            body.put_string(&ack.table);
            body.put_u64(ack.index);
        }
    }
    WireEnvelope::with_version(version, message.msg_type(), body.into_bytes()).encode()
}

/// Decode a complete frame into a message.
///
/// # Errors
///
/// Returns the appropriate [`WireError`] for any malformed, truncated,
/// wrong-version or trailing-garbage frame; this function never panics on
/// untrusted input.
pub fn decode_message(frame: &[u8]) -> Result<WireMessage, WireError> {
    decode_message_versioned(frame).map(|(_, message)| message)
}

/// Decode a complete frame into its protocol version and message.
///
/// Body layouts differ by version (see [`encode_message_v`]), and a server
/// must echo replies in the version the request arrived under — this variant
/// surfaces it.
///
/// # Errors
///
/// Same as [`decode_message`].
pub fn decode_message_versioned(frame: &[u8]) -> Result<(u16, WireMessage), WireError> {
    let envelope = WireEnvelope::decode(frame)?;
    let version = envelope.version;
    let mut reader = WireReader::new(&envelope.body);
    let message = match envelope.msg_type {
        MsgType::CatalogRequest => WireMessage::CatalogRequest,
        MsgType::Catalog => {
            let protocol_version = reader.u16()?;
            let party = reader.u8()?;
            if party > 1 {
                return Err(WireError::InvalidValue("catalog party must be 0 or 1"));
            }
            let count = reader.u32()? as usize;
            let mut tables = Vec::new();
            for _ in 0..count {
                let name = reader.string()?;
                let schema = decode_schema(&mut reader)?;
                let prf_kind = decode_prf_kind(reader.u8()?)?;
                tables.push(CatalogEntry {
                    name,
                    schema,
                    prf_kind,
                });
            }
            WireMessage::Catalog(Catalog {
                protocol_version,
                party,
                tables,
            })
        }
        MsgType::Query => {
            let table = reader.string()?;
            let tenant = reader.string()?;
            let query = decode_server_query(&mut reader)?;
            WireMessage::Query(QueryMsg {
                table,
                tenant,
                query,
            })
        }
        MsgType::Response => {
            let response = decode_response(&mut reader)?;
            let table_version = if version >= PROTOCOL_V2 {
                reader.u64()?
            } else {
                0
            };
            WireMessage::Response(ResponseMsg {
                response,
                table_version,
            })
        }
        MsgType::Error => {
            let code_byte = reader.u8()?;
            let code = ErrorCode::from_u8(code_byte)
                .ok_or(WireError::InvalidValue("unknown error code byte"))?;
            let shed = reader.bool()?;
            let min_version = reader.u16()?;
            let max_version = reader.u16()?;
            let message = reader.string()?;
            let query_id = if version >= PROTOCOL_V2 {
                reader.u64()?
            } else {
                0
            };
            WireMessage::Error(ErrorReply {
                code,
                shed,
                min_version,
                max_version,
                query_id,
                message,
            })
        }
        MsgType::UpdateEntry => {
            let table = reader.string()?;
            let index = reader.u64()?;
            let bytes = reader.bytes()?;
            WireMessage::UpdateEntry(UpdateEntryMsg {
                table,
                index,
                bytes,
            })
        }
        MsgType::UpdateAck => {
            let table = reader.string()?;
            let index = reader.u64()?;
            WireMessage::UpdateAck(UpdateAckMsg { table, index })
        }
    };
    reader.finish()?;
    Ok((version, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_dpf::{generate_keys, DpfParams};
    use pir_field::Ring128;
    use pir_prf::{build_prf, GgmPrg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_messages() -> Vec<WireMessage> {
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let mut rng = StdRng::seed_from_u64(5);
        let params = DpfParams::for_domain(4096);
        let (key0, _) = generate_keys(&prg, &params, 17, Ring128::ONE, &mut rng);
        vec![
            WireMessage::CatalogRequest,
            WireMessage::Catalog(Catalog {
                protocol_version: 1,
                party: 1,
                tables: vec![
                    CatalogEntry {
                        name: "embeddings".into(),
                        schema: TableSchema::new(4096, 64),
                        prf_kind: PrfKind::Chacha20,
                    },
                    CatalogEntry {
                        name: "users".into(),
                        schema: TableSchema::new(100, 8),
                        prf_kind: PrfKind::SipHash,
                    },
                ],
            }),
            WireMessage::Query(QueryMsg {
                table: "embeddings".into(),
                tenant: "tenant-a".into(),
                query: ServerQuery {
                    query_id: 12,
                    schema: TableSchema::new(4096, 64),
                    key: key0,
                },
            }),
            WireMessage::Response(ResponseMsg {
                response: PirResponse {
                    query_id: 12,
                    party: 0,
                    share: vec![1, 2, 3, 4],
                },
                table_version: 0,
            }),
            WireMessage::Error(ErrorReply {
                code: ErrorCode::Shed,
                shed: true,
                min_version: 0,
                max_version: 0,
                query_id: 0,
                message: "queue full".into(),
            }),
            WireMessage::UpdateEntry(UpdateEntryMsg {
                table: "users".into(),
                index: 3,
                bytes: vec![9; 8],
            }),
            WireMessage::UpdateAck(UpdateAckMsg {
                table: "users".into(),
                index: 3,
            }),
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for message in sample_messages() {
            let frame = encode_message(&message);
            let decoded = decode_message(&frame).unwrap();
            assert_eq!(decoded, message, "{}", message.name());
        }
    }

    #[test]
    fn every_message_roundtrips_under_v2() {
        for message in sample_messages() {
            let frame = encode_message_v(&message, PROTOCOL_V2);
            let (version, decoded) = decode_message_versioned(&frame).unwrap();
            assert_eq!(version, PROTOCOL_V2);
            assert_eq!(decoded, message, "{}", message.name());
        }
    }

    #[test]
    fn stamps_and_error_ids_survive_v2_and_drop_under_v1() {
        let stamped = WireMessage::Response(ResponseMsg {
            response: PirResponse {
                query_id: 99,
                party: 1,
                share: vec![5, 6],
            },
            table_version: 41,
        });
        let v2 = encode_message_v(&stamped, PROTOCOL_V2);
        assert_eq!(decode_message(&v2).unwrap(), stamped);
        // v1 framing cannot carry the stamp: it decodes as 0 ("unstamped").
        let v1 = encode_message_v(&stamped, PROTOCOL_V1);
        assert_eq!(v1.len() + 8, v2.len(), "stamp is exactly 8 bytes");
        match decode_message(&v1).unwrap() {
            WireMessage::Response(msg) => {
                assert_eq!(msg.table_version, 0);
                assert_eq!(msg.response.query_id, 99);
            }
            other => panic!("expected response, got {}", other.name()),
        }

        let attributed = WireMessage::Error(ErrorReply {
            code: ErrorCode::Shed,
            shed: true,
            min_version: 0,
            max_version: 0,
            query_id: 77,
            message: "queue full".into(),
        });
        let v2 = encode_message_v(&attributed, PROTOCOL_V2);
        assert_eq!(decode_message(&v2).unwrap(), attributed);
        match decode_message(&encode_message_v(&attributed, PROTOCOL_V1)).unwrap() {
            WireMessage::Error(reply) => assert_eq!(reply.query_id, 0),
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_message(&WireMessage::CatalogRequest);
        // Append garbage and fix up the declared body length so the envelope
        // itself stays valid — the *message* decoder must reject it.
        frame.push(0xAB);
        let body_len = (frame.len() - 9) as u32;
        frame[5..9].copy_from_slice(&body_len.to_le_bytes());
        assert_eq!(
            decode_message(&frame),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn unsupported_version_reply_carries_range() {
        let reply = ErrorReply::unsupported_version(99);
        assert_eq!(reply.min_version, MIN_SUPPORTED_VERSION);
        assert_eq!(reply.max_version, MAX_SUPPORTED_VERSION);
        assert!(matches!(
            reply.into_wire_error(PROTOCOL_V2),
            WireError::UnsupportedVersion {
                got: PROTOCOL_V2,
                ..
            }
        ));
    }

    #[test]
    fn query_frames_carry_exactly_one_key() {
        // The trust-boundary property at the message level: a Query frame
        // encodes one ServerQuery, and there is no message type that could
        // carry a key pair.
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let mut rng = StdRng::seed_from_u64(6);
        let params = DpfParams::for_domain(1024);
        let (key0, key1) = generate_keys(&prg, &params, 5, Ring128::ONE, &mut rng);
        let frame = encode_message(&WireMessage::Query(QueryMsg {
            table: "t".into(),
            tenant: "a".into(),
            query: ServerQuery {
                query_id: 1,
                schema: TableSchema::new(1024, 16),
                key: key0.clone(),
            },
        }));
        let needle0 = key0.root_seed.to_le_bytes();
        let needle1 = key1.root_seed.to_le_bytes();
        let contains = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).any(|w| w == needle);
        assert!(contains(&frame, &needle0));
        assert!(!contains(&frame, &needle1));
    }
}
