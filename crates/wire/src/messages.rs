//! The protocol's message set and its frame-level encode/decode entry
//! points.
//!
//! Everything that crosses the client↔server trust boundary is one of the
//! [`WireMessage`] variants below, wrapped in a [`WireEnvelope`]. Note what
//! is *not* here: there is no message carrying both DPF keys. The paired
//! [`PirQuery`](pir_protocol::PirQuery) never leaves the client — each
//! server only ever receives its own [`ServerQuery`] projection.

use pir_prf::PrfKind;
use pir_protocol::{PirResponse, ServerQuery, TableSchema};

use crate::codec::{
    decode_prf_kind, decode_response, decode_schema, decode_server_query, encode_prf_kind,
    encode_response, encode_schema, encode_server_query, WireReader, WireWriter,
};
use crate::envelope::{
    MsgType, WireEnvelope, MAX_SUPPORTED_VERSION, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use crate::error::{ErrorCode, WireError};

/// One table a server advertises in its catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Registered table name.
    pub name: String,
    /// Table shape queries must be generated for.
    pub schema: TableSchema,
    /// PRF family the table's servers evaluate (must match key generation).
    pub prf_kind: PrfKind,
}

/// A server's self-description: protocol version, which non-colluding party
/// it is, and the tables it hosts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Catalog {
    /// Highest protocol version the server speaks.
    pub protocol_version: u16,
    /// The party (0 or 1) this server answers for.
    pub party: u8,
    /// Hosted tables, sorted by name.
    pub tables: Vec<CatalogEntry>,
}

/// A client query frame: routing fields plus one server's key projection.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryMsg {
    /// Which hosted table to read.
    pub table: String,
    /// Tenant the query is accounted against (quotas, telemetry).
    pub tenant: String,
    /// This server's projection of the query (schema + ONE key).
    pub query: ServerQuery,
}

/// An admin frame overwriting one table entry (hot reload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateEntryMsg {
    /// Which hosted table to update.
    pub table: String,
    /// Row to overwrite.
    pub index: u64,
    /// New row value; must match the schema's entry width exactly.
    pub bytes: Vec<u8>,
}

/// Acknowledgement that an update was applied to every replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateAckMsg {
    /// Echoed table name.
    pub table: String,
    /// Echoed row index.
    pub index: u64,
}

/// A typed error / backpressure reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Whether this is a load-shedding signal (retry later) rather than a
    /// hard failure.
    pub shed: bool,
    /// For [`ErrorCode::UnsupportedVersion`]: the lowest version the server
    /// accepts. Zero otherwise.
    pub min_version: u16,
    /// For [`ErrorCode::UnsupportedVersion`]: the highest version the
    /// server accepts. Zero otherwise.
    pub max_version: u16,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorReply {
    /// The reply a server sends when a frame's version is outside its
    /// supported range (the reject-with-supported-range negotiation rule).
    #[must_use]
    pub fn unsupported_version(got: u16) -> Self {
        Self {
            code: ErrorCode::UnsupportedVersion,
            shed: false,
            min_version: MIN_SUPPORTED_VERSION,
            max_version: MAX_SUPPORTED_VERSION,
            message: format!("version {got} is not supported"),
        }
    }

    /// Convert into the typed client-side error.
    #[must_use]
    pub fn into_wire_error(self) -> WireError {
        if self.code == ErrorCode::UnsupportedVersion {
            // `got` is the version *we* spoke — the peer rejected it and
            // told us its supported range.
            return WireError::UnsupportedVersion {
                got: PROTOCOL_VERSION,
                min: self.min_version,
                max: self.max_version,
            };
        }
        WireError::Remote {
            code: self.code,
            shed: self.shed,
            message: self.message,
        }
    }
}

/// Every message that can cross the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMessage {
    /// Client → server: describe your tables.
    CatalogRequest,
    /// Server → client: the catalog.
    Catalog(Catalog),
    /// Client → server: one key projection of a query.
    Query(QueryMsg),
    /// Server → client: one answer share.
    Response(PirResponse),
    /// Server → client: typed error / backpressure.
    Error(ErrorReply),
    /// Admin → server: overwrite one entry.
    UpdateEntry(UpdateEntryMsg),
    /// Server → admin: update applied.
    UpdateAck(UpdateAckMsg),
}

impl WireMessage {
    /// The envelope tag this message travels under.
    #[must_use]
    pub fn msg_type(&self) -> MsgType {
        match self {
            Self::CatalogRequest => MsgType::CatalogRequest,
            Self::Catalog(_) => MsgType::Catalog,
            Self::Query(_) => MsgType::Query,
            Self::Response(_) => MsgType::Response,
            Self::Error(_) => MsgType::Error,
            Self::UpdateEntry(_) => MsgType::UpdateEntry,
            Self::UpdateAck(_) => MsgType::UpdateAck,
        }
    }

    /// Human-readable message name for diagnostics.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.msg_type().name()
    }
}

/// Encode a message into a complete frame (envelope header + body).
#[must_use]
pub fn encode_message(message: &WireMessage) -> Vec<u8> {
    let mut body = WireWriter::new();
    match message {
        WireMessage::CatalogRequest => {}
        WireMessage::Catalog(catalog) => {
            body.put_u16(catalog.protocol_version);
            body.put_u8(catalog.party);
            body.put_u32(catalog.tables.len() as u32);
            for entry in &catalog.tables {
                body.put_string(&entry.name);
                encode_schema(entry.schema, &mut body);
                body.put_u8(encode_prf_kind(entry.prf_kind));
            }
        }
        WireMessage::Query(query) => {
            body.put_string(&query.table);
            body.put_string(&query.tenant);
            encode_server_query(&query.query, &mut body);
        }
        WireMessage::Response(response) => {
            encode_response(response, &mut body);
        }
        WireMessage::Error(error) => {
            body.put_u8(error.code as u8);
            body.put_bool(error.shed);
            body.put_u16(error.min_version);
            body.put_u16(error.max_version);
            body.put_string(&error.message);
        }
        WireMessage::UpdateEntry(update) => {
            body.put_string(&update.table);
            body.put_u64(update.index);
            body.put_bytes(&update.bytes);
        }
        WireMessage::UpdateAck(ack) => {
            body.put_string(&ack.table);
            body.put_u64(ack.index);
        }
    }
    WireEnvelope::new(message.msg_type(), body.into_bytes()).encode()
}

/// Decode a complete frame into a message.
///
/// # Errors
///
/// Returns the appropriate [`WireError`] for any malformed, truncated,
/// wrong-version or trailing-garbage frame; this function never panics on
/// untrusted input.
pub fn decode_message(frame: &[u8]) -> Result<WireMessage, WireError> {
    let envelope = WireEnvelope::decode(frame)?;
    let mut reader = WireReader::new(&envelope.body);
    let message = match envelope.msg_type {
        MsgType::CatalogRequest => WireMessage::CatalogRequest,
        MsgType::Catalog => {
            let protocol_version = reader.u16()?;
            let party = reader.u8()?;
            if party > 1 {
                return Err(WireError::InvalidValue("catalog party must be 0 or 1"));
            }
            let count = reader.u32()? as usize;
            let mut tables = Vec::new();
            for _ in 0..count {
                let name = reader.string()?;
                let schema = decode_schema(&mut reader)?;
                let prf_kind = decode_prf_kind(reader.u8()?)?;
                tables.push(CatalogEntry {
                    name,
                    schema,
                    prf_kind,
                });
            }
            WireMessage::Catalog(Catalog {
                protocol_version,
                party,
                tables,
            })
        }
        MsgType::Query => {
            let table = reader.string()?;
            let tenant = reader.string()?;
            let query = decode_server_query(&mut reader)?;
            WireMessage::Query(QueryMsg {
                table,
                tenant,
                query,
            })
        }
        MsgType::Response => WireMessage::Response(decode_response(&mut reader)?),
        MsgType::Error => {
            let code_byte = reader.u8()?;
            let code = ErrorCode::from_u8(code_byte)
                .ok_or(WireError::InvalidValue("unknown error code byte"))?;
            let shed = reader.bool()?;
            let min_version = reader.u16()?;
            let max_version = reader.u16()?;
            let message = reader.string()?;
            WireMessage::Error(ErrorReply {
                code,
                shed,
                min_version,
                max_version,
                message,
            })
        }
        MsgType::UpdateEntry => {
            let table = reader.string()?;
            let index = reader.u64()?;
            let bytes = reader.bytes()?;
            WireMessage::UpdateEntry(UpdateEntryMsg {
                table,
                index,
                bytes,
            })
        }
        MsgType::UpdateAck => {
            let table = reader.string()?;
            let index = reader.u64()?;
            WireMessage::UpdateAck(UpdateAckMsg { table, index })
        }
    };
    reader.finish()?;
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_dpf::{generate_keys, DpfParams};
    use pir_field::Ring128;
    use pir_prf::{build_prf, GgmPrg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_messages() -> Vec<WireMessage> {
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let mut rng = StdRng::seed_from_u64(5);
        let params = DpfParams::for_domain(4096);
        let (key0, _) = generate_keys(&prg, &params, 17, Ring128::ONE, &mut rng);
        vec![
            WireMessage::CatalogRequest,
            WireMessage::Catalog(Catalog {
                protocol_version: 1,
                party: 1,
                tables: vec![
                    CatalogEntry {
                        name: "embeddings".into(),
                        schema: TableSchema::new(4096, 64),
                        prf_kind: PrfKind::Chacha20,
                    },
                    CatalogEntry {
                        name: "users".into(),
                        schema: TableSchema::new(100, 8),
                        prf_kind: PrfKind::SipHash,
                    },
                ],
            }),
            WireMessage::Query(QueryMsg {
                table: "embeddings".into(),
                tenant: "tenant-a".into(),
                query: ServerQuery {
                    query_id: 12,
                    schema: TableSchema::new(4096, 64),
                    key: key0,
                },
            }),
            WireMessage::Response(PirResponse {
                query_id: 12,
                party: 0,
                share: vec![1, 2, 3, 4],
            }),
            WireMessage::Error(ErrorReply {
                code: ErrorCode::Shed,
                shed: true,
                min_version: 0,
                max_version: 0,
                message: "queue full".into(),
            }),
            WireMessage::UpdateEntry(UpdateEntryMsg {
                table: "users".into(),
                index: 3,
                bytes: vec![9; 8],
            }),
            WireMessage::UpdateAck(UpdateAckMsg {
                table: "users".into(),
                index: 3,
            }),
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for message in sample_messages() {
            let frame = encode_message(&message);
            let decoded = decode_message(&frame).unwrap();
            assert_eq!(decoded, message, "{}", message.name());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_message(&WireMessage::CatalogRequest);
        // Append garbage and fix up the declared body length so the envelope
        // itself stays valid — the *message* decoder must reject it.
        frame.push(0xAB);
        let body_len = (frame.len() - 9) as u32;
        frame[5..9].copy_from_slice(&body_len.to_le_bytes());
        assert_eq!(
            decode_message(&frame),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn unsupported_version_reply_carries_range() {
        let reply = ErrorReply::unsupported_version(99);
        assert_eq!(reply.min_version, MIN_SUPPORTED_VERSION);
        assert_eq!(reply.max_version, MAX_SUPPORTED_VERSION);
        assert!(matches!(
            reply.into_wire_error(),
            WireError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn query_frames_carry_exactly_one_key() {
        // The trust-boundary property at the message level: a Query frame
        // encodes one ServerQuery, and there is no message type that could
        // carry a key pair.
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let mut rng = StdRng::seed_from_u64(6);
        let params = DpfParams::for_domain(1024);
        let (key0, key1) = generate_keys(&prg, &params, 5, Ring128::ONE, &mut rng);
        let frame = encode_message(&WireMessage::Query(QueryMsg {
            table: "t".into(),
            tenant: "a".into(),
            query: ServerQuery {
                query_id: 1,
                schema: TableSchema::new(1024, 16),
                key: key0.clone(),
            },
        }));
        let needle0 = key0.root_seed.to_le_bytes();
        let needle1 = key1.root_seed.to_le_bytes();
        let contains = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).any(|w| w == needle);
        assert!(contains(&frame, &needle0));
        assert!(!contains(&frame, &needle1));
    }
}
