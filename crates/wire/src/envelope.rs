//! The versioned envelope every frame travels in.
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"PW"
//! 2       2     version (u16 LE)
//! 4       1     msg_type
//! 5       4     body length (u32 LE)
//! 9       n     body
//! ```
//!
//! Version negotiation is *reject-with-supported-range*: a peer receiving a
//! version outside `MIN_SUPPORTED_VERSION..=MAX_SUPPORTED_VERSION` answers
//! with an [`ErrorReply`](crate::messages::ErrorReply) carrying that range
//! (it cannot decode the body, so it cannot do anything cleverer), and the
//! sender decides whether it can downgrade.

use crate::codec::{WireReader, WireWriter};
use crate::error::WireError;

/// First two bytes of every frame.
pub const WIRE_MAGIC: [u8; 2] = *b"PW";

/// Version 1: lockstep request/response. One frame out, one frame back, in
/// order, unstamped.
pub const PROTOCOL_V1: u16 = 1;

/// Version 2: pipelined, multiplexed sessions. Query frames carry
/// client-assigned ids (as in v1), servers may answer **out of order** as
/// batches complete, `Response` bodies carry a table-version stamp and
/// `Error` bodies carry the query id they answer (0 = connection-level).
pub const PROTOCOL_V2: u16 = 2;

/// The baseline version every implementation speaks; handshake frames
/// (`CatalogRequest`) travel under it so any peer can decode them.
pub const PROTOCOL_VERSION: u16 = PROTOCOL_V1;

/// Lowest version this implementation accepts.
pub const MIN_SUPPORTED_VERSION: u16 = PROTOCOL_V1;

/// Highest version this implementation accepts.
pub const MAX_SUPPORTED_VERSION: u16 = PROTOCOL_V2;

/// Bytes of envelope header before the body.
pub const ENVELOPE_HEADER_BYTES: usize = 2 + 2 + 1 + 4;

/// Message-type tags. Part of the wire format; never renumber within a
/// version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// Client asks a server to describe its hosted tables.
    CatalogRequest = 1,
    /// Server's catalog: protocol version, party, table schemas and PRFs.
    Catalog = 2,
    /// One server's projection of a PIR query.
    Query = 3,
    /// One server's answer share.
    Response = 4,
    /// Typed error / backpressure reply.
    Error = 5,
    /// Admin: overwrite one table entry (hot reload).
    UpdateEntry = 6,
    /// Acknowledgement of an applied update.
    UpdateAck = 7,
}

impl MsgType {
    /// Decode from the on-wire byte.
    #[must_use]
    pub fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(Self::CatalogRequest),
            2 => Some(Self::Catalog),
            3 => Some(Self::Query),
            4 => Some(Self::Response),
            5 => Some(Self::Error),
            6 => Some(Self::UpdateEntry),
            7 => Some(Self::UpdateAck),
            _ => None,
        }
    }

    /// Human-readable name for diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::CatalogRequest => "CatalogRequest",
            Self::Catalog => "Catalog",
            Self::Query => "Query",
            Self::Response => "Response",
            Self::Error => "Error",
            Self::UpdateEntry => "UpdateEntry",
            Self::UpdateAck => "UpdateAck",
        }
    }
}

/// A decoded envelope: version, message type and the still-encoded body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireEnvelope {
    /// Protocol version the frame was encoded under.
    pub version: u16,
    /// What the body contains.
    pub msg_type: MsgType,
    /// The encoded message body.
    pub body: Vec<u8>,
}

impl WireEnvelope {
    /// Wrap a body under the baseline [`PROTOCOL_V1`].
    #[must_use]
    pub fn new(msg_type: MsgType, body: Vec<u8>) -> Self {
        Self::with_version(PROTOCOL_V1, msg_type, body)
    }

    /// Wrap a body under an explicit protocol version.
    #[must_use]
    pub fn with_version(version: u16, msg_type: MsgType, body: Vec<u8>) -> Self {
        Self {
            version,
            msg_type,
            body,
        }
    }

    /// Encode the full frame (header + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut writer = WireWriter::with_capacity(ENVELOPE_HEADER_BYTES + self.body.len());
        writer.put_raw(&WIRE_MAGIC);
        writer.put_u16(self.version);
        writer.put_u8(self.msg_type as u8);
        writer.put_u32(self.body.len() as u32);
        writer.put_raw(&self.body);
        writer.into_bytes()
    }

    /// Decode a frame into an envelope, enforcing magic, version range and
    /// exact body length.
    ///
    /// # Errors
    ///
    /// * [`WireError::Truncated`] — shorter than the header or body.
    /// * [`WireError::BadMagic`] — wrong leading bytes.
    /// * [`WireError::UnsupportedVersion`] — version outside the supported
    ///   range (carries the range, per the negotiation rule).
    /// * [`WireError::UnknownMsgType`] — unrecognized type byte.
    /// * [`WireError::BodyLength`] — declared length disagrees with frame.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let mut reader = WireReader::new(frame);
        let magic: [u8; 2] = reader.take_array()?;
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = reader.u16()?;
        if !(MIN_SUPPORTED_VERSION..=MAX_SUPPORTED_VERSION).contains(&version) {
            return Err(WireError::UnsupportedVersion {
                got: version,
                min: MIN_SUPPORTED_VERSION,
                max: MAX_SUPPORTED_VERSION,
            });
        }
        let type_byte = reader.u8()?;
        let msg_type = MsgType::from_u8(type_byte).ok_or(WireError::UnknownMsgType(type_byte))?;
        let declared = reader.u32()? as usize;
        let actual = reader.remaining();
        if declared != actual {
            return Err(WireError::BodyLength { declared, actual });
        }
        let body = reader.take(declared)?.to_vec();
        Ok(Self {
            version,
            msg_type,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips() {
        let envelope = WireEnvelope::new(MsgType::Query, vec![1, 2, 3]);
        let frame = envelope.encode();
        assert_eq!(frame.len(), ENVELOPE_HEADER_BYTES + 3);
        assert_eq!(WireEnvelope::decode(&frame).unwrap(), envelope);
    }

    #[test]
    fn v2_envelopes_roundtrip() {
        let envelope = WireEnvelope::with_version(PROTOCOL_V2, MsgType::Response, vec![9; 5]);
        let frame = envelope.encode();
        let decoded = WireEnvelope::decode(&frame).unwrap();
        assert_eq!(decoded.version, PROTOCOL_V2);
        assert_eq!(decoded, envelope);
    }

    #[test]
    fn version_outside_range_carries_the_supported_range() {
        let mut frame = WireEnvelope::new(MsgType::CatalogRequest, Vec::new()).encode();
        frame[2] = 9; // version low byte
        assert_eq!(
            WireEnvelope::decode(&frame),
            Err(WireError::UnsupportedVersion {
                got: 9,
                min: MIN_SUPPORTED_VERSION,
                max: MAX_SUPPORTED_VERSION,
            })
        );
    }

    #[test]
    fn bad_magic_unknown_type_and_length_mismatch_are_typed() {
        let good = WireEnvelope::new(MsgType::Response, vec![7; 4]).encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            WireEnvelope::decode(&bad),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 200;
        assert_eq!(
            WireEnvelope::decode(&bad),
            Err(WireError::UnknownMsgType(200))
        );

        let mut bad = good.clone();
        bad[5] = 99; // declared body length
        assert!(matches!(
            WireEnvelope::decode(&bad),
            Err(WireError::BodyLength { .. })
        ));

        assert!(matches!(
            WireEnvelope::decode(&good[..6]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn every_msg_type_byte_roundtrips() {
        for t in [
            MsgType::CatalogRequest,
            MsgType::Catalog,
            MsgType::Query,
            MsgType::Response,
            MsgType::Error,
            MsgType::UpdateEntry,
            MsgType::UpdateAck,
        ] {
            assert_eq!(MsgType::from_u8(t as u8), Some(t));
            assert!(!t.name().is_empty());
        }
        assert_eq!(MsgType::from_u8(0), None);
        assert_eq!(MsgType::from_u8(77), None);
    }
}
