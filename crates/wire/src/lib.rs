//! `pir-wire` — the versioned wire protocol and transport-agnostic session
//! API of the PIR serving boundary.
//!
//! The paper's deployment is a real *service*: phone-class clients upload
//! DPF keys to two non-colluding GPU servers they do not share an address
//! space with. This crate makes that client↔server boundary an explicit,
//! versioned byte protocol:
//!
//! * **Envelope** ([`WireEnvelope`]): every frame is
//!   `magic ‖ version ‖ msg_type ‖ body_len ‖ body`, with a
//!   reject-with-supported-range version-negotiation rule.
//! * **Canonical codecs** ([`codec`]): hand-rolled, deterministic binary
//!   encodings for [`ServerQuery`](pir_protocol::ServerQuery),
//!   [`PirResponse`](pir_protocol::PirResponse), catalog discovery, typed
//!   error/backpressure replies and the `UpdateEntry` admin message. The
//!   protocol crates' `size_bytes` accessors are defined as the lengths
//!   these encoders produce, so reported communication costs are wire-true.
//! * **Typed decode failures** ([`WireError`]): truncated, corrupted or
//!   wrong-version frames decode to errors, never panics — a server exposed
//!   to untrusted bytes answers garbage with a typed reply.
//! * **Transports** ([`PirTransport`]): blocking framed send/recv, with an
//!   in-process [`loopback_pair`] and a length-prefixed [`TcpTransport`].
//! * **Sessions** ([`PirSession`]): the client type. It holds two
//!   *independent* per-server connections, discovers table schemas from the
//!   servers' catalogs, uploads exactly one key projection per server and
//!   reconstructs rows from the two byte responses. The key pair never
//!   crosses the boundary — no message type can carry it.
//!
//! The server half of the boundary (decoding envelopes into the batching
//! runtime) lives in `pir-serve`'s `WireFrontend`, keeping this crate free
//! of any serving-policy dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod envelope;
pub mod error;
pub mod messages;
pub mod session;
pub mod transport;

pub use envelope::{
    MsgType, WireEnvelope, ENVELOPE_HEADER_BYTES, MAX_SUPPORTED_VERSION, MIN_SUPPORTED_VERSION,
    PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_VERSION, WIRE_MAGIC,
};
pub use error::{ErrorCode, WireError};
pub use messages::{
    decode_message, decode_message_versioned, encode_message, encode_message_v, Catalog,
    CatalogEntry, ErrorReply, QueryMsg, ResponseMsg, UpdateAckMsg, UpdateEntryMsg, WireMessage,
};
pub use session::{CompletedQuery, ConnStats, PipelineStats, PirSession};
pub use transport::{
    loopback_pair, Dialer, LoopbackTransport, PirTransport, SplitTransport, TcpDialer,
    TcpTransport, MAX_FRAME_BYTES,
};
