//! Typed errors of the wire layer.
//!
//! Every way a frame can be malformed decodes to a [`WireError`] variant —
//! never a panic — so a server exposed to untrusted bytes sheds garbage with
//! a typed reply instead of dying, and a client can distinguish "my peer
//! speaks a newer protocol" from "the connection dropped".

use std::fmt;

use pir_protocol::PirError;

/// Machine-readable category carried by an on-wire error reply.
///
/// The discriminants are part of the wire format (encoded as one byte) and
/// must never be renumbered within a protocol version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame could not be decoded.
    Malformed = 1,
    /// The request's protocol version is outside the server's supported
    /// range (the reply carries the range).
    UnsupportedVersion = 2,
    /// No table with the requested name is registered.
    UnknownTable = 3,
    /// The request is well-formed but invalid for this server (wrong party,
    /// schema mismatch, bad update width, unexpected message type).
    InvalidRequest = 4,
    /// An update addressed an index outside the table.
    IndexOutOfRange = 5,
    /// Backpressure: the query was shed (queue full, quota exceeded or the
    /// server is shutting down). Retry later.
    Shed = 6,
    /// The underlying PIR protocol layer failed.
    Protocol = 7,
    /// An unexpected server-side failure.
    Internal = 8,
}

impl ErrorCode {
    /// Decode from the on-wire byte.
    #[must_use]
    pub fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(Self::Malformed),
            2 => Some(Self::UnsupportedVersion),
            3 => Some(Self::UnknownTable),
            4 => Some(Self::InvalidRequest),
            5 => Some(Self::IndexOutOfRange),
            6 => Some(Self::Shed),
            7 => Some(Self::Protocol),
            8 => Some(Self::Internal),
            _ => None,
        }
    }
}

/// Errors surfaced by encoding, decoding, transports and sessions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before a field could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The frame does not start with the protocol magic.
    BadMagic([u8; 2]),
    /// The frame's protocol version is outside the supported range.
    UnsupportedVersion {
        /// Version carried by the frame.
        got: u16,
        /// Lowest version this implementation accepts.
        min: u16,
        /// Highest version this implementation accepts.
        max: u16,
    },
    /// The envelope names a message type this implementation does not know.
    UnknownMsgType(u8),
    /// The envelope's declared body length disagrees with the frame.
    BodyLength {
        /// Length declared in the envelope header.
        declared: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// Bytes were left over after the message body was fully decoded.
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        remaining: usize,
    },
    /// A field held a value the canonical encoding forbids (non-boolean
    /// flag byte, invalid party, non-UTF-8 string, zero-sized schema, ...).
    InvalidValue(&'static str),
    /// A frame exceeded the transport's size limit.
    FrameTooLarge {
        /// Length of the offending frame.
        len: usize,
        /// The transport's limit.
        limit: usize,
    },
    /// The peer closed the connection.
    ConnectionClosed,
    /// A transport deadline elapsed before the peer produced (or accepted)
    /// a frame. Only transports with I/O timeouts configured (see
    /// `TcpTransport::set_io_timeouts`) report this; the connection may be
    /// mid-frame and MUST be discarded, not reused — the failover layer
    /// redials instead.
    TimedOut,
    /// An I/O failure below the framing layer.
    Transport(String),
    /// The peer replied with an on-wire error.
    Remote {
        /// Machine-readable category.
        code: ErrorCode,
        /// Whether the error is a load-shedding signal (retry later).
        shed: bool,
        /// Human-readable detail from the peer.
        message: String,
    },
    /// The peer sent a well-formed message of the wrong type for the
    /// current protocol step.
    UnexpectedMessage {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What arrived instead.
        got: &'static str,
    },
    /// A session request was invalid before anything was sent (unknown
    /// table, out-of-range index, catalog disagreement between servers).
    InvalidRequest(String),
    /// The two servers' answer shares carried different table-version
    /// stamps *again* after the automatic retry: the query straddled a hot
    /// reload twice, so the shares cannot be combined. Retry later (the
    /// reload churn has to quiesce for one round trip).
    VersionSkew {
        /// The retried query's id.
        query_id: u64,
        /// The two parties' table-version stamps.
        versions: [u64; 2],
    },
    /// The PIR layer rejected the reconstructed responses.
    Protocol(PirError),
}

impl WireError {
    /// Whether the error is a load-shedding signal: the request was valid
    /// but the server is overloaded — back off and retry.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(self, Self::Remote { shed: true, .. })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "frame truncated: needed {needed} bytes, had {available}")
            }
            Self::BadMagic(magic) => write!(f, "bad magic {magic:02x?}"),
            Self::UnsupportedVersion { got, min, max } => {
                write!(f, "unsupported version {got} (supported {min}..={max})")
            }
            Self::UnknownMsgType(t) => write!(f, "unknown message type {t}"),
            Self::BodyLength { declared, actual } => {
                write!(f, "body length mismatch: declared {declared}, got {actual}")
            }
            Self::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message body")
            }
            Self::InvalidValue(what) => write!(f, "invalid value: {what}"),
            Self::FrameTooLarge { len, limit } => {
                write!(f, "frame of {len} bytes exceeds the {limit}-byte limit")
            }
            Self::ConnectionClosed => write!(f, "connection closed by peer"),
            Self::TimedOut => write!(f, "transport deadline elapsed waiting on the peer"),
            Self::Transport(message) => write!(f, "transport failure: {message}"),
            Self::Remote {
                code,
                shed,
                message,
            } => {
                write!(f, "peer error ({code:?}, shed={shed}): {message}")
            }
            Self::UnexpectedMessage { expected, got } => {
                write!(f, "expected {expected}, peer sent {got}")
            }
            Self::InvalidRequest(message) => write!(f, "invalid request: {message}"),
            Self::VersionSkew { query_id, versions } => write!(
                f,
                "query {query_id} straddled hot reloads twice (stamps {} vs {})",
                versions[0], versions[1]
            ),
            Self::Protocol(err) => write!(f, "protocol error: {err}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Protocol(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PirError> for WireError {
    fn from(err: PirError) -> Self {
        Self::Protocol(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_roundtrip_through_bytes() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownTable,
            ErrorCode::InvalidRequest,
            ErrorCode::IndexOutOfRange,
            ErrorCode::Shed,
            ErrorCode::Protocol,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(200), None);
    }

    #[test]
    fn shed_classification_follows_the_remote_flag() {
        let shed = WireError::Remote {
            code: ErrorCode::Shed,
            shed: true,
            message: "queue full".into(),
        };
        assert!(shed.is_shed());
        assert!(!WireError::ConnectionClosed.is_shed());
        assert!(shed.to_string().contains("queue full"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}
