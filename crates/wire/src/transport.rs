//! Transports: framed byte pipes the protocol runs over.
//!
//! A transport moves whole frames (already-encoded envelopes) between
//! exactly two endpoints. Two implementations ship in-tree:
//!
//! * [`loopback_pair`] — an in-process duplex channel, for tests and
//!   benches that want to exercise the full encode→frame→decode path
//!   without sockets;
//! * [`TcpTransport`] — length-prefixed frames over a [`TcpStream`], the
//!   real networked deployment shape.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::WireError;

/// Hard cap on a single frame. Far above any legitimate query (keys are
/// `O(log L)`), low enough that a corrupt length prefix cannot OOM the
/// receiver.
pub const MAX_FRAME_BYTES: usize = 1 << 26; // 64 MiB

/// The outcome of [`PirTransport::split`].
pub enum SplitTransport {
    /// Two independently-usable handles onto the *same* connection: one for
    /// the receive direction, one for the send direction. A pipelined
    /// endpoint runs them on separate threads (demux reader / remux writer).
    Halves {
        /// Handle intended for `recv` calls.
        recv: Box<dyn PirTransport>,
        /// Handle intended for `send` calls.
        send: Box<dyn PirTransport>,
    },
    /// The transport cannot be split; callers fall back to lockstep
    /// request/response over the returned whole transport.
    Whole(Box<dyn PirTransport>),
}

/// A blocking, two-endpoint, frame-oriented byte pipe.
///
/// Implementations must deliver frames intact and in order. `recv` blocks
/// until a frame arrives or the peer hangs up.
pub trait PirTransport: Send {
    /// Send one frame.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::ConnectionClosed`] if the peer hung up,
    /// [`WireError::FrameTooLarge`] for oversized frames (checked *before*
    /// any byte is written, so an oversized frame never poisons the stream)
    /// and [`WireError::Transport`] for I/O failures.
    fn send(&mut self, frame: &[u8]) -> Result<(), WireError>;

    /// Receive one frame, blocking until it arrives.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::ConnectionClosed`] on clean hang-up and
    /// [`WireError::Transport`] for I/O failures.
    fn recv(&mut self) -> Result<Vec<u8>, WireError>;

    /// Split into independently-usable receive/send halves of the same
    /// connection, enabling full-duplex pipelined service. Transports that
    /// cannot split return themselves whole and are served lockstep.
    fn split(self: Box<Self>) -> SplitTransport;
}

// ---------------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------------

struct ChannelState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

struct Channel {
    state: Mutex<ChannelState>,
    arrived: Condvar,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(ChannelState {
                frames: VecDeque::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
        })
    }

    fn push(&self, frame: Vec<u8>) -> Result<(), WireError> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(WireError::ConnectionClosed);
        }
        state.frames.push_back(frame);
        drop(state);
        // pir-lint: allow(notify-one, "one frame, one wakeup: each pop consumes exactly one frame per wait exit, and close() uses notify_all")
        self.arrived.notify_one();
        Ok(())
    }

    fn pop(&self) -> Result<Vec<u8>, WireError> {
        let mut state = self.state.lock();
        loop {
            if let Some(frame) = state.frames.pop_front() {
                return Ok(frame);
            }
            if state.closed {
                return Err(WireError::ConnectionClosed);
            }
            self.arrived.wait(&mut state);
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.arrived.notify_all();
    }
}

/// One endpoint of an in-process duplex frame channel.
///
/// Dropping an endpoint closes both directions: the peer's pending and
/// future `recv`s drain already-delivered frames and then report
/// [`WireError::ConnectionClosed`].
pub struct LoopbackTransport {
    tx: Arc<Channel>,
    rx: Arc<Channel>,
}

/// Create a connected pair of in-process endpoints.
#[must_use]
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let a_to_b = Channel::new();
    let b_to_a = Channel::new();
    (
        LoopbackTransport {
            tx: Arc::clone(&a_to_b),
            rx: Arc::clone(&b_to_a),
        },
        LoopbackTransport {
            tx: b_to_a,
            rx: a_to_b,
        },
    )
}

impl PirTransport for LoopbackTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), WireError> {
        if frame.len() > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge {
                len: frame.len(),
                limit: MAX_FRAME_BYTES,
            });
        }
        self.tx.push(frame.to_vec())
    }

    fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        self.rx.pop()
    }

    fn split(self: Box<Self>) -> SplitTransport {
        // Both halves alias the same pair of channels; as with the whole
        // endpoint, dropping either half closes the connection in both
        // directions (half-close is not modeled).
        let recv = Box::new(LoopbackTransport {
            tx: Arc::clone(&self.tx),
            rx: Arc::clone(&self.rx),
        });
        SplitTransport::Halves { recv, send: self }
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

impl std::fmt::Debug for LoopbackTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackTransport").finish()
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// Length-prefixed framing over a [`TcpStream`]: each frame travels as a
/// 4-byte little-endian length followed by the frame bytes.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap an already-connected stream (e.g. from a listener's `accept`).
    ///
    /// Disables Nagle so the two small per-query frames are not coalesced
    /// behind a delayed-ack timer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Transport`] if socket options cannot be set.
    pub fn from_stream(stream: TcpStream) -> Result<Self, WireError> {
        stream.set_nodelay(true).map_err(io_error)?;
        Ok(Self { stream })
    }

    /// Connect to a listening server.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Transport`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(io_error)?;
        Self::from_stream(stream)
    }

    /// Connect to a listening server, giving up after `timeout`.
    ///
    /// `addr` may resolve to several endpoints; each is tried with the full
    /// timeout until one connects.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TimedOut`] if the deadline elapsed and
    /// [`WireError::Transport`] for other connection failures.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, WireError> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs().map_err(io_error)? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(err) => last_err = Some(err),
            }
        }
        Err(last_err.map_or(
            WireError::Transport("address resolved to no endpoints".into()),
            io_error,
        ))
    }

    /// Bound every subsequent `recv` / `send` by the given deadlines
    /// (`None` restores blocking forever). Without this, a dead-but-open
    /// peer hangs a blocking `recv` indefinitely — which is what makes
    /// router failover impossible to bound.
    ///
    /// A call that fails with [`WireError::TimedOut`] may have moved a
    /// partial frame: the stream is desynchronized and the transport must
    /// be discarded (redial), never reused.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Transport`] if the socket options cannot be
    /// set (e.g. a zero duration, which the OS rejects).
    pub fn set_io_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), WireError> {
        self.stream.set_read_timeout(read).map_err(io_error)?;
        self.stream.set_write_timeout(write).map_err(io_error)
    }

    /// The peer's socket address, for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Transport`] if the socket is no longer
    /// connected.
    pub fn peer_addr(&self) -> Result<std::net::SocketAddr, WireError> {
        self.stream.peer_addr().map_err(io_error)
    }
}

fn io_error(err: std::io::Error) -> WireError {
    // Unix reports an elapsed socket deadline as `WouldBlock`, Windows as
    // `TimedOut`; both mean the same thing to callers.
    match err.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::TimedOut,
        _ => WireError::Transport(err.to_string()),
    }
}

impl PirTransport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), WireError> {
        if frame.len() > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge {
                len: frame.len(),
                limit: MAX_FRAME_BYTES,
            });
        }
        let len = (frame.len() as u32).to_le_bytes();
        self.stream.write_all(&len).map_err(io_error)?;
        self.stream.write_all(frame).map_err(io_error)?;
        self.stream.flush().map_err(io_error)
    }

    fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        let mut len_bytes = [0u8; 4];
        if let Err(err) = self.stream.read_exact(&mut len_bytes) {
            // A clean shutdown between frames is a hang-up, not a failure.
            if err.kind() == std::io::ErrorKind::UnexpectedEof {
                return Err(WireError::ConnectionClosed);
            }
            return Err(io_error(err));
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge {
                len,
                limit: MAX_FRAME_BYTES,
            });
        }
        let mut frame = vec![0u8; len];
        self.stream.read_exact(&mut frame).map_err(|err| {
            if err.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::ConnectionClosed
            } else {
                io_error(err)
            }
        })?;
        Ok(frame)
    }

    fn split(self: Box<Self>) -> SplitTransport {
        // A TCP socket is already full-duplex; the halves are two handles to
        // the same kernel socket (the OS closes it when both are dropped).
        match self.stream.try_clone() {
            Ok(stream) => SplitTransport::Halves {
                recv: Box::new(TcpTransport { stream }),
                send: self,
            },
            Err(_) => SplitTransport::Whole(self),
        }
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Redial
// ---------------------------------------------------------------------------

/// A factory for fresh connections to one endpoint.
///
/// Connections die (peer restarts, deadlines elapse, frames desynchronize);
/// a transport that failed mid-frame can never be reused. `Dialer` is the
/// redial seam: a failover layer holds a list of dialers per shard and asks
/// the next one for a *new* transport instead of poking at a corpse.
///
/// Any `Fn() -> Result<Box<dyn PirTransport>, WireError>` closure is a
/// dialer, so tests wire up in-process [`loopback_pair`] endpoints with the
/// same machinery production uses for [`TcpDialer`].
pub trait Dialer: Send + Sync {
    /// Open a fresh connection to the endpoint.
    ///
    /// # Errors
    ///
    /// Returns the underlying transport error when the endpoint cannot be
    /// reached ([`WireError::TimedOut`] when a connect deadline elapsed).
    fn dial(&self) -> Result<Box<dyn PirTransport>, WireError>;

    /// Human-readable endpoint description for diagnostics.
    fn describe(&self) -> String {
        "endpoint".to_string()
    }
}

impl<F> Dialer for F
where
    F: Fn() -> Result<Box<dyn PirTransport>, WireError> + Send + Sync,
{
    fn dial(&self) -> Result<Box<dyn PirTransport>, WireError> {
        self()
    }
}

/// Dials a TCP endpoint, applying connect and I/O deadlines to every
/// connection it produces.
#[derive(Clone, Debug)]
pub struct TcpDialer {
    addr: SocketAddr,
    connect_timeout: Option<Duration>,
    io_timeout: Option<Duration>,
}

impl TcpDialer {
    /// A dialer with no deadlines (blocking connect, blocking I/O).
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            connect_timeout: None,
            io_timeout: None,
        }
    }

    /// A dialer whose connections give up after `connect` when dialing and
    /// after `io` on every subsequent frame — the shape a failover layer
    /// needs so a dead peer costs a bounded delay, not a hang.
    #[must_use]
    pub fn with_timeouts(addr: SocketAddr, connect: Duration, io: Duration) -> Self {
        Self {
            addr,
            connect_timeout: Some(connect),
            io_timeout: Some(io),
        }
    }

    /// The endpoint this dialer connects to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Dialer for TcpDialer {
    fn dial(&self) -> Result<Box<dyn PirTransport>, WireError> {
        let transport = match self.connect_timeout {
            Some(deadline) => TcpTransport::connect_timeout(self.addr, deadline)?,
            None => TcpTransport::connect(self.addr)?,
        };
        transport.set_io_timeouts(self.io_timeout, self.io_timeout)?;
        Ok(Box::new(transport))
    }

    fn describe(&self) -> String {
        self.addr.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_frames_in_order() {
        let (mut a, mut b) = loopback_pair();
        a.send(&[1, 2, 3]).unwrap();
        a.send(&[4]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        b.send(&[9, 9]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![4]);
        assert_eq!(a.recv().unwrap(), vec![9, 9]);
    }

    #[test]
    fn dropping_an_endpoint_closes_the_peer() {
        let (a, mut b) = loopback_pair();
        drop(a);
        assert_eq!(b.recv(), Err(WireError::ConnectionClosed));
        assert_eq!(b.send(&[1]), Err(WireError::ConnectionClosed));
    }

    #[test]
    fn oversized_frames_are_rejected_before_sending() {
        let (mut a, _b) = loopback_pair();
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(
            a.send(&huge),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn tcp_send_cap_is_enforced_before_any_byte_is_written() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut transport = TcpTransport::from_stream(stream).unwrap();
            // The only frame that ever arrives is the small follow-up: the
            // oversized send wrote nothing, so the stream is not poisoned.
            assert_eq!(transport.recv().unwrap(), vec![1, 2, 3]);
            assert_eq!(transport.recv(), Err(WireError::ConnectionClosed));
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert_eq!(
            client.send(&huge),
            Err(WireError::FrameTooLarge {
                len: MAX_FRAME_BYTES + 1,
                limit: MAX_FRAME_BYTES,
            })
        );
        client.send(&[1, 2, 3]).unwrap();
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn split_halves_share_the_connection() {
        let (a, mut b) = loopback_pair();
        let (mut recv_half, mut send_half) = match Box::new(a).split() {
            SplitTransport::Halves { recv, send } => (recv, send),
            SplitTransport::Whole(_) => panic!("loopback must split"),
        };
        send_half.send(&[1]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1]);
        b.send(&[2, 2]).unwrap();
        assert_eq!(recv_half.recv().unwrap(), vec![2, 2]);
    }

    #[test]
    fn tcp_splits_into_working_halves() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let transport = Box::new(TcpTransport::from_stream(stream).unwrap());
            let (mut recv_half, mut send_half) = match transport.split() {
                SplitTransport::Halves { recv, send } => (recv, send),
                SplitTransport::Whole(_) => panic!("tcp must split"),
            };
            // Echo from a different handle than the one receiving.
            let frame = recv_half.recv().unwrap();
            send_half.send(&frame).unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(&[9, 8, 7]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![9, 8, 7]);
        server.join().unwrap();
    }

    #[test]
    fn read_deadline_surfaces_as_timed_out() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The server accepts but never sends: without a deadline the
        // client's recv would hang forever.
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the socket open until the client has timed out.
            std::thread::sleep(Duration::from_millis(300));
            drop(stream);
        });
        let client = TcpTransport::connect_timeout(addr, Duration::from_secs(5)).unwrap();
        client
            .set_io_timeouts(Some(Duration::from_millis(30)), None)
            .unwrap();
        let mut client = client;
        assert_eq!(client.recv(), Err(WireError::TimedOut));
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn tcp_dialer_redials_fresh_connections() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut transport = TcpTransport::from_stream(stream).unwrap();
                let frame = transport.recv().unwrap();
                transport.send(&frame).unwrap();
            }
        });
        let dialer = TcpDialer::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(5));
        assert_eq!(dialer.describe(), addr.to_string());
        for payload in [vec![1u8], vec![2, 3]] {
            let mut conn = dialer.dial().unwrap();
            conn.send(&payload).unwrap();
            assert_eq!(conn.recv().unwrap(), payload);
        }
        server.join().unwrap();
    }

    #[test]
    fn closures_are_dialers() {
        let dialer = || {
            let (a, _b) = loopback_pair();
            // Leak the peer end deliberately: the test only needs a dial.
            std::mem::forget(_b);
            Ok(Box::new(a) as Box<dyn PirTransport>)
        };
        let conn = Dialer::dial(&dialer);
        assert!(conn.is_ok());
    }

    #[test]
    fn tcp_roundtrips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut transport = TcpTransport::from_stream(stream).unwrap();
            let frame = transport.recv().unwrap();
            transport.send(&frame).unwrap(); // echo
            assert_eq!(transport.recv(), Err(WireError::ConnectionClosed));
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        client.send(&[7, 6, 5]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![7, 6, 5]);
        drop(client);
        server.join().unwrap();
    }
}
