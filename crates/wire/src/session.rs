//! [`PirSession`]: the transport-agnostic client of the two-server PIR
//! service.
//!
//! A session owns **two independent connections** — one per non-colluding
//! server — and this module is deliberately the only place where the pair
//! of DPF keys exists: each server's connection carries only that server's
//! projection, so the trust boundary of the paper's deployment (phone-class
//! client, two servers that must not collude) is enforced by construction
//! rather than by convention. Table shapes are *discovered* from the
//! servers' catalogs instead of being injected by the caller, so a client
//! needs nothing but two addresses and a tenant name.

use std::collections::BTreeMap;

use pir_protocol::{PirClient, PirResponse, TableSchema};
use rand::Rng;

use crate::envelope::PROTOCOL_VERSION;
use crate::error::WireError;
use crate::messages::{
    decode_message, encode_message, Catalog, QueryMsg, UpdateAckMsg, UpdateEntryMsg, WireMessage,
};
use crate::transport::PirTransport;

/// Per-connection byte accounting, measured on actual encoded frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames sent to this server.
    pub frames_sent: u64,
    /// Bytes sent to this server (envelope headers included).
    pub bytes_sent: u64,
    /// Frames received from this server.
    pub frames_received: u64,
    /// Bytes received from this server.
    pub bytes_received: u64,
}

struct Connection {
    transport: Box<dyn PirTransport>,
    stats: ConnStats,
}

impl Connection {
    fn send(&mut self, message: &WireMessage) -> Result<(), WireError> {
        let frame = encode_message(message);
        self.transport.send(&frame)?;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        Ok(())
    }

    fn recv(&mut self) -> Result<WireMessage, WireError> {
        let frame = self.transport.recv()?;
        self.stats.frames_received += 1;
        self.stats.bytes_received += frame.len() as u64;
        decode_message(&frame)
    }
}

struct SessionTable {
    client: PirClient,
    schema: TableSchema,
}

/// A client session over two independent per-server connections.
///
/// See the [module docs](self) for the trust-boundary rationale. All calls
/// are blocking request/response; a session is `Send` but not `Sync` — use
/// one session per client thread.
pub struct PirSession {
    conns: [Connection; 2],
    tables: BTreeMap<String, SessionTable>,
    tenant: String,
}

impl PirSession {
    /// Connect over two transports (index = server party) and discover the
    /// catalog from both servers.
    ///
    /// # Errors
    ///
    /// Fails if either server speaks an unsupported protocol version, does
    /// not identify as the expected party, or the two catalogs disagree on
    /// any table's schema or PRF family (a client must never mix shares
    /// generated against different table shapes).
    pub fn connect(
        server0: Box<dyn PirTransport>,
        server1: Box<dyn PirTransport>,
        tenant: impl Into<String>,
    ) -> Result<Self, WireError> {
        let mut conns = [
            Connection {
                transport: server0,
                stats: ConnStats::default(),
            },
            Connection {
                transport: server1,
                stats: ConnStats::default(),
            },
        ];
        let mut catalogs: Vec<Catalog> = Vec::with_capacity(2);
        for (party, conn) in conns.iter_mut().enumerate() {
            conn.send(&WireMessage::CatalogRequest)?;
            let catalog = match conn.recv()? {
                WireMessage::Catalog(catalog) => catalog,
                WireMessage::Error(reply) => return Err(reply.into_wire_error()),
                other => {
                    return Err(WireError::UnexpectedMessage {
                        expected: "Catalog",
                        got: other.name(),
                    })
                }
            };
            if catalog.protocol_version < PROTOCOL_VERSION {
                return Err(WireError::UnsupportedVersion {
                    got: PROTOCOL_VERSION,
                    min: catalog.protocol_version,
                    max: catalog.protocol_version,
                });
            }
            if usize::from(catalog.party) != party {
                return Err(WireError::InvalidRequest(format!(
                    "server on connection {party} identifies as party {}",
                    catalog.party
                )));
            }
            catalogs.push(catalog);
        }
        let catalog1 = catalogs.pop().expect("two catalogs");
        let catalog0 = catalogs.pop().expect("two catalogs");
        if catalog0.tables != catalog1.tables {
            return Err(WireError::InvalidRequest(
                "the two servers advertise different catalogs".into(),
            ));
        }

        let tables = catalog0
            .tables
            .into_iter()
            .map(|entry| {
                let table = SessionTable {
                    client: PirClient::new(entry.schema, entry.prf_kind),
                    schema: entry.schema,
                };
                (entry.name, table)
            })
            .collect();
        Ok(Self {
            conns,
            tables,
            tenant: tenant.into(),
        })
    }

    /// Names of the tables both servers advertise, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// The discovered schema of one table, if it exists.
    #[must_use]
    pub fn schema(&self, table: &str) -> Option<TableSchema> {
        self.tables.get(table).map(|t| t.schema)
    }

    /// Per-connection byte accounting (index = server party), measured on
    /// the actual encoded frames.
    #[must_use]
    pub fn conn_stats(&self) -> [ConnStats; 2] {
        [self.conns[0].stats, self.conns[1].stats]
    }

    /// Privately retrieve one row.
    ///
    /// Generates the DPF key pair locally, uploads exactly one key to each
    /// server, and adds the two answer shares. Neither server ever receives
    /// (or can request) the other's key.
    ///
    /// # Errors
    ///
    /// * [`WireError::InvalidRequest`] — unknown table or out-of-range
    ///   index (checked locally; the index is private and never leaves the
    ///   client in the clear).
    /// * [`WireError::Remote`] — a server replied with an error; shed
    ///   replies have [`WireError::is_shed`] set (back off and retry — the
    ///   session stays usable: both connections' replies are always
    ///   drained before an error is reported, so the lockstep framing
    ///   never desynchronizes).
    /// * [`WireError::Protocol`] — the two shares do not combine.
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        table: &str,
        index: u64,
        rng: &mut R,
    ) -> Result<Vec<u8>, WireError> {
        let state = self
            .tables
            .get(table)
            .ok_or_else(|| WireError::InvalidRequest(format!("unknown table '{table}'")))?;
        if index >= state.schema.entries {
            return Err(WireError::InvalidRequest(format!(
                "index {index} out of range for table of {} entries",
                state.schema.entries
            )));
        }
        // The only place the pair exists: immediately projected per party.
        let query = state.client.query(index, rng);
        let mut sent = [false; 2];
        let mut send_failure = None;
        for party in 0..2u8 {
            let message = WireMessage::Query(QueryMsg {
                table: table.to_string(),
                tenant: self.tenant.clone(),
                query: query.to_server(party),
            });
            match self.conns[usize::from(party)].send(&message) {
                Ok(()) => sent[usize::from(party)] = true,
                Err(err) => {
                    send_failure = Some(err);
                    break;
                }
            }
        }
        // Both frames are in flight before either response is awaited, so
        // the two servers answer concurrently. Crucially, *both* replies
        // are drained even when the first errors (a one-sided shed is
        // routine): leaving the sibling's reply queued would shift the
        // lockstep framing and poison every later call on this session.
        let outcome0 = if sent[0] {
            self.recv_response(0, query.query_id)
        } else {
            Err(WireError::ConnectionClosed)
        };
        let outcome1 = if sent[1] {
            self.recv_response(1, query.query_id)
        } else {
            Err(WireError::ConnectionClosed)
        };
        if let Some(err) = send_failure {
            return Err(err);
        }
        let (response0, response1) = (outcome0?, outcome1?);
        let state = self.tables.get(table).expect("checked above");
        state
            .client
            .reconstruct(&query, &response0, &response1)
            .map_err(WireError::from)
    }

    fn recv_response(&mut self, party: usize, query_id: u64) -> Result<PirResponse, WireError> {
        match self.conns[party].recv()? {
            WireMessage::Response(response) => {
                if response.query_id != query_id {
                    return Err(WireError::InvalidRequest(format!(
                        "server {party} answered query {} while {query_id} was pending",
                        response.query_id
                    )));
                }
                if usize::from(response.party) != party {
                    return Err(WireError::InvalidRequest(format!(
                        "connection {party} delivered a share from party {}",
                        response.party
                    )));
                }
                Ok(response)
            }
            WireMessage::Error(reply) => Err(reply.into_wire_error()),
            other => Err(WireError::UnexpectedMessage {
                expected: "Response",
                got: other.name(),
            }),
        }
    }

    /// Overwrite one table entry on **both** servers (admin hot reload).
    ///
    /// The servers apply the update atomically with respect to in-flight
    /// batches; this call returns once both have acknowledged. Both
    /// connections' replies are drained even if the first errors, so the
    /// session stays usable afterwards — and because one server may have
    /// applied an update the other rejected, a failed update should be
    /// *retried* (it overwrites, so the retry is idempotent) to restore
    /// convergence between the two tables.
    ///
    /// # Errors
    ///
    /// Local validation failures surface as [`WireError::InvalidRequest`];
    /// server-side rejections as [`WireError::Remote`].
    pub fn update_entry(&mut self, table: &str, index: u64, bytes: &[u8]) -> Result<(), WireError> {
        let state = self
            .tables
            .get(table)
            .ok_or_else(|| WireError::InvalidRequest(format!("unknown table '{table}'")))?;
        if index >= state.schema.entries {
            return Err(WireError::InvalidRequest(format!(
                "index {index} out of range for table of {} entries",
                state.schema.entries
            )));
        }
        if bytes.len() != state.schema.entry_bytes {
            return Err(WireError::InvalidRequest(format!(
                "update payload is {} B, table entries are {} B",
                bytes.len(),
                state.schema.entry_bytes
            )));
        }
        let message = WireMessage::UpdateEntry(UpdateEntryMsg {
            table: table.to_string(),
            index,
            bytes: bytes.to_vec(),
        });
        let mut sent = [false; 2];
        let mut send_failure = None;
        for (party, conn) in self.conns.iter_mut().enumerate() {
            match conn.send(&message) {
                Ok(()) => sent[party] = true,
                Err(err) => {
                    send_failure = Some(err);
                    break;
                }
            }
        }
        // Drain every reply that is owed before reporting any error, so a
        // one-sided rejection cannot desynchronize the lockstep framing.
        let mut first_error = send_failure;
        for (party, conn) in self.conns.iter_mut().enumerate() {
            if !sent[party] {
                continue;
            }
            let outcome = match conn.recv() {
                Ok(WireMessage::UpdateAck(UpdateAckMsg { .. })) => Ok(()),
                Ok(WireMessage::Error(reply)) => Err(reply.into_wire_error()),
                Ok(other) => Err(WireError::UnexpectedMessage {
                    expected: "UpdateAck",
                    got: other.name(),
                }),
                Err(err) => Err(err),
            };
            if let (Err(err), None) = (outcome, &first_error) {
                first_error = Some(err);
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for PirSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PirSession")
            .field("tenant", &self.tenant)
            .field("tables", &self.table_names())
            .finish()
    }
}
