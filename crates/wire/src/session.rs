//! [`PirSession`]: the transport-agnostic client of the two-server PIR
//! service.
//!
//! A session owns **two independent connections** — one per non-colluding
//! server — and this module is deliberately the only place where the pair
//! of DPF keys exists: each server's connection carries only that server's
//! projection, so the trust boundary of the paper's deployment (phone-class
//! client, two servers that must not collude) is enforced by construction
//! rather than by convention. Table shapes are *discovered* from the
//! servers' catalogs instead of being injected by the caller, so a client
//! needs nothing but two addresses and a tenant name.
//!
//! # Pipelining
//!
//! At connect time the session negotiates the protocol version: each server
//! advertises its highest version in its catalog, and the session speaks
//! `min(server0, server1, MAX_SUPPORTED_VERSION)` from then on.
//!
//! Under **v2** the session is *pipelined*: [`PirSession::submit`] issues a
//! query without waiting for the answer, keeping up to `window` queries in
//! flight, and [`PirSession::poll`] returns completions **in the order the
//! servers finish them** — not submission order. Responses carry
//! table-version stamps; if a query's two shares straddled a hot reload
//! (stamps differ, the shares would reconstruct garbage) the session
//! retries it transparently, exactly once. The classic blocking
//! [`PirSession::query`] remains as the one-deep special case.
//!
//! Under **v1** (an old server on either side) the session cleanly falls
//! back to lockstep: the window clamps to 1, frames are unstamped, and
//! every call behaves exactly as the v1 client did.

use std::collections::{BTreeMap, VecDeque};

use pir_protocol::{PirClient, PirQuery, PirResponse, TableSchema};
use rand::{Rng, RngCore, SeedableRng};

use crate::envelope::{MAX_SUPPORTED_VERSION, MIN_SUPPORTED_VERSION, PROTOCOL_V2};
use crate::error::WireError;
use crate::messages::{
    decode_message, encode_message_v, Catalog, QueryMsg, UpdateAckMsg, UpdateEntryMsg, WireMessage,
};
use crate::transport::PirTransport;

/// Default pipeline depth of a v2 session (overridable via
/// [`PirSession::connect_with_window`]).
pub const DEFAULT_WINDOW: usize = 32;

/// Per-connection byte accounting, measured on actual encoded frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames sent to this server.
    pub frames_sent: u64,
    /// Bytes sent to this server (envelope headers included).
    pub bytes_sent: u64,
    /// Frames received from this server.
    pub frames_received: u64,
    /// Bytes received from this server.
    pub bytes_received: u64,
}

/// Counters of the session's pipelined machinery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Queries submitted (including the blocking [`PirSession::query`]
    /// path, which is a one-deep submit).
    pub submitted: u64,
    /// Completions emitted.
    pub completed: u64,
    /// Completions that finished while an earlier-submitted query was
    /// still in flight — proof the servers answered out of order.
    pub out_of_order_completions: u64,
    /// Queries transparently re-issued because their two shares carried
    /// different table-version stamps (they straddled a hot reload).
    pub version_retries: u64,
    /// Retries that straddled *again* and were failed with
    /// [`WireError::VersionSkew`].
    pub version_skew_failures: u64,
}

/// One finished pipelined query, as returned by [`PirSession::poll`].
#[derive(Debug)]
pub struct CompletedQuery {
    /// The id [`PirSession::submit`] returned for this query. Stable across
    /// the transparent version-skew retry.
    pub query_id: u64,
    /// Table the query read.
    pub table: String,
    /// Private index the query read.
    pub index: u64,
    /// The reconstructed row, or the per-query failure (a shed, a remote
    /// error, a double version skew, ...). Per-query failures do not poison
    /// the session.
    pub outcome: Result<Vec<u8>, WireError>,
    /// The table version both answer shares were stamped with when the
    /// outcome is a row (0 on failure, or when the negotiated protocol
    /// predates version stamps). Clients use this as the generation key for
    /// hot-entry caching: a bump means the table was hot-reloaded.
    pub table_version: u64,
    /// Whether the transparent version-skew retry was taken.
    pub retried: bool,
    /// Whether an earlier-submitted query was still in flight when this one
    /// completed.
    pub out_of_order: bool,
}

struct Connection {
    transport: Box<dyn PirTransport>,
    stats: ConnStats,
}

impl Connection {
    fn send(&mut self, message: &WireMessage, version: u16) -> Result<(), WireError> {
        let frame = encode_message_v(message, version);
        self.transport.send(&frame)?;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        Ok(())
    }

    fn recv(&mut self) -> Result<WireMessage, WireError> {
        let frame = self.transport.recv()?;
        self.stats.frames_received += 1;
        self.stats.bytes_received += frame.len() as u64;
        decode_message(&frame)
    }
}

struct SessionTable {
    client: PirClient,
    schema: TableSchema,
}

/// One in-flight pipelined query: the locally-kept key pair plus per-party
/// outcomes as they arrive.
struct Inflight {
    /// Id reported to the caller (stable across the skew retry).
    public_id: u64,
    table: String,
    index: u64,
    query: PirQuery,
    /// Submission sequence number, for out-of-order detection.
    seq: u64,
    /// Per-party outcome: the share plus its table-version stamp, or an
    /// attributed per-query error.
    outcomes: [Option<Result<(PirResponse, u64), WireError>>; 2],
    retried: bool,
}

/// A client session over two independent per-server connections.
///
/// See the [module docs](self) for the trust-boundary rationale and the
/// pipelining model. A session is `Send` but not `Sync` — use one session
/// per client thread.
pub struct PirSession {
    conns: [Connection; 2],
    tables: BTreeMap<String, SessionTable>,
    tenant: String,
    /// The protocol version both servers agreed to speak.
    negotiated: u16,
    /// Maximum in-flight queries (1 under v1 lockstep).
    window: usize,
    /// In-flight queries keyed by their *wire* id (session-global, so ids
    /// never collide across tables on one multiplexed connection).
    inflight: BTreeMap<u64, Inflight>,
    /// Completions not yet handed to the caller, in completion order.
    ready: VecDeque<CompletedQuery>,
    /// Response frames each connection still owes us.
    owed: [usize; 2],
    next_wire_id: u64,
    next_seq: u64,
    /// CSPRNG backing the transparent version-skew retry, reseeded from the
    /// caller's RNG on every [`Self::submit`]. The retry regenerates a DPF
    /// key pair inside [`Self::poll`], where no caller RNG is in scope —
    /// and that key randomness must be *unpredictable to the servers*: a
    /// seed derived from on-wire values (ids, version stamps) would let a
    /// malicious server force a retry, regenerate candidate key pairs for
    /// every index, and match the projection it received — recovering the
    /// private index. `None` only until the first submit; every retry is of
    /// a submitted query, so it is always seeded by the time it is used.
    retry_rng: Option<rand::rngs::StdRng>,
    stats: PipelineStats,
}

impl PirSession {
    /// Connect over two transports (index = server party), discover the
    /// catalog from both servers and negotiate the protocol version, with
    /// the default pipeline window.
    ///
    /// # Errors
    ///
    /// Fails if either server speaks no supported protocol version, does
    /// not identify as the expected party, or the two catalogs disagree on
    /// any table's schema or PRF family (a client must never mix shares
    /// generated against different table shapes).
    pub fn connect(
        server0: Box<dyn PirTransport>,
        server1: Box<dyn PirTransport>,
        tenant: impl Into<String>,
    ) -> Result<Self, WireError> {
        Self::connect_with_window(server0, server1, tenant, DEFAULT_WINDOW)
    }

    /// [`Self::connect`] with an explicit in-flight window.
    ///
    /// The window only takes effect when both servers speak v2; against a
    /// v1 server the session clamps it to 1 (lockstep). A window of 0 is
    /// treated as 1.
    ///
    /// # Errors
    ///
    /// Same as [`Self::connect`].
    pub fn connect_with_window(
        server0: Box<dyn PirTransport>,
        server1: Box<dyn PirTransport>,
        tenant: impl Into<String>,
        window: usize,
    ) -> Result<Self, WireError> {
        let mut conns = [
            Connection {
                transport: server0,
                stats: ConnStats::default(),
            },
            Connection {
                transport: server1,
                stats: ConnStats::default(),
            },
        ];
        let mut catalogs: Vec<Catalog> = Vec::with_capacity(2);
        for (party, conn) in conns.iter_mut().enumerate() {
            // The handshake travels at the baseline version so any peer can
            // decode it; the catalog's advertised version drives everything
            // after.
            conn.send(&WireMessage::CatalogRequest, MIN_SUPPORTED_VERSION)?;
            let catalog = match conn.recv()? {
                WireMessage::Catalog(catalog) => catalog,
                WireMessage::Error(reply) => {
                    return Err(reply.into_wire_error(MIN_SUPPORTED_VERSION))
                }
                other => {
                    return Err(WireError::UnexpectedMessage {
                        expected: "Catalog",
                        got: other.name(),
                    })
                }
            };
            if catalog.protocol_version < MIN_SUPPORTED_VERSION {
                return Err(WireError::UnsupportedVersion {
                    got: MIN_SUPPORTED_VERSION,
                    min: catalog.protocol_version,
                    max: catalog.protocol_version,
                });
            }
            if usize::from(catalog.party) != party {
                return Err(WireError::InvalidRequest(format!(
                    "server on connection {party} identifies as party {}",
                    catalog.party
                )));
            }
            catalogs.push(catalog);
        }
        let Ok([catalog0, catalog1]) = <[Catalog; 2]>::try_from(catalogs) else {
            unreachable!("one catalog pushed per connection");
        };
        if catalog0.tables != catalog1.tables {
            return Err(WireError::InvalidRequest(
                "the two servers advertise different catalogs".into(),
            ));
        }
        // Speak the newest version everyone supports.
        let negotiated = catalog0
            .protocol_version
            .min(catalog1.protocol_version)
            .min(MAX_SUPPORTED_VERSION);
        let window = if negotiated >= PROTOCOL_V2 {
            window.max(1)
        } else {
            1 // v1 servers are lockstep: fall back cleanly.
        };

        let tables = catalog0
            .tables
            .into_iter()
            .map(|entry| {
                let table = SessionTable {
                    client: PirClient::new(entry.schema, entry.prf_kind),
                    schema: entry.schema,
                };
                (entry.name, table)
            })
            .collect();
        Ok(Self {
            conns,
            tables,
            tenant: tenant.into(),
            negotiated,
            window,
            inflight: BTreeMap::new(),
            ready: VecDeque::new(),
            owed: [0, 0],
            next_wire_id: 1,
            next_seq: 0,
            retry_rng: None,
            stats: PipelineStats::default(),
        })
    }

    /// The protocol version negotiated with both servers.
    #[must_use]
    pub fn negotiated_version(&self) -> u16 {
        self.negotiated
    }

    /// The effective in-flight window (1 under v1 lockstep).
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Queries currently in flight (submitted, not yet completed).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Completions waiting to be [`poll`](Self::poll)ed.
    #[must_use]
    pub fn ready(&self) -> usize {
        self.ready.len()
    }

    /// Counters of the pipelined machinery.
    #[must_use]
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.stats
    }

    /// Names of the tables both servers advertise, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// The discovered schema of one table, if it exists.
    #[must_use]
    pub fn schema(&self, table: &str) -> Option<TableSchema> {
        self.tables.get(table).map(|t| t.schema)
    }

    /// Per-connection byte accounting (index = server party), measured on
    /// the actual encoded frames.
    #[must_use]
    pub fn conn_stats(&self) -> [ConnStats; 2] {
        [self.conns[0].stats, self.conns[1].stats]
    }

    /// Submit one private lookup into the pipeline and return its id
    /// without waiting for the answer.
    ///
    /// Generates the DPF key pair locally and uploads exactly one key
    /// projection to each server. If the in-flight window is full, drives
    /// the pipeline until a slot frees (the displaced completion is
    /// buffered for a later [`poll`](Self::poll)).
    ///
    /// # Errors
    ///
    /// * [`WireError::InvalidRequest`] — unknown table or out-of-range
    ///   index (checked locally; the index is private and never leaves the
    ///   client in the clear).
    /// * Transport/protocol failures while sending or while draining a full
    ///   window; these poison the pipeline (per-query failures do not —
    ///   they surface in the completion's `outcome`).
    pub fn submit<R: Rng + ?Sized>(
        &mut self,
        table: &str,
        index: u64,
        rng: &mut R,
    ) -> Result<u64, WireError> {
        let state = self
            .tables
            .get(table)
            .ok_or_else(|| WireError::InvalidRequest(format!("unknown table '{table}'")))?;
        if index >= state.schema.entries {
            return Err(WireError::InvalidRequest(format!(
                "index {index} out of range for table of {} entries",
                state.schema.entries
            )));
        }
        // Bank fresh caller entropy for the transparent skew retry before
        // draining the window (the drain itself can trigger a retry).
        let mut seed = <rand::rngs::StdRng as SeedableRng>::Seed::default();
        rng.fill_bytes(seed.as_mut());
        self.retry_rng = Some(rand::rngs::StdRng::from_seed(seed));
        while self.inflight.len() >= self.window {
            self.pump()?;
        }
        self.stats.submitted += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.issue(table, index, seq, None, rng)
    }

    /// Generate keys for (table, index) under a fresh session-global wire
    /// id, send both projections, and register the in-flight entry.
    ///
    /// `retry_of` carries the public id of the query being transparently
    /// re-issued after version skew; `None` marks a first submission (whose
    /// public id is the fresh wire id itself).
    fn issue<R: Rng + ?Sized>(
        &mut self,
        table: &str,
        index: u64,
        seq: u64,
        retry_of: Option<u64>,
        rng: &mut R,
    ) -> Result<u64, WireError> {
        let state = self
            .tables
            .get(table)
            .ok_or_else(|| WireError::InvalidRequest(format!("unknown table '{table}'")))?;
        // The only place the pair exists: immediately projected per party.
        // The per-table client assigns ids from its own counter; overwrite
        // with a session-global id so ids never collide across tables on
        // one multiplexed connection.
        let mut query = state.client.query(index, rng);
        let wire_id = self.next_wire_id;
        self.next_wire_id += 1;
        query.query_id = wire_id;
        for party in 0..2u8 {
            let message = WireMessage::Query(QueryMsg {
                table: table.to_string(),
                tenant: self.tenant.clone(),
                query: query.to_server(party),
            });
            self.conns[usize::from(party)].send(&message, self.negotiated)?;
            self.owed[usize::from(party)] += 1;
        }
        self.inflight.insert(
            wire_id,
            Inflight {
                public_id: retry_of.unwrap_or(wire_id),
                table: table.to_string(),
                index,
                query,
                seq,
                outcomes: [None, None],
                retried: retry_of.is_some(),
            },
        );
        Ok(wire_id)
    }

    /// Block until the next query completes (in completion order) and
    /// return it.
    ///
    /// # Errors
    ///
    /// * [`WireError::InvalidRequest`] — nothing is in flight.
    /// * Transport/protocol failures; per-query failures surface in the
    ///   returned completion's `outcome` instead.
    pub fn poll(&mut self) -> Result<CompletedQuery, WireError> {
        loop {
            if let Some(done) = self.ready.pop_front() {
                return Ok(done);
            }
            if self.inflight.is_empty() {
                return Err(WireError::InvalidRequest(
                    "poll with no queries in flight".into(),
                ));
            }
            self.pump()?;
        }
    }

    /// Receive and process one frame from whichever connection owes us the
    /// most responses.
    fn pump(&mut self) -> Result<(), WireError> {
        let party = if self.owed[0] >= self.owed[1] { 0 } else { 1 };
        debug_assert!(self.owed[party] > 0, "pump called with nothing outstanding");
        let message = self.conns[party].recv()?;
        match message {
            WireMessage::Response(msg) => {
                if usize::from(msg.response.party) != party {
                    return Err(WireError::InvalidRequest(format!(
                        "connection {party} delivered a share from party {}",
                        msg.response.party
                    )));
                }
                let wire_id = msg.response.query_id;
                let Some(entry) = self.inflight.get_mut(&wire_id) else {
                    return Err(WireError::InvalidRequest(format!(
                        "server {party} answered unknown query {wire_id}"
                    )));
                };
                // A duplicate answer for a slot already filled would
                // corrupt the owed accounting (underflowing it once the
                // sibling query's answer arrives): reject it like any other
                // server misbehavior.
                if entry.outcomes[party].is_some() {
                    return Err(WireError::InvalidRequest(format!(
                        "server {party} answered query {wire_id} twice"
                    )));
                }
                self.owed[party] -= 1;
                entry.outcomes[party] = Some(Ok((msg.response, msg.table_version)));
                self.try_complete(wire_id)
            }
            WireMessage::Error(reply) => {
                let wire_id = if self.negotiated >= PROTOCOL_V2 {
                    reply.query_id
                } else {
                    // v1 error frames carry no id: attribution is
                    // positional — the oldest query this connection has not
                    // answered yet (under the lockstep window that is the
                    // only one).
                    self.inflight
                        .values()
                        .filter(|q| q.outcomes[party].is_none())
                        .map(|q| q.query.query_id)
                        .next()
                        .unwrap_or(0)
                };
                if wire_id == 0 {
                    // Connection-level error (version rejection, malformed
                    // frame report, ...): poisons the session.
                    return Err(reply.into_wire_error(self.negotiated));
                }
                let Some(entry) = self.inflight.get_mut(&wire_id) else {
                    // Same connection-level treatment for an error frame
                    // attributed to a query we never issued.
                    return Err(reply.into_wire_error(self.negotiated));
                };
                if entry.outcomes[party].is_some() {
                    // Same duplicate-answer guard as the Response arm.
                    return Err(WireError::InvalidRequest(format!(
                        "server {party} answered query {wire_id} twice"
                    )));
                }
                self.owed[party] -= 1;
                let err = reply.into_wire_error(self.negotiated);
                entry.outcomes[party] = Some(Err(err));
                self.try_complete(wire_id)
            }
            other => Err(WireError::UnexpectedMessage {
                expected: "Response",
                got: other.name(),
            }),
        }
    }

    /// If both parties have answered `wire_id`, resolve it: reconstruct,
    /// retry on version skew, or fail — and emit the completion.
    fn try_complete(&mut self, wire_id: u64) -> Result<(), WireError> {
        let Some(entry) = self.inflight.get(&wire_id) else {
            return Ok(()); // already resolved: nothing to complete
        };
        if entry.outcomes.iter().any(Option::is_none) {
            return Ok(());
        }
        let Some(entry) = self.inflight.remove(&wire_id) else {
            return Ok(());
        };
        let [Some(outcome0), Some(outcome1)] = entry.outcomes else {
            unreachable!("completeness checked before removal");
        };
        let mut table_version = 0;
        let outcome = match (outcome0, outcome1) {
            // Party 0's error wins ties, matching the lockstep client.
            (Err(err), _) => Err(err),
            (_, Err(err)) => Err(err),
            (Ok((response0, stamp0)), Ok((response1, stamp1))) => {
                if self.negotiated >= PROTOCOL_V2 && stamp0 != stamp1 {
                    if entry.retried {
                        self.stats.version_skew_failures += 1;
                        Err(WireError::VersionSkew {
                            query_id: entry.public_id,
                            versions: [stamp0, stamp1],
                        })
                    } else {
                        // The two shares straddled a hot reload: they would
                        // reconstruct garbage. Re-issue once, transparently,
                        // under the same public id.
                        self.stats.version_retries += 1;
                        let (public_id, seq) = (entry.public_id, entry.seq);
                        // Derive the retry's key randomness from the caller
                        // entropy banked at submit time — never from on-wire
                        // values, which the servers know (see `retry_rng`).
                        let mut seed = <rand::rngs::StdRng as SeedableRng>::Seed::default();
                        self.retry_rng
                            .as_mut()
                            // pir-lint: allow(panic-path, "banked at every submit; completions only exist for submitted queries")
                            .expect("retries are of submitted queries")
                            .fill_bytes(seed.as_mut());
                        let mut rng = rand::rngs::StdRng::from_seed(seed);
                        self.issue(&entry.table, entry.index, seq, Some(public_id), &mut rng)?;
                        return Ok(());
                    }
                } else {
                    let state = self.tables.get(&entry.table).ok_or_else(|| {
                        WireError::InvalidRequest(format!("unknown table '{}'", entry.table))
                    })?;
                    table_version = stamp0;
                    state
                        .client
                        .reconstruct(&entry.query, &response0, &response1)
                        .map_err(WireError::from)
                }
            }
        };
        let out_of_order = self.inflight.values().any(|q| q.seq < entry.seq);
        self.stats.completed += 1;
        if out_of_order {
            self.stats.out_of_order_completions += 1;
        }
        self.ready.push_back(CompletedQuery {
            query_id: entry.public_id,
            table: entry.table,
            index: entry.index,
            outcome,
            table_version,
            retried: entry.retried,
            out_of_order,
        });
        Ok(())
    }

    /// Privately retrieve one row — the blocking one-deep special case of
    /// the pipeline.
    ///
    /// Generates the DPF key pair locally, uploads exactly one key to each
    /// server, and adds the two answer shares. Neither server ever receives
    /// (or can request) the other's key. Works with other queries in
    /// flight: their completions stay buffered for later
    /// [`poll`](Self::poll)s.
    ///
    /// # Errors
    ///
    /// * [`WireError::InvalidRequest`] — unknown table or out-of-range
    ///   index (checked locally).
    /// * [`WireError::Remote`] — a server replied with an error; shed
    ///   replies have [`WireError::is_shed`] set (back off and retry — the
    ///   session stays usable: every owed reply is drained before an error
    ///   is reported, so the framing never desynchronizes).
    /// * [`WireError::VersionSkew`] — the query straddled hot reloads twice.
    /// * [`WireError::Protocol`] — the two shares do not combine.
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        table: &str,
        index: u64,
        rng: &mut R,
    ) -> Result<Vec<u8>, WireError> {
        let id = self.submit(table, index, rng)?;
        loop {
            if let Some(done) = self
                .ready
                .iter()
                .position(|c| c.query_id == id)
                .and_then(|position| self.ready.remove(position))
            {
                return done.outcome;
            }
            self.pump()?;
        }
    }

    /// Overwrite one table entry on **both** servers (admin hot reload).
    ///
    /// The servers apply the update atomically with respect to in-flight
    /// batches; this call returns once both have acknowledged. Both
    /// connections' replies are drained even if the first errors, so the
    /// session stays usable afterwards — and because one server may have
    /// applied an update the other rejected, a failed update should be
    /// *retried* (it overwrites, so the retry is idempotent) to restore
    /// convergence between the two tables.
    ///
    /// Requires an empty pipeline: drain in-flight queries first (an update
    /// interleaved with this session's own out-of-order responses would
    /// make ack attribution ambiguous). *Other* sessions' traffic may race
    /// this update freely — that is what response version stamps exist for.
    ///
    /// # Errors
    ///
    /// Local validation failures surface as [`WireError::InvalidRequest`];
    /// server-side rejections as [`WireError::Remote`].
    pub fn update_entry(&mut self, table: &str, index: u64, bytes: &[u8]) -> Result<(), WireError> {
        if !self.inflight.is_empty() {
            return Err(WireError::InvalidRequest(format!(
                "update_entry with {} queries in flight: drain the pipeline first",
                self.inflight.len()
            )));
        }
        let state = self
            .tables
            .get(table)
            .ok_or_else(|| WireError::InvalidRequest(format!("unknown table '{table}'")))?;
        if index >= state.schema.entries {
            return Err(WireError::InvalidRequest(format!(
                "index {index} out of range for table of {} entries",
                state.schema.entries
            )));
        }
        if bytes.len() != state.schema.entry_bytes {
            return Err(WireError::InvalidRequest(format!(
                "update payload is {} B, table entries are {} B",
                bytes.len(),
                state.schema.entry_bytes
            )));
        }
        let message = WireMessage::UpdateEntry(UpdateEntryMsg {
            table: table.to_string(),
            index,
            bytes: bytes.to_vec(),
        });
        let mut sent = [false; 2];
        let mut send_failure = None;
        for (party, conn) in self.conns.iter_mut().enumerate() {
            match conn.send(&message, self.negotiated) {
                Ok(()) => sent[party] = true,
                Err(err) => {
                    send_failure = Some(err);
                    break;
                }
            }
        }
        // Drain every reply that is owed before reporting any error, so a
        // one-sided rejection cannot desynchronize the framing.
        let mut first_error = send_failure;
        for (party, conn) in self.conns.iter_mut().enumerate() {
            if !sent[party] {
                continue;
            }
            let outcome = match conn.recv() {
                Ok(WireMessage::UpdateAck(UpdateAckMsg { .. })) => Ok(()),
                Ok(WireMessage::Error(reply)) => Err(reply.into_wire_error(self.negotiated)),
                Ok(other) => Err(WireError::UnexpectedMessage {
                    expected: "UpdateAck",
                    got: other.name(),
                }),
                Err(err) => Err(err),
            };
            if let (Err(err), None) = (outcome, &first_error) {
                first_error = Some(err);
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for PirSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PirSession")
            .field("tenant", &self.tenant)
            .field("version", &self.negotiated)
            .field("window", &self.window)
            .field("in_flight", &self.inflight.len())
            .field("tables", &self.table_names())
            .finish()
    }
}
