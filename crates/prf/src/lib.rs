//! Pseudorandom functions for DPF evaluation.
//!
//! Expanding a DPF key over a table with `L` entries requires on the order of
//! `L` PRF invocations (§3.1 of the paper), so the PRF is the dominant cost of
//! private information retrieval. The paper's §3.2.6 observes that GPUs lack
//! AES hardware and therefore benefit from choosing a cheaper PRF; Table 5
//! compares AES-128, SHA-256 (HMAC), ChaCha20, SipHash and HighwayHash.
//!
//! This crate implements each of those primitives from scratch in portable
//! Rust behind a single object-safe [`Prf`] trait, together with:
//!
//! * [`GgmPrg`] — the length-doubling PRG (built from any [`Prf`] with a
//!   Matyas–Meyer–Oseas feed-forward) that drives GGM-tree expansion,
//! * [`CountingPrf`] — a decorator that counts invocations, used by the GPU
//!   simulator's cost model and by the paper's Figure 6 "number of PRFs"
//!   metric,
//! * per-PRF cost metadata ([`PrfKind::gpu_cycles_per_block`] /
//!   [`PrfKind::cpu_cycles_per_block`]) calibrated so the simulated V100 and
//!   Xeon reproduce the relative throughputs of Table 5 and Table 4.
//!
//! # Example
//!
//! ```rust
//! use pir_prf::{build_prf, GgmPrg, PrfKind};
//! use pir_field::Block128;
//!
//! let prf = build_prf(PrfKind::Chacha20);
//! let prg = GgmPrg::new(prf);
//! let expansion = prg.expand(Block128::from_u128(42));
//! // Deterministic: the same seed always expands to the same children.
//! assert_eq!(expansion, prg.expand(Block128::from_u128(42)));
//! ```

// Unsafe code is denied crate-wide and re-allowed only inside `simd`, whose
// per-architecture modules need `core::arch` intrinsics. Everything else in
// this crate remains `unsafe`-free.
#![deny(unsafe_code)]
// Where unsafe is re-allowed, every unsafe operation inside an `unsafe fn`
// must still sit in an explicit `unsafe {}` block with its own SAFETY
// justification.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod aes;
mod chacha;
mod counter;
mod highway;
mod prg;
mod sha256;
mod simd;
mod siphash;

use std::fmt;
use std::sync::Arc;

use pir_field::Block128;
use serde::{Deserialize, Serialize};

pub use aes::Aes128Prf;
pub use chacha::ChaCha20Prf;
pub use counter::CountingPrf;
pub use highway::HighwayPrf;
pub use pir_field::SimdBackend;
pub use prg::{FrontierScratch, GgmPrg, PrgExpansion};
pub use sha256::{hmac_sha256, sha256, Sha256Prf};
pub use siphash::{siphash24, SipHashPrf};

/// A pseudorandom function mapping a 128-bit block (plus a 64-bit tweak) to a
/// 128-bit block.
///
/// Implementations must be deterministic and thread-safe: GPU-style evaluation
/// invokes the PRF from many simulated threads concurrently.
pub trait Prf: Send + Sync {
    /// Which concrete primitive this is (used for cost accounting / reporting).
    fn kind(&self) -> PrfKind;

    /// Evaluate the PRF on `input` with domain-separation `tweak`.
    fn eval_block(&self, input: Block128, tweak: u64) -> Block128;

    /// Evaluate the PRF on every block of `inputs` under one `tweak`, writing
    /// `out[i] = PRF(inputs[i], tweak)`.
    ///
    /// This is the batched entry point of the frontier expansion engine: a
    /// level-synchronous GGM expansion hands a whole level of seeds to the
    /// PRF at once, so implementations can hoist key schedules, round
    /// constants and state initialization out of the per-block loop and give
    /// the compiler a single hot loop to pipeline. Implementations must be
    /// bit-identical to calling [`Prf::eval_block`] once per input.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `out` have different lengths.
    fn eval_blocks(&self, inputs: &[Block128], tweak: u64, out: &mut [Block128]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "eval_blocks input/output length mismatch"
        );
        for (input, slot) in inputs.iter().zip(out.iter_mut()) {
            *slot = self.eval_block(*input, tweak);
        }
    }

    /// Evaluate the PRF on every block of `inputs` under two tweaks at once:
    /// `out_a[i] = PRF(inputs[i], tweak_a)` and `out_b[i] = PRF(inputs[i],
    /// tweak_b)`.
    ///
    /// This is the shape of a GGM node expansion (left and right child derive
    /// from the same seed under tweaks 0 and 1), so primitives that absorb
    /// the input before the tweak can share the input-dependent prefix of the
    /// computation between the two tweaks (see the SipHash implementation).
    /// The default simply runs two batched sweeps. Counts as `2 *
    /// inputs.len()` PRF block evaluations; outputs must be bit-identical to
    /// the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `inputs`, `out_a` and `out_b` have different lengths.
    fn eval_blocks_pair(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        self.eval_blocks(inputs, tweak_a, out_a);
        self.eval_blocks(inputs, tweak_b, out_b);
    }

    /// The GGM expansion sweep: like [`Prf::eval_blocks_pair`] but with the
    /// Matyas–Meyer–Oseas feed-forward fused in, producing
    /// `out_a[i] = PRF(inputs[i], tweak_a) ⊕ inputs[i]` (and likewise for
    /// `b`).
    ///
    /// Primitives whose hot loop already holds the input block in registers
    /// (SipHash) override this to apply the feed-forward for free; the
    /// default XORs in a separate pass. Counts as `2 * inputs.len()` PRF
    /// block evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `inputs`, `out_a` and `out_b` have different lengths.
    fn expand_blocks_mmo(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        self.eval_blocks_pair(inputs, tweak_a, tweak_b, out_a, out_b);
        pir_field::simd::xor_blocks_inplace(out_a, inputs);
        pir_field::simd::xor_blocks_inplace(out_b, inputs);
    }

    /// Number of primitive invocations performed so far, if this PRF counts
    /// them (see [`CountingPrf`]). Plain primitives return `None`.
    fn call_count(&self) -> Option<u64> {
        None
    }

    /// Label of the code path the batched sweeps of this instance execute
    /// (`"scalar"`, `"avx2"` or `"neon"`), for kernel reports and serve
    /// telemetry. Primitives without a vector implementation for the active
    /// backend report `"scalar"` regardless of what was requested.
    fn backend_label(&self) -> &'static str {
        "scalar"
    }
}

/// The PRF families evaluated by the paper (Table 5), plus their cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrfKind {
    /// AES-128 in counter mode (the CPU baseline's PRF; AES-NI on CPUs).
    Aes128,
    /// SHA-256 used as an HMAC-style PRF.
    Sha256,
    /// ChaCha20 stream cipher block function (TLS 1.3-grade security).
    Chacha20,
    /// SipHash-2-4 keyed hash (fast but with weaker security margin).
    SipHash,
    /// HighwayHash-style SIMD keyed hash.
    HighwayHash,
}

impl PrfKind {
    /// All PRF kinds in the order Table 5 reports them.
    pub const ALL: [PrfKind; 5] = [
        PrfKind::Aes128,
        PrfKind::Sha256,
        PrfKind::Chacha20,
        PrfKind::SipHash,
        PrfKind::HighwayHash,
    ];

    /// Human-readable name matching the paper's tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            PrfKind::Aes128 => "AES-128 Block Cipher (Ctr Mode)",
            PrfKind::Sha256 => "SHA-256 Hash (HMAC)",
            PrfKind::Chacha20 => "Chacha20 Stream Cipher",
            PrfKind::SipHash => "SipHash PRF",
            PrfKind::HighwayHash => "HighwayHash PRF",
        }
    }

    /// Estimated GPU cycles to evaluate one 128-bit block on one CUDA core
    /// (software implementation, no crypto hardware).
    ///
    /// Calibrated so the simulated V100 reproduces the throughput ordering and
    /// approximate ratios of the paper's Table 5 (AES ≈ 965 QPS, ChaCha20 ≈
    /// 3,640 QPS, SipHash ≈ 7,447 QPS on a 2^20-entry table at batch 512).
    #[must_use]
    pub const fn gpu_cycles_per_block(self) -> u64 {
        match self {
            PrfKind::Aes128 => 2000,
            PrfKind::Sha256 => 2095,
            PrfKind::Chacha20 => 530,
            PrfKind::SipHash => 260,
            PrfKind::HighwayHash => 980,
        }
    }

    /// Effective CPU cycles per DPF node expansion on a Xeon core.
    ///
    /// These are *effective* costs — raw AES-NI encrypts a block in tens of
    /// cycles, but a DPF node expansion also pays key scheduling, control-bit
    /// bookkeeping and memory traffic. The AES figure is calibrated so the
    /// modelled Xeon Gold 6230 reproduces the single-thread throughput the
    /// paper measures for the Google CPU DPF baseline (Table 4: ~1.3 queries
    /// per second on a 2^20-entry table); the others keep their relative
    /// software cost versus AES-NI.
    #[must_use]
    pub const fn cpu_cycles_per_block(self) -> u64 {
        match self {
            PrfKind::Aes128 => 750,
            PrfKind::Sha256 => 4000,
            PrfKind::Chacha20 => 1400,
            PrfKind::SipHash => 500,
            PrfKind::HighwayHash => 1100,
        }
    }

    /// Security margin note used when reporting results (paper §3.2.6).
    #[must_use]
    pub const fn security_note(self) -> &'static str {
        match self {
            PrfKind::Aes128 => "standard; matches CPU baseline",
            PrfKind::Sha256 => "standard hash-based PRF",
            PrfKind::Chacha20 => "standard stream cipher (TLS 1.3)",
            PrfKind::SipHash => "non-standard for PIR; weaker analysis",
            PrfKind::HighwayHash => "non-standard for PIR; weaker analysis",
        }
    }
}

impl fmt::Display for PrfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Construct a boxed PRF of the requested kind with a fixed, publicly known
/// key (DPF security rests on the secrecy of the seeds, not the PRF key).
///
/// The instance uses the process-wide active SIMD backend
/// ([`SimdBackend::active`], which honors the `PIR_PRF_BACKEND` environment
/// override); outputs are bit-identical across backends.
#[must_use]
pub fn build_prf(kind: PrfKind) -> Arc<dyn Prf> {
    build_prf_with_backend(kind, SimdBackend::active())
}

/// Construct a boxed PRF of the requested kind pinned to a specific SIMD
/// backend (falling back to scalar if `backend` is unsupported on this host).
///
/// The parity suite uses this to run the same primitive under every available
/// backend in one process and compare outputs byte for byte.
#[must_use]
pub fn build_prf_with_backend(kind: PrfKind, backend: SimdBackend) -> Arc<dyn Prf> {
    match kind {
        PrfKind::Aes128 => Arc::new(Aes128Prf::with_fixed_key().with_backend(backend)),
        PrfKind::Sha256 => Arc::new(Sha256Prf::with_fixed_key().with_backend(backend)),
        PrfKind::Chacha20 => Arc::new(ChaCha20Prf::with_fixed_key().with_backend(backend)),
        PrfKind::SipHash => Arc::new(SipHashPrf::with_fixed_key().with_backend(backend)),
        PrfKind::HighwayHash => Arc::new(HighwayPrf::with_fixed_key().with_backend(backend)),
    }
}

/// Construct a counting wrapper around a fresh PRF of the requested kind.
#[must_use]
pub fn build_counting_prf(kind: PrfKind) -> Arc<CountingPrf> {
    Arc::new(CountingPrf::new(build_prf(kind)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_prfs_are_deterministic_and_distinct() {
        let input = Block128::from_u128(0x1234_5678_9abc_def0);
        let mut outputs = Vec::new();
        for kind in PrfKind::ALL {
            let prf = build_prf(kind);
            let a = prf.eval_block(input, 0);
            let b = prf.eval_block(input, 0);
            assert_eq!(a, b, "{kind} must be deterministic");
            let c = prf.eval_block(input, 1);
            assert_ne!(a, c, "{kind} must separate tweak domains");
            outputs.push(a);
        }
        // Different primitives should not collide on the same input.
        for i in 0..outputs.len() {
            for j in (i + 1)..outputs.len() {
                assert_ne!(outputs[i], outputs[j]);
            }
        }
    }

    #[test]
    fn cost_model_ordering_matches_table5() {
        // Table 5: SipHash > ChaCha20 > HighwayHash > SHA-256 ≈ AES in QPS,
        // i.e. the reverse ordering in cycle cost.
        assert!(PrfKind::SipHash.gpu_cycles_per_block() < PrfKind::Chacha20.gpu_cycles_per_block());
        assert!(
            PrfKind::Chacha20.gpu_cycles_per_block() < PrfKind::HighwayHash.gpu_cycles_per_block()
        );
        assert!(
            PrfKind::HighwayHash.gpu_cycles_per_block() < PrfKind::Aes128.gpu_cycles_per_block()
        );
        assert!(PrfKind::Aes128.gpu_cycles_per_block() < PrfKind::Sha256.gpu_cycles_per_block());
        // On the CPU, AES-NI keeps AES well below the software-heavy
        // primitives (SHA-256, ChaCha20, HighwayHash); only the very light
        // SipHash comes close.
        for kind in [PrfKind::Sha256, PrfKind::Chacha20, PrfKind::HighwayHash] {
            assert!(kind.cpu_cycles_per_block() > PrfKind::Aes128.cpu_cycles_per_block());
        }
    }

    #[test]
    fn display_names_are_nonempty() {
        for kind in PrfKind::ALL {
            assert!(!kind.to_string().is_empty());
            assert!(!kind.security_note().is_empty());
        }
    }
}
