//! SHA-256 and an HMAC-SHA-256 PRF.
//!
//! SHA-256 is the "hash function" PRF option from the paper's Table 5. CPUs
//! frequently ship SHA extensions; GPUs evaluate it in software, which makes
//! it roughly as expensive as software AES.

use pir_field::{Block128, SimdBackend};

use crate::{Prf, PrfKind};

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

pub(crate) const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Compute the SHA-256 digest of `message`.
#[must_use]
pub fn sha256(message: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let bit_len = (message.len() as u64) * 8;

    let mut padded = message.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    for block in padded.chunks_exact(64) {
        let mut buf = [0u8; 64];
        buf.copy_from_slice(block);
        compress(&mut state, &buf);
    }

    let mut digest = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        digest[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    digest
}

/// Compute HMAC-SHA-256 of `message` under `key`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    const BLOCK_LEN: usize = 64;
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Vec::with_capacity(BLOCK_LEN + message.len());
    inner.extend(key_block.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(message);
    let inner_digest = sha256(&inner);

    let mut outer = Vec::with_capacity(BLOCK_LEN + 32);
    outer.extend(key_block.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_digest);
    sha256(&outer)
}

/// HMAC-SHA-256 truncated to 128 bits, used as a PRF.
///
/// The PRF message is always exactly 24 bytes (a 16-byte block plus an 8-byte
/// tweak), so the HMAC schedule collapses: the key-dependent ipad and opad
/// blocks are each compressed once at construction time and cached as
/// midstates, leaving two `compress` calls per evaluation (one for the padded
/// message block, one for the padded inner digest) instead of the four (plus
/// heap-allocated message assembly) the generic [`hmac_sha256`] performs. The
/// output is bit-identical to the generic path.
pub struct Sha256Prf {
    /// SHA-256 state after compressing `key ⊕ ipad` (one 64-byte block).
    inner_midstate: [u32; 8],
    /// SHA-256 state after compressing `key ⊕ opad`.
    outer_midstate: [u32; 8],
    backend: SimdBackend,
}

/// Total bytes hashed by the inner SHA-256: the ipad block plus the 24-byte
/// message.
pub(crate) const INNER_LEN_BITS: u64 = (64 + 24) * 8;
/// Total bytes hashed by the outer SHA-256: the opad block plus the 32-byte
/// inner digest.
pub(crate) const OUTER_LEN_BITS: u64 = (64 + 32) * 8;

impl Sha256Prf {
    /// Build a PRF with an explicit 256-bit key.
    #[must_use]
    pub fn new(key: [u8; 32]) -> Self {
        let mut key_block = [0u8; 64];
        key_block[..32].copy_from_slice(&key);

        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner_midstate = H0;
        compress(&mut inner_midstate, &ipad);
        let mut outer_midstate = H0;
        compress(&mut outer_midstate, &opad);
        Self {
            inner_midstate,
            outer_midstate,
            backend: SimdBackend::Scalar,
        }
    }

    /// Build a PRF with the crate's fixed public key.
    #[must_use]
    pub fn with_fixed_key() -> Self {
        Self::new(*b"gpu-pir-sha256-prf-fixed-key!!!!")
    }

    /// Pin the batched sweeps to a SIMD backend (unsupported requests fall
    /// back to scalar). Only the x86_64 backend vectorizes the 8-way
    /// multi-buffer HMAC; NEON hosts use the scalar path.
    #[must_use]
    pub fn with_backend(mut self, backend: SimdBackend) -> Self {
        self.backend = match backend.supported_or_scalar() {
            SimdBackend::Avx2 => SimdBackend::Avx2,
            _ => SimdBackend::Scalar,
        };
        self
    }

    /// One HMAC evaluation from the cached midstates: exactly two compressions.
    #[inline]
    fn mac_block(&self, input: Block128, tweak: u64) -> Block128 {
        // Inner hash: the 24-byte message, padding and the total bit length
        // all fit in one final block.
        let mut block = [0u8; 64];
        block[..16].copy_from_slice(&input.to_le_bytes());
        block[16..24].copy_from_slice(&tweak.to_le_bytes());
        block[24] = 0x80;
        block[56..].copy_from_slice(&INNER_LEN_BITS.to_be_bytes());
        let mut state = self.inner_midstate;
        compress(&mut state, &block);

        // Outer hash: the 32-byte inner digest, padding and length likewise
        // fit in one final block.
        let mut block = [0u8; 64];
        for (i, word) in state.iter().enumerate() {
            block[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        block[32] = 0x80;
        block[56..].copy_from_slice(&OUTER_LEN_BITS.to_be_bytes());
        let mut state = self.outer_midstate;
        compress(&mut state, &block);

        let mut out = [0u8; 16];
        for (i, word) in state.iter().take(4).enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Block128::from_le_bytes(out)
    }
}

impl Prf for Sha256Prf {
    fn kind(&self) -> PrfKind {
        PrfKind::Sha256
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        self.mac_block(input, tweak)
    }

    fn eval_blocks(&self, inputs: &[Block128], tweak: u64, out: &mut [Block128]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "eval_blocks input/output length mismatch"
        );
        #[cfg_attr(not(target_arch = "x86_64"), allow(unused_mut))]
        let mut vector_len = 0;
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            vector_len = inputs.len() - inputs.len() % crate::simd::sha256_x86::WIDTH;
            crate::simd::sha256_x86::eval_blocks(
                &self.inner_midstate,
                &self.outer_midstate,
                &inputs[..vector_len],
                tweak,
                &mut out[..vector_len],
            );
        }
        for (input, slot) in inputs[vector_len..]
            .iter()
            .zip(out[vector_len..].iter_mut())
        {
            *slot = self.mac_block(*input, tweak);
        }
    }

    fn backend_label(&self) -> &'static str {
        self.backend.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// NIST FIPS 180-4 "abc" vector.
    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    /// Empty-message vector.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    /// Two-block message vector (448-bit message, FIPS 180-4).
    #[test]
    fn sha256_two_blocks() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// RFC 4231 test case 2 for HMAC-SHA-256.
    #[test]
    fn hmac_rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn prf_properties() {
        let prf = Sha256Prf::with_fixed_key();
        let x = Block128::from_u128(5);
        assert_eq!(prf.eval_block(x, 0), prf.eval_block(x, 0));
        assert_ne!(prf.eval_block(x, 0), prf.eval_block(x, 1));
        assert_eq!(prf.kind(), PrfKind::Sha256);
    }

    /// The midstate fast path must match the generic byte-oriented HMAC.
    #[test]
    fn midstate_path_matches_generic_hmac() {
        let key = *b"gpu-pir-sha256-prf-fixed-key!!!!";
        let prf = Sha256Prf::new(key);
        for (i, tweak) in [
            (0u128, 0u64),
            (1, 1),
            (u128::MAX, 7),
            (0xdead_beef, u64::MAX),
        ] {
            let input = Block128::from_u128(i);
            let mut message = [0u8; 24];
            message[..16].copy_from_slice(&input.to_le_bytes());
            message[16..].copy_from_slice(&tweak.to_le_bytes());
            let mac = hmac_sha256(&key, &message);
            let mut expected = [0u8; 16];
            expected.copy_from_slice(&mac[..16]);
            assert_eq!(
                prf.eval_block(input, tweak),
                Block128::from_le_bytes(expected)
            );
        }
    }
}
