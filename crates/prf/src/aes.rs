//! Portable software AES-128 used as the default PRF.
//!
//! CPUs accelerate AES with AES-NI, which is why the CPU DPF baseline uses it;
//! GPUs have no such hardware so AES must be computed in software with S-box
//! lookups (the paper's §3.2.6). This module is a straightforward, table-free
//! byte-oriented implementation of the FIPS-197 cipher: it favours clarity and
//! portability over raw speed, because in this reproduction the *performance*
//! of each PRF on the GPU is captured by the cost model
//! ([`crate::PrfKind::gpu_cycles_per_block`]), while this code provides the
//! *functional* behaviour.

use pir_field::{Block128, SimdBackend};

use crate::{Prf, PrfKind};

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

const ROUNDS: usize = 10;
const BLOCK: usize = 16;

/// Multiply a byte by `x` in GF(2^8) (the `xtime` operation from FIPS-197).
#[inline]
const fn xtime(byte: u8) -> u8 {
    let shifted = byte << 1;
    if byte & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// The fused SubBytes+ShiftRows+MixColumns lookup table for byte row 0.
///
/// `T0[x]` packs the MixColumns products of `S(x)` into one little-endian
/// column word: bytes `(2·S(x), S(x), S(x), 3·S(x))`. The tables for byte
/// rows 1–3 are byte rotations of `T0`, so one round of AES becomes four
/// table lookups and four XORs per column — the classic 32-bit software AES
/// formulation, computed once at compile time. The ciphertext is bit-for-bit
/// identical to the byte-oriented FIPS-197 walkthrough (the FIPS test vector
/// below checks this).
const T0: [u32; 256] = build_t0();
/// `T0` rotated left by one byte (for state byte row 1).
const T1: [u32; 256] = rotate_table(&T0, 8);
/// `T0` rotated left by two bytes (for state byte row 2).
const T2: [u32; 256] = rotate_table(&T0, 16);
/// `T0` rotated left by three bytes (for state byte row 3).
const T3: [u32; 256] = rotate_table(&T0, 24);

const fn build_t0() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        table[i] = (s2 as u32) | ((s as u32) << 8) | ((s as u32) << 16) | ((s3 as u32) << 24);
        i += 1;
    }
    table
}

const fn rotate_table(base: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = base[i].rotate_left(bits);
        i += 1;
    }
    table
}

/// An expanded AES-128 key schedule, stored as little-endian column words —
/// the form the T-table encryption loop consumes (byte `r` of column word `c`
/// is the FIPS-197 state byte at row `r`, column `c`).
#[derive(Clone)]
pub struct Aes128 {
    round_key_columns: [[u32; 4]; ROUNDS + 1],
}

impl Aes128 {
    /// Expand a 128-bit key into the 11 round keys.
    #[must_use]
    pub fn new(key: [u8; BLOCK]) -> Self {
        let mut words = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, word) in words.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_key_columns = [[0u32; 4]; ROUNDS + 1];
        for (round, columns) in round_key_columns.iter_mut().enumerate() {
            for (word, column) in columns.iter_mut().enumerate() {
                *column = u32::from_le_bytes(words[4 * round + word]);
            }
        }
        Self { round_key_columns }
    }

    /// Encrypt a single 16-byte block.
    ///
    /// The state is held as four little-endian column words (byte `r` of
    /// column `c` is state byte `c*4 + r`, the FIPS-197 column-major layout);
    /// each middle round is the fused T-table transform, the last round
    /// applies SubBytes+ShiftRows without MixColumns.
    #[must_use]
    pub fn encrypt_block(&self, plaintext: [u8; BLOCK]) -> [u8; BLOCK] {
        let rk = &self.round_key_columns;
        let mut c0 = u32::from_le_bytes([plaintext[0], plaintext[1], plaintext[2], plaintext[3]]);
        let mut c1 = u32::from_le_bytes([plaintext[4], plaintext[5], plaintext[6], plaintext[7]]);
        let mut c2 = u32::from_le_bytes([plaintext[8], plaintext[9], plaintext[10], plaintext[11]]);
        let mut c3 =
            u32::from_le_bytes([plaintext[12], plaintext[13], plaintext[14], plaintext[15]]);
        c0 ^= rk[0][0];
        c1 ^= rk[0][1];
        c2 ^= rk[0][2];
        c3 ^= rk[0][3];

        for k in rk.iter().take(ROUNDS).skip(1) {
            let n0 = T0[(c0 & 0xff) as usize]
                ^ T1[((c1 >> 8) & 0xff) as usize]
                ^ T2[((c2 >> 16) & 0xff) as usize]
                ^ T3[(c3 >> 24) as usize]
                ^ k[0];
            let n1 = T0[(c1 & 0xff) as usize]
                ^ T1[((c2 >> 8) & 0xff) as usize]
                ^ T2[((c3 >> 16) & 0xff) as usize]
                ^ T3[(c0 >> 24) as usize]
                ^ k[1];
            let n2 = T0[(c2 & 0xff) as usize]
                ^ T1[((c3 >> 8) & 0xff) as usize]
                ^ T2[((c0 >> 16) & 0xff) as usize]
                ^ T3[(c1 >> 24) as usize]
                ^ k[2];
            let n3 = T0[(c3 & 0xff) as usize]
                ^ T1[((c0 >> 8) & 0xff) as usize]
                ^ T2[((c1 >> 16) & 0xff) as usize]
                ^ T3[(c2 >> 24) as usize]
                ^ k[3];
            (c0, c1, c2, c3) = (n0, n1, n2, n3);
        }

        let k = &rk[ROUNDS];
        let last = |a: u32, b: u32, c: u32, d: u32| -> u32 {
            (SBOX[(a & 0xff) as usize] as u32)
                | ((SBOX[((b >> 8) & 0xff) as usize] as u32) << 8)
                | ((SBOX[((c >> 16) & 0xff) as usize] as u32) << 16)
                | ((SBOX[(d >> 24) as usize] as u32) << 24)
        };
        let o0 = last(c0, c1, c2, c3) ^ k[0];
        let o1 = last(c1, c2, c3, c0) ^ k[1];
        let o2 = last(c2, c3, c0, c1) ^ k[2];
        let o3 = last(c3, c0, c1, c2) ^ k[3];

        let mut out = [0u8; BLOCK];
        out[0..4].copy_from_slice(&o0.to_le_bytes());
        out[4..8].copy_from_slice(&o1.to_le_bytes());
        out[8..12].copy_from_slice(&o2.to_le_bytes());
        out[12..16].copy_from_slice(&o3.to_le_bytes());
        out
    }
}

/// AES-128 in a counter-mode-style PRF construction.
///
/// The PRF evaluates `AES_k(input ⊕ encode(tweak))`, i.e. a fixed-key block
/// cipher applied to a tweaked input — the construction used by fixed-key AES
/// DPF implementations.
pub struct Aes128Prf {
    cipher: Aes128,
    backend: SimdBackend,
}

impl Aes128Prf {
    /// Build a PRF around an explicit 128-bit key.
    #[must_use]
    pub fn new(key: [u8; BLOCK]) -> Self {
        Self {
            cipher: Aes128::new(key),
            backend: SimdBackend::Scalar,
        }
    }

    /// Build a PRF with the crate's fixed public key.
    #[must_use]
    pub fn with_fixed_key() -> Self {
        Self::new(*b"gpu-pir-aes-key!")
    }

    /// Pin the batched sweeps to a SIMD backend (unsupported requests fall
    /// back to scalar). Only the x86_64 backend accelerates AES (via AES-NI);
    /// NEON hosts use the scalar path.
    #[must_use]
    pub fn with_backend(mut self, backend: SimdBackend) -> Self {
        self.backend = match backend.supported_or_scalar() {
            SimdBackend::Avx2 => SimdBackend::Avx2,
            _ => SimdBackend::Scalar,
        };
        self
    }
}

impl Prf for Aes128Prf {
    fn kind(&self) -> PrfKind {
        PrfKind::Aes128
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        let tweaked = input ^ tweak_block(tweak);
        Block128::from_le_bytes(self.cipher.encrypt_block(tweaked.to_le_bytes()))
    }

    fn eval_blocks(&self, inputs: &[Block128], tweak: u64, out: &mut [Block128]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "eval_blocks input/output length mismatch"
        );
        let mask = tweak_block(tweak);
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            crate::simd::aes_x86::eval_blocks(&self.cipher.round_key_columns, mask, inputs, out);
            return;
        }
        for (input, slot) in inputs.iter().zip(out.iter_mut()) {
            *slot =
                Block128::from_le_bytes(self.cipher.encrypt_block((*input ^ mask).to_le_bytes()));
        }
    }

    fn eval_blocks_pair(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            assert_eq!(inputs.len(), out_a.len());
            assert_eq!(inputs.len(), out_b.len());
            crate::simd::aes_x86::pair_sweep(
                &self.cipher.round_key_columns,
                tweak_block(tweak_a),
                tweak_block(tweak_b),
                inputs,
                out_a,
                out_b,
                false,
            );
            return;
        }
        self.eval_blocks(inputs, tweak_a, out_a);
        self.eval_blocks(inputs, tweak_b, out_b);
    }

    fn expand_blocks_mmo(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            assert_eq!(inputs.len(), out_a.len());
            assert_eq!(inputs.len(), out_b.len());
            crate::simd::aes_x86::pair_sweep(
                &self.cipher.round_key_columns,
                tweak_block(tweak_a),
                tweak_block(tweak_b),
                inputs,
                out_a,
                out_b,
                true,
            );
            return;
        }
        self.eval_blocks_pair(inputs, tweak_a, tweak_b, out_a, out_b);
        pir_field::simd::xor_blocks_inplace(out_a, inputs);
        pir_field::simd::xor_blocks_inplace(out_b, inputs);
    }

    fn backend_label(&self) -> &'static str {
        self.backend.label()
    }
}

/// The tweak is mixed into the plaintext before encryption (counter-mode
/// style domain separation).
#[inline]
fn tweak_block(tweak: u64) -> Block128 {
    Block128::from_halves(tweak, tweak.rotate_left(32) ^ 0xa5a5_a5a5)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.1 test vector.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let cipher = Aes128::new(key);
        assert_eq!(cipher.encrypt_block(plaintext), expected);
    }

    /// FIPS-197 Appendix A.1 key expansion spot checks.
    #[test]
    fn key_expansion_matches_reference() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let cipher = Aes128::new(key);
        let columns = |bytes: [u8; 16]| {
            [
                u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
                u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
                u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
                u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
            ]
        };
        // w[4..8] from the FIPS-197 walkthrough: a0fafe17 88542cb1 23a33939 2a6c7605
        assert_eq!(
            cipher.round_key_columns[1],
            columns([
                0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1, 0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c,
                0x76, 0x05
            ])
        );
        // Final round key w[40..44]: d014f9a8 c9ee2589 e13f0cc8 b6630ca6
        assert_eq!(
            cipher.round_key_columns[10],
            columns([
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                0x0c, 0xa6
            ])
        );
    }

    #[test]
    fn prf_is_deterministic_and_tweaked() {
        let prf = Aes128Prf::with_fixed_key();
        let x = Block128::from_u128(99);
        assert_eq!(prf.eval_block(x, 3), prf.eval_block(x, 3));
        assert_ne!(prf.eval_block(x, 3), prf.eval_block(x, 4));
        assert_ne!(
            prf.eval_block(x, 3),
            prf.eval_block(Block128::from_u128(100), 3)
        );
        assert_eq!(prf.kind(), PrfKind::Aes128);
    }

    #[test]
    fn different_keys_give_different_outputs() {
        let a = Aes128Prf::new([0u8; 16]);
        let b = Aes128Prf::new([1u8; 16]);
        let x = Block128::from_u128(7);
        assert_ne!(a.eval_block(x, 0), b.eval_block(x, 0));
    }
}
