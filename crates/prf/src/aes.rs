//! Portable software AES-128 used as the default PRF.
//!
//! CPUs accelerate AES with AES-NI, which is why the CPU DPF baseline uses it;
//! GPUs have no such hardware so AES must be computed in software with S-box
//! lookups (the paper's §3.2.6). This module is a straightforward, table-free
//! byte-oriented implementation of the FIPS-197 cipher: it favours clarity and
//! portability over raw speed, because in this reproduction the *performance*
//! of each PRF on the GPU is captured by the cost model
//! ([`crate::PrfKind::gpu_cycles_per_block`]), while this code provides the
//! *functional* behaviour.

use pir_field::Block128;

use crate::{Prf, PrfKind};

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

const ROUNDS: usize = 10;
const BLOCK: usize = 16;

/// Multiply a byte by `x` in GF(2^8) (the `xtime` operation from FIPS-197).
#[inline]
fn xtime(byte: u8) -> u8 {
    let shifted = byte << 1;
    if byte & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// An expanded AES-128 key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; BLOCK]; ROUNDS + 1],
}

impl Aes128 {
    /// Expand a 128-bit key into the 11 round keys.
    #[must_use]
    pub fn new(key: [u8; BLOCK]) -> Self {
        let mut words = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, word) in words.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; BLOCK]; ROUNDS + 1];
        for (round, round_key) in round_keys.iter_mut().enumerate() {
            for word in 0..4 {
                round_key[4 * word..4 * word + 4].copy_from_slice(&words[4 * round + word]);
            }
        }
        Self { round_keys }
    }

    /// Encrypt a single 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, plaintext: [u8; BLOCK]) -> [u8; BLOCK] {
        let mut state = plaintext;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }
}

fn add_round_key(state: &mut [u8; BLOCK], round_key: &[u8; BLOCK]) {
    for (s, k) in state.iter_mut().zip(round_key) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; BLOCK]) {
    for byte in state.iter_mut() {
        *byte = SBOX[*byte as usize];
    }
}

/// State is column-major: byte `state[c*4 + r]` is row `r`, column `c`.
fn shift_rows(state: &mut [u8; BLOCK]) {
    let copy = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[col * 4 + row] = copy[((col + row) % 4) * 4 + row];
        }
    }
}

fn mix_columns(state: &mut [u8; BLOCK]) {
    for col in 0..4 {
        let a = [
            state[col * 4],
            state[col * 4 + 1],
            state[col * 4 + 2],
            state[col * 4 + 3],
        ];
        let b = [xtime(a[0]), xtime(a[1]), xtime(a[2]), xtime(a[3])];
        state[col * 4] = b[0] ^ a[1] ^ b[1] ^ a[2] ^ a[3];
        state[col * 4 + 1] = a[0] ^ b[1] ^ a[2] ^ b[2] ^ a[3];
        state[col * 4 + 2] = a[0] ^ a[1] ^ b[2] ^ a[3] ^ b[3];
        state[col * 4 + 3] = a[0] ^ b[0] ^ a[1] ^ a[2] ^ b[3];
    }
}

/// AES-128 in a counter-mode-style PRF construction.
///
/// The PRF evaluates `AES_k(input ⊕ encode(tweak))`, i.e. a fixed-key block
/// cipher applied to a tweaked input — the construction used by fixed-key AES
/// DPF implementations.
pub struct Aes128Prf {
    cipher: Aes128,
}

impl Aes128Prf {
    /// Build a PRF around an explicit 128-bit key.
    #[must_use]
    pub fn new(key: [u8; BLOCK]) -> Self {
        Self {
            cipher: Aes128::new(key),
        }
    }

    /// Build a PRF with the crate's fixed public key.
    #[must_use]
    pub fn with_fixed_key() -> Self {
        Self::new(*b"gpu-pir-aes-key!")
    }
}

impl Prf for Aes128Prf {
    fn kind(&self) -> PrfKind {
        PrfKind::Aes128
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        let tweaked = input ^ Block128::from_halves(tweak, tweak.rotate_left(32) ^ 0xa5a5_a5a5);
        Block128::from_le_bytes(self.cipher.encrypt_block(tweaked.to_le_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.1 test vector.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let cipher = Aes128::new(key);
        assert_eq!(cipher.encrypt_block(plaintext), expected);
    }

    /// FIPS-197 Appendix A.1 key expansion spot checks.
    #[test]
    fn key_expansion_matches_reference() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let cipher = Aes128::new(key);
        // w[4..8] from the FIPS-197 walkthrough: a0fafe17 88542cb1 23a33939 2a6c7605
        assert_eq!(
            cipher.round_keys[1],
            [
                0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1, 0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c,
                0x76, 0x05
            ]
        );
        // Final round key w[40..44]: d014f9a8 c9ee2589 e13f0cc8 b6630ca6
        assert_eq!(
            cipher.round_keys[10],
            [
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                0x0c, 0xa6
            ]
        );
    }

    #[test]
    fn prf_is_deterministic_and_tweaked() {
        let prf = Aes128Prf::with_fixed_key();
        let x = Block128::from_u128(99);
        assert_eq!(prf.eval_block(x, 3), prf.eval_block(x, 3));
        assert_ne!(prf.eval_block(x, 3), prf.eval_block(x, 4));
        assert_ne!(
            prf.eval_block(x, 3),
            prf.eval_block(Block128::from_u128(100), 3)
        );
        assert_eq!(prf.kind(), PrfKind::Aes128);
    }

    #[test]
    fn different_keys_give_different_outputs() {
        let a = Aes128Prf::new([0u8; 16]);
        let b = Aes128Prf::new([1u8; 16]);
        let x = Block128::from_u128(7);
        assert_ne!(a.eval_block(x, 0), b.eval_block(x, 0));
    }
}
