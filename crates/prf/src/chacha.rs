//! ChaCha20 block function used as a GPU-friendly PRF.
//!
//! ChaCha20 is built from 32-bit add/rotate/xor operations with no table
//! lookups, which maps well onto GPU ALUs — the paper reports a ~3.8×
//! throughput improvement over software AES on a V100 (Table 5).

use pir_field::{Block128, SimdBackend};

use crate::{Prf, PrfKind};

/// The ChaCha20 state constants ("expand 32-byte k").
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Run the full ChaCha20 block function (20 rounds) and return the 64-byte
/// keystream block.
#[must_use]
pub fn chacha20_block(key: &[u32; 8], counter: u32, nonce: &[u32; 3]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter;
    state[13..16].copy_from_slice(nonce);

    let initial = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(&initial) {
        *word = word.wrapping_add(*init);
    }
    state
}

/// ChaCha20 used as a PRF: the 128-bit input fills half of the key, the tweak
/// becomes the nonce, and the first 128 bits of keystream are the output.
pub struct ChaCha20Prf {
    key_high: [u32; 4],
    backend: SimdBackend,
}

impl ChaCha20Prf {
    /// Build a PRF with an explicit 128-bit key half (the other half is the
    /// per-call input).
    #[must_use]
    pub fn new(key_high: [u32; 4]) -> Self {
        Self {
            key_high,
            backend: SimdBackend::Scalar,
        }
    }

    /// Build a PRF with the crate's fixed public key.
    #[must_use]
    pub fn with_fixed_key() -> Self {
        Self::new([0x6770_7521, 0x7069_7221, 0x6368_6163, 0x6861_3230])
    }

    /// Pin the batched sweeps to a SIMD backend (unsupported requests fall
    /// back to scalar). ChaCha has both AVX2 (8-way) and NEON (4-way) paths.
    #[must_use]
    pub fn with_backend(mut self, backend: SimdBackend) -> Self {
        self.backend = backend.supported_or_scalar();
        self
    }
}

impl ChaCha20Prf {
    /// Evaluate one block against a prepared key/nonce template; only the
    /// input-derived key half varies per call.
    #[inline]
    fn eval_with_key(&self, input: Block128, key: &mut [u32; 8], nonce: &[u32; 3]) -> Block128 {
        let (low, high) = input.halves();
        key[0] = low as u32;
        key[1] = (low >> 32) as u32;
        key[2] = high as u32;
        key[3] = (high >> 32) as u32;
        let out = chacha20_block(key, 0, nonce);
        Block128::from_halves(
            (out[0] as u64) | ((out[1] as u64) << 32),
            (out[2] as u64) | ((out[3] as u64) << 32),
        )
    }

    /// The domain-separation nonce derived from `tweak`.
    #[inline]
    fn nonce(tweak: u64) -> [u32; 3] {
        [tweak as u32, (tweak >> 32) as u32, 0x5049_5221]
    }
}

impl Prf for ChaCha20Prf {
    fn kind(&self) -> PrfKind {
        PrfKind::Chacha20
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        let mut key = [0u32; 8];
        key[4..8].copy_from_slice(&self.key_high);
        self.eval_with_key(input, &mut key, &Self::nonce(tweak))
    }

    fn eval_blocks(&self, inputs: &[Block128], tweak: u64, out: &mut [Block128]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "eval_blocks input/output length mismatch"
        );
        let nonce = Self::nonce(tweak);
        #[cfg_attr(
            not(any(target_arch = "x86_64", target_arch = "aarch64")),
            allow(unused_mut)
        )]
        let mut vector_len = 0;
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            vector_len = inputs.len() - inputs.len() % crate::simd::chacha_x86::WIDTH;
            crate::simd::chacha_x86::eval_blocks(
                &self.key_high,
                &nonce,
                &inputs[..vector_len],
                &mut out[..vector_len],
            );
        }
        #[cfg(target_arch = "aarch64")]
        if self.backend == SimdBackend::Neon {
            vector_len = inputs.len() - inputs.len() % crate::simd::chacha_neon::WIDTH;
            crate::simd::chacha_neon::eval_blocks(
                &self.key_high,
                &nonce,
                &inputs[..vector_len],
                &mut out[..vector_len],
            );
        }
        let mut key = [0u32; 8];
        key[4..8].copy_from_slice(&self.key_high);
        for (input, slot) in inputs[vector_len..]
            .iter()
            .zip(out[vector_len..].iter_mut())
        {
            *slot = self.eval_with_key(*input, &mut key, &nonce);
        }
    }

    fn backend_label(&self) -> &'static str {
        self.backend.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 block function test vector.
    #[test]
    fn rfc7539_block_vector() {
        let key: [u32; 8] = [
            0x0302_0100,
            0x0706_0504,
            0x0b0a_0908,
            0x0f0e_0d0c,
            0x1312_1110,
            0x1716_1514,
            0x1b1a_1918,
            0x1f1e_1d1c,
        ];
        let nonce: [u32; 3] = [0x0900_0000, 0x4a00_0000, 0x0000_0000];
        let counter = 1;
        let out = chacha20_block(&key, counter, &nonce);
        let expected: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn prf_properties() {
        let prf = ChaCha20Prf::with_fixed_key();
        let x = Block128::from_u128(0xabcd);
        assert_eq!(prf.eval_block(x, 1), prf.eval_block(x, 1));
        assert_ne!(prf.eval_block(x, 1), prf.eval_block(x, 2));
        assert_ne!(
            prf.eval_block(x, 1),
            prf.eval_block(Block128::from_u128(1), 1)
        );
        assert_eq!(prf.kind(), PrfKind::Chacha20);
    }
}
