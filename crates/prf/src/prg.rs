//! The length-doubling PRG that drives GGM-tree expansion.

use std::sync::Arc;

use pir_field::Block128;

use crate::Prf;

/// The result of expanding one tree node into its two children.
///
/// Each child carries a 127-bit seed (least-significant bit cleared) plus a
/// one-bit control flag, exactly the `(s_L, t_L, s_R, t_R)` tuple of the
/// Gilboa–Ishai DPF.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrgExpansion {
    /// Left child seed (LSB cleared).
    pub seed_left: Block128,
    /// Right child seed (LSB cleared).
    pub seed_right: Block128,
    /// Left control bit.
    pub t_left: bool,
    /// Right control bit.
    pub t_right: bool,
}

/// A GGM-style length-doubling PRG built from a [`Prf`] with a
/// Matyas–Meyer–Oseas feed-forward (`G_i(s) = PRF(s, i) ⊕ s`).
///
/// The feed-forward makes the expansion one-way even if the underlying
/// primitive is used with a fixed, public key, matching how fixed-key AES is
/// used by production DPF implementations.
#[derive(Clone)]
pub struct GgmPrg {
    prf: Arc<dyn Prf>,
}

/// Tweak used to derive the left child.
const LEFT_TWEAK: u64 = 0;
/// Tweak used to derive the right child.
const RIGHT_TWEAK: u64 = 1;

impl GgmPrg {
    /// Build a PRG from the given PRF.
    #[must_use]
    pub fn new(prf: Arc<dyn Prf>) -> Self {
        Self { prf }
    }

    /// Access the underlying PRF (e.g. to read its call counter).
    #[must_use]
    pub fn prf(&self) -> &Arc<dyn Prf> {
        &self.prf
    }

    /// Expand a node seed into its two children.
    ///
    /// Each expansion costs exactly two PRF block evaluations — one per child
    /// — which is the unit the paper's Figure 6 counts.
    #[must_use]
    pub fn expand(&self, seed: Block128) -> PrgExpansion {
        let left = self.prf.eval_block(seed, LEFT_TWEAK) ^ seed;
        let right = self.prf.eval_block(seed, RIGHT_TWEAK) ^ seed;
        PrgExpansion {
            seed_left: left.with_cleared_lsb(),
            seed_right: right.with_cleared_lsb(),
            t_left: left.lsb(),
            t_right: right.lsb(),
        }
    }

    /// Expand only one child (used by the single-point `Eval`); costs one PRF
    /// block evaluation.
    #[must_use]
    pub fn expand_one(&self, seed: Block128, right: bool) -> (Block128, bool) {
        let tweak = if right { RIGHT_TWEAK } else { LEFT_TWEAK };
        let out = self.prf.eval_block(seed, tweak) ^ seed;
        (out.with_cleared_lsb(), out.lsb())
    }

    /// Expand a whole frontier of seeds one level down in two batched PRF
    /// sweeps (one per child tweak).
    ///
    /// `seeds[i]`'s children land at `out_seeds[2 * i]` (left) and
    /// `out_seeds[2 * i + 1]` (right), with their control bits packed into
    /// `out_t` (bit `j % 64` of word `j / 64` for child index `j`; `out_t` is
    /// fully overwritten). Each child is bit-identical to the corresponding
    /// [`GgmPrg::expand`] output, and the call costs exactly
    /// `2 * seeds.len()` PRF block evaluations — the unit the cost model
    /// counts is unchanged, only the host-side batching differs.
    ///
    /// # Panics
    ///
    /// Panics if `out_seeds` is not exactly twice `seeds` or `out_t` cannot
    /// hold one bit per child.
    pub fn expand_frontier(
        &self,
        seeds: &[Block128],
        scratch: &mut FrontierScratch,
        out_seeds: &mut [Block128],
        out_t: &mut [u64],
    ) {
        let n = seeds.len();
        assert_eq!(out_seeds.len(), 2 * n, "need two child slots per seed");
        assert_eq!(
            out_t.len(),
            (2 * n).div_ceil(64),
            "need one packed control bit per child"
        );
        let (left, right) = self.frontier_sweeps(seeds, scratch);

        out_t.fill(0);
        for i in 0..n {
            let left = left[i];
            let right = right[i];
            out_seeds[2 * i] = left.with_cleared_lsb();
            out_seeds[2 * i + 1] = right.with_cleared_lsb();
            let bits = (left.lsb() as u64) | ((right.lsb() as u64) << 1);
            out_t[i / 32] |= bits << (2 * i % 64);
        }
    }

    /// Run the two batched child sweeps for a frontier, returning the full
    /// PRG outputs `G_0(s) = PRF(s, 0) ⊕ s` and `G_1(s) = PRF(s, 1) ⊕ s`
    /// (feed-forward applied, control bit still embedded in the LSB).
    ///
    /// This is the lowest-level building block of the frontier engine:
    /// callers that also apply correction words fuse the control-bit split
    /// and the correction into one pass over the returned slices instead of
    /// paying a separate interleave loop (see the `pir-dpf` strategies).
    /// Costs exactly `2 * seeds.len()` PRF block evaluations.
    pub fn frontier_sweeps<'s>(
        &self,
        seeds: &[Block128],
        scratch: &'s mut FrontierScratch,
    ) -> (&'s [Block128], &'s [Block128]) {
        let n = seeds.len();
        // Grow-only: both sweeps overwrite `[..n]` entirely, so shrinking (and
        // re-zeroing on the next growth) would be pure waste in the hot loop.
        if scratch.left.len() < n {
            scratch.left.resize(n, Block128::ZERO);
            scratch.right.resize(n, Block128::ZERO);
        }
        self.prf.expand_blocks_mmo(
            seeds,
            LEFT_TWEAK,
            RIGHT_TWEAK,
            &mut scratch.left[..n],
            &mut scratch.right[..n],
        );
        (&scratch.left[..n], &scratch.right[..n])
    }
}

/// Reusable buffers for [`GgmPrg::expand_frontier`], holding the raw PRF
/// outputs of the left and right sweeps. Keeping them outside the call lets a
/// level-synchronous expansion reuse one allocation across every level and
/// chunk of a job.
#[derive(Clone, Debug, Default)]
pub struct FrontierScratch {
    left: Vec<Block128>,
    right: Vec<Block128>,
}

impl FrontierScratch {
    /// Create empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create scratch buffers that can expand `seeds` seeds without
    /// reallocating.
    #[must_use]
    pub fn with_capacity(seeds: usize) -> Self {
        Self {
            left: Vec::with_capacity(seeds),
            right: Vec::with_capacity(seeds),
        }
    }
}

impl std::fmt::Debug for GgmPrg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GgmPrg")
            .field("prf", &self.prf.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_prf, PrfKind};

    #[test]
    fn expansion_is_deterministic() {
        for kind in PrfKind::ALL {
            let prg = GgmPrg::new(build_prf(kind));
            let seed = Block128::from_u128(0x42);
            assert_eq!(prg.expand(seed), prg.expand(seed), "{kind}");
        }
    }

    #[test]
    fn children_differ_from_each_other_and_parent() {
        let prg = GgmPrg::new(build_prf(PrfKind::Aes128));
        let seed = Block128::from_u128(0x1357_9bdf);
        let out = prg.expand(seed);
        assert_ne!(out.seed_left, out.seed_right);
        assert_ne!(out.seed_left, seed);
        assert_ne!(out.seed_right, seed);
    }

    #[test]
    fn children_have_cleared_lsb() {
        let prg = GgmPrg::new(build_prf(PrfKind::Chacha20));
        for i in 0..64u128 {
            let out = prg.expand(Block128::from_u128(i));
            assert!(!out.seed_left.lsb());
            assert!(!out.seed_right.lsb());
        }
    }

    #[test]
    fn expand_one_matches_expand() {
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let seed = Block128::from_u128(0xdead);
        let both = prg.expand(seed);
        assert_eq!(prg.expand_one(seed, false), (both.seed_left, both.t_left));
        assert_eq!(prg.expand_one(seed, true), (both.seed_right, both.t_right));
    }

    #[test]
    fn expand_counts_two_prf_calls() {
        let counting = crate::build_counting_prf(PrfKind::SipHash);
        let prg = GgmPrg::new(counting.clone() as Arc<dyn Prf>);
        let _ = prg.expand(Block128::from_u128(5));
        assert_eq!(counting.calls(), 2);
        let _ = prg.expand_one(Block128::from_u128(5), true);
        assert_eq!(counting.calls(), 3);
    }

    /// The batched frontier expansion must agree with per-node `expand` for
    /// every PRF family, on frontiers that straddle packed-word boundaries.
    #[test]
    fn frontier_matches_per_node_expand() {
        for kind in PrfKind::ALL {
            let prg = GgmPrg::new(build_prf(kind));
            for n in [1usize, 2, 31, 32, 33, 65] {
                let seeds: Vec<Block128> = (0..n as u128)
                    .map(|i| Block128::from_u128(i * 0x9e37 + 7))
                    .collect();
                let mut scratch = FrontierScratch::new();
                let mut children = vec![Block128::ZERO; 2 * n];
                let mut t_bits = vec![0u64; (2 * n).div_ceil(64)];
                prg.expand_frontier(&seeds, &mut scratch, &mut children, &mut t_bits);

                for (i, seed) in seeds.iter().enumerate() {
                    let expected = prg.expand(*seed);
                    assert_eq!(children[2 * i], expected.seed_left, "{kind} left {i}");
                    assert_eq!(children[2 * i + 1], expected.seed_right, "{kind} right {i}");
                    let t_left = (t_bits[(2 * i) / 64] >> ((2 * i) % 64)) & 1 == 1;
                    let t_right = (t_bits[(2 * i + 1) / 64] >> ((2 * i + 1) % 64)) & 1 == 1;
                    assert_eq!(t_left, expected.t_left, "{kind} t_left {i}");
                    assert_eq!(t_right, expected.t_right, "{kind} t_right {i}");
                }
            }
        }
    }

    #[test]
    fn frontier_counts_two_prf_calls_per_seed() {
        let counting = crate::build_counting_prf(PrfKind::SipHash);
        let prg = GgmPrg::new(counting.clone() as Arc<dyn Prf>);
        let seeds: Vec<Block128> = (0..40u128).map(Block128::from_u128).collect();
        let mut scratch = FrontierScratch::new();
        let mut children = vec![Block128::ZERO; 80];
        let mut t_bits = vec![0u64; 2];
        prg.expand_frontier(&seeds, &mut scratch, &mut children, &mut t_bits);
        assert_eq!(counting.calls(), 80);
    }

    /// Stale packed bits from a previous level must not leak into the output.
    #[test]
    fn frontier_overwrites_stale_control_bits() {
        let prg = GgmPrg::new(build_prf(PrfKind::Chacha20));
        let seeds = [Block128::from_u128(3)];
        let mut scratch = FrontierScratch::with_capacity(1);
        let mut children = vec![Block128::ZERO; 2];
        let mut t_bits = vec![u64::MAX];
        prg.expand_frontier(&seeds, &mut scratch, &mut children, &mut t_bits);
        assert_eq!(t_bits[0] >> 2, 0, "bits beyond the frontier must be zero");
    }
}
