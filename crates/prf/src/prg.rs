//! The length-doubling PRG that drives GGM-tree expansion.

use std::sync::Arc;

use pir_field::Block128;

use crate::Prf;

/// The result of expanding one tree node into its two children.
///
/// Each child carries a 127-bit seed (least-significant bit cleared) plus a
/// one-bit control flag, exactly the `(s_L, t_L, s_R, t_R)` tuple of the
/// Gilboa–Ishai DPF.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrgExpansion {
    /// Left child seed (LSB cleared).
    pub seed_left: Block128,
    /// Right child seed (LSB cleared).
    pub seed_right: Block128,
    /// Left control bit.
    pub t_left: bool,
    /// Right control bit.
    pub t_right: bool,
}

/// A GGM-style length-doubling PRG built from a [`Prf`] with a
/// Matyas–Meyer–Oseas feed-forward (`G_i(s) = PRF(s, i) ⊕ s`).
///
/// The feed-forward makes the expansion one-way even if the underlying
/// primitive is used with a fixed, public key, matching how fixed-key AES is
/// used by production DPF implementations.
#[derive(Clone)]
pub struct GgmPrg {
    prf: Arc<dyn Prf>,
}

/// Tweak used to derive the left child.
const LEFT_TWEAK: u64 = 0;
/// Tweak used to derive the right child.
const RIGHT_TWEAK: u64 = 1;

impl GgmPrg {
    /// Build a PRG from the given PRF.
    #[must_use]
    pub fn new(prf: Arc<dyn Prf>) -> Self {
        Self { prf }
    }

    /// Access the underlying PRF (e.g. to read its call counter).
    #[must_use]
    pub fn prf(&self) -> &Arc<dyn Prf> {
        &self.prf
    }

    /// Expand a node seed into its two children.
    ///
    /// Each expansion costs exactly two PRF block evaluations — one per child
    /// — which is the unit the paper's Figure 6 counts.
    #[must_use]
    pub fn expand(&self, seed: Block128) -> PrgExpansion {
        let left = self.prf.eval_block(seed, LEFT_TWEAK) ^ seed;
        let right = self.prf.eval_block(seed, RIGHT_TWEAK) ^ seed;
        PrgExpansion {
            seed_left: left.with_cleared_lsb(),
            seed_right: right.with_cleared_lsb(),
            t_left: left.lsb(),
            t_right: right.lsb(),
        }
    }

    /// Expand only one child (used by the single-point `Eval`); costs one PRF
    /// block evaluation.
    #[must_use]
    pub fn expand_one(&self, seed: Block128, right: bool) -> (Block128, bool) {
        let tweak = if right { RIGHT_TWEAK } else { LEFT_TWEAK };
        let out = self.prf.eval_block(seed, tweak) ^ seed;
        (out.with_cleared_lsb(), out.lsb())
    }
}

impl std::fmt::Debug for GgmPrg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GgmPrg")
            .field("prf", &self.prf.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_prf, PrfKind};

    #[test]
    fn expansion_is_deterministic() {
        for kind in PrfKind::ALL {
            let prg = GgmPrg::new(build_prf(kind));
            let seed = Block128::from_u128(0x42);
            assert_eq!(prg.expand(seed), prg.expand(seed), "{kind}");
        }
    }

    #[test]
    fn children_differ_from_each_other_and_parent() {
        let prg = GgmPrg::new(build_prf(PrfKind::Aes128));
        let seed = Block128::from_u128(0x1357_9bdf);
        let out = prg.expand(seed);
        assert_ne!(out.seed_left, out.seed_right);
        assert_ne!(out.seed_left, seed);
        assert_ne!(out.seed_right, seed);
    }

    #[test]
    fn children_have_cleared_lsb() {
        let prg = GgmPrg::new(build_prf(PrfKind::Chacha20));
        for i in 0..64u128 {
            let out = prg.expand(Block128::from_u128(i));
            assert!(!out.seed_left.lsb());
            assert!(!out.seed_right.lsb());
        }
    }

    #[test]
    fn expand_one_matches_expand() {
        let prg = GgmPrg::new(build_prf(PrfKind::SipHash));
        let seed = Block128::from_u128(0xdead);
        let both = prg.expand(seed);
        assert_eq!(prg.expand_one(seed, false), (both.seed_left, both.t_left));
        assert_eq!(prg.expand_one(seed, true), (both.seed_right, both.t_right));
    }

    #[test]
    fn expand_counts_two_prf_calls() {
        let counting = crate::build_counting_prf(PrfKind::SipHash);
        let prg = GgmPrg::new(counting.clone() as Arc<dyn Prf>);
        let _ = prg.expand(Block128::from_u128(5));
        assert_eq!(counting.calls(), 2);
        let _ = prg.expand_one(Block128::from_u128(5), true);
        assert_eq!(counting.calls(), 3);
    }
}
