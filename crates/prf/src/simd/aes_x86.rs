//! AES-NI sweeps for the AES-128 PRF.
//!
//! The scalar path computes standard FIPS-197 AES-128 with fused T-tables;
//! `AESENC`/`AESENCLAST` compute exactly one round of the same cipher on the
//! same little-endian column-major state layout, so the hardware path is
//! bit-identical by construction (and checked by the parity tests). The
//! expanded key schedule is already stored as little-endian column words,
//! whose memory image is precisely the 16 round-key bytes each `AESENC`
//! round expects — the keys are loaded directly, with no reshuffling.
//!
//! Eight blocks are kept in flight per loop iteration to cover the `AESENC`
//! latency (the instruction pipelines one block per cycle but takes several
//! cycles to retire, so a single dependent chain would idle the unit).

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_storeu_si128,
    _mm_xor_si128,
};

use pir_field::Block128;

const ROUNDS: usize = 10;
const PIPELINE: usize = 8;

type RoundKeys = [__m128i; ROUNDS + 1];

// SAFETY: caller must ensure AES-NI is available (`#[target_feature]`).
#[target_feature(enable = "aes")]
unsafe fn load_round_keys(columns: &[[u32; 4]; ROUNDS + 1]) -> RoundKeys {
    // SAFETY: an all-zero __m128i is a valid value; each [u32; 4] column is
    // 16 readable bytes and the loads are unaligned.
    unsafe {
        let mut keys = [core::mem::zeroed(); ROUNDS + 1];
        for (key, column) in keys.iter_mut().zip(columns) {
            *key = _mm_loadu_si128(column.as_ptr().cast::<__m128i>());
        }
        keys
    }
}

/// Encrypt one loaded state (already XORed with the tweak mask).
// SAFETY: caller must ensure AES-NI is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "aes")]
unsafe fn encrypt(keys: &RoundKeys, mut state: __m128i) -> __m128i {
    state = _mm_xor_si128(state, keys[0]);
    for key in keys.iter().take(ROUNDS).skip(1) {
        state = _mm_aesenc_si128(state, *key);
    }
    _mm_aesenclast_si128(state, keys[ROUNDS])
}

/// `out[i] = AES_k(inputs[i] ^ mask)` for every block.
///
/// Must only be called when the Avx2 backend (which requires AES-NI) passed
/// runtime detection.
pub(crate) fn eval_blocks(
    columns: &[[u32; 4]; ROUNDS + 1],
    mask: Block128,
    inputs: &[Block128],
    out: &mut [Block128],
) {
    debug_assert_eq!(inputs.len(), out.len());
    // SAFETY: caller contract — AES-NI detected at runtime.
    unsafe { eval_blocks_impl(columns, mask, inputs, out) }
}

#[target_feature(enable = "aes")]
unsafe fn eval_blocks_impl(
    columns: &[[u32; 4]; ROUNDS + 1],
    mask: Block128,
    inputs: &[Block128],
    out: &mut [Block128],
) {
    // SAFETY: Block128 is #[repr(transparent)] over u128 — 16 raw LE bytes —
    // so the unaligned loads/stores at offsets < len stay in bounds of the
    // equal-length `inputs`/`out` slices; AES-NI is enabled by the caller.
    unsafe {
        let keys = load_round_keys(columns);
        let mask_bytes = mask.to_le_bytes();
        let mask_v = _mm_loadu_si128(mask_bytes.as_ptr().cast::<__m128i>());

        let len = inputs.len();
        let in_ptr = inputs.as_ptr().cast::<__m128i>();
        let out_ptr = out.as_mut_ptr().cast::<__m128i>();

        let full = len / PIPELINE * PIPELINE;
        let mut i = 0;
        while i < full {
            let mut states = [core::mem::zeroed::<__m128i>(); PIPELINE];
            for (j, state) in states.iter_mut().enumerate() {
                *state = _mm_xor_si128(_mm_loadu_si128(in_ptr.add(i + j)), mask_v);
            }
            for state in &mut states {
                *state = encrypt(&keys, *state);
            }
            for (j, state) in states.iter().enumerate() {
                _mm_storeu_si128(out_ptr.add(i + j), *state);
            }
            i += PIPELINE;
        }
        while i < len {
            let state = _mm_xor_si128(_mm_loadu_si128(in_ptr.add(i)), mask_v);
            _mm_storeu_si128(out_ptr.add(i), encrypt(&keys, state));
            i += 1;
        }
    }
}

/// The paired-tweak GGM sweep: `out_a[i] = AES_k(inputs[i] ^ mask_a)` and
/// likewise for `b`, with the Matyas–Meyer–Oseas feed-forward
/// (`^ inputs[i]`) fused in when `mmo` is set.
///
/// Loading each input once and encrypting it under both tweak masks halves
/// the memory traffic of two separate sweeps; the two states per input also
/// provide the instruction-level parallelism `AESENC` wants.
///
/// Must only be called when the Avx2 backend passed runtime detection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pair_sweep(
    columns: &[[u32; 4]; ROUNDS + 1],
    mask_a: Block128,
    mask_b: Block128,
    inputs: &[Block128],
    out_a: &mut [Block128],
    out_b: &mut [Block128],
    mmo: bool,
) {
    debug_assert_eq!(inputs.len(), out_a.len());
    debug_assert_eq!(inputs.len(), out_b.len());
    // SAFETY: caller contract — AES-NI detected at runtime.
    unsafe { pair_sweep_impl(columns, mask_a, mask_b, inputs, out_a, out_b, mmo) }
}

#[target_feature(enable = "aes")]
#[allow(clippy::too_many_arguments)]
unsafe fn pair_sweep_impl(
    columns: &[[u32; 4]; ROUNDS + 1],
    mask_a: Block128,
    mask_b: Block128,
    inputs: &[Block128],
    out_a: &mut [Block128],
    out_b: &mut [Block128],
    mmo: bool,
) {
    // SAFETY: Block128 is #[repr(transparent)] over u128, so the unaligned
    // loads/stores at offsets < len stay in bounds of the equal-length
    // `inputs`/`out_a`/`out_b` slices; AES-NI is enabled by the caller.
    unsafe {
        let keys = load_round_keys(columns);
        let mask_a_bytes = mask_a.to_le_bytes();
        let mask_b_bytes = mask_b.to_le_bytes();
        let mask_a_v = _mm_loadu_si128(mask_a_bytes.as_ptr().cast::<__m128i>());
        let mask_b_v = _mm_loadu_si128(mask_b_bytes.as_ptr().cast::<__m128i>());

        let len = inputs.len();
        let in_ptr = inputs.as_ptr().cast::<__m128i>();
        let a_ptr = out_a.as_mut_ptr().cast::<__m128i>();
        let b_ptr = out_b.as_mut_ptr().cast::<__m128i>();

        const PAIRS: usize = PIPELINE / 2;
        let full = len / PAIRS * PAIRS;
        let mut i = 0;
        while i < full {
            let mut loaded = [core::mem::zeroed::<__m128i>(); PAIRS];
            let mut states_a = [core::mem::zeroed::<__m128i>(); PAIRS];
            let mut states_b = [core::mem::zeroed::<__m128i>(); PAIRS];
            for j in 0..PAIRS {
                loaded[j] = _mm_loadu_si128(in_ptr.add(i + j));
                states_a[j] = _mm_xor_si128(loaded[j], mask_a_v);
                states_b[j] = _mm_xor_si128(loaded[j], mask_b_v);
            }
            for j in 0..PAIRS {
                states_a[j] = encrypt(&keys, states_a[j]);
                states_b[j] = encrypt(&keys, states_b[j]);
            }
            for j in 0..PAIRS {
                if mmo {
                    states_a[j] = _mm_xor_si128(states_a[j], loaded[j]);
                    states_b[j] = _mm_xor_si128(states_b[j], loaded[j]);
                }
                _mm_storeu_si128(a_ptr.add(i + j), states_a[j]);
                _mm_storeu_si128(b_ptr.add(i + j), states_b[j]);
            }
            i += PAIRS;
        }
        while i < len {
            let input = _mm_loadu_si128(in_ptr.add(i));
            let mut ca = encrypt(&keys, _mm_xor_si128(input, mask_a_v));
            let mut cb = encrypt(&keys, _mm_xor_si128(input, mask_b_v));
            if mmo {
                ca = _mm_xor_si128(ca, input);
                cb = _mm_xor_si128(cb, input);
            }
            _mm_storeu_si128(a_ptr.add(i), ca);
            _mm_storeu_si128(b_ptr.add(i), cb);
            i += 1;
        }
    }
}
