//! NEON 4-way block-parallel ChaCha20 sweeps (aarch64).
//!
//! Same structure as the AVX2 path, at half the width: four independent
//! blocks occupy the four u32 lanes of each `uint32x4_t` state vector, and
//! the 20-round schedule runs once across all of them. Adds, XORs and
//! rotations act lane-wise, so every lane computes exactly the scalar
//! result. NEON has a native per-lane rotate-by-constant idiom via
//! `vsriq_n_u32(vshlq_n_u32(x, n), x, 32 - n)`.

#![allow(unsafe_code)]

use core::arch::aarch64::{
    uint32x4_t, vaddq_u32, vdupq_n_u32, veorq_u32, vld1q_u32, vshlq_n_u32, vsriq_n_u32, vst1q_u32,
};

use pir_field::Block128;

/// Number of blocks processed per vector step (u32 lanes in a `uint32x4_t`).
pub(crate) const WIDTH: usize = 4;

macro_rules! rotl {
    ($x:expr, $n:literal, $m:literal) => {
        vsriq_n_u32::<$m>(vshlq_n_u32::<$n>($x), $x)
    };
}

// SAFETY: caller must ensure NEON is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn quarter_round(state: &mut [uint32x4_t; 16], a: usize, b: usize, c: usize, d: usize) {
    // SAFETY: register-only lane arithmetic; no memory preconditions.
    unsafe {
        state[a] = vaddq_u32(state[a], state[b]);
        state[d] = rotl!(veorq_u32(state[d], state[a]), 16, 16);
        state[c] = vaddq_u32(state[c], state[d]);
        state[b] = rotl!(veorq_u32(state[b], state[c]), 12, 20);
        state[a] = vaddq_u32(state[a], state[b]);
        state[d] = rotl!(veorq_u32(state[d], state[a]), 8, 24);
        state[c] = vaddq_u32(state[c], state[d]);
        state[b] = rotl!(veorq_u32(state[b], state[c]), 7, 25);
    }
}

/// Vectorized `eval_blocks` over a whole-multiple-of-[`WIDTH`] batch.
///
/// Must only be called when the Neon backend passed runtime detection, and
/// with `inputs.len() % WIDTH == 0` (the caller evaluates the remainder with
/// the scalar path).
pub(crate) fn eval_blocks(
    key_high: &[u32; 4],
    nonce: &[u32; 3],
    inputs: &[Block128],
    out: &mut [Block128],
) {
    debug_assert_eq!(inputs.len() % WIDTH, 0);
    debug_assert_eq!(inputs.len(), out.len());
    // SAFETY: caller contract — NEON available (baseline on aarch64).
    unsafe { eval_blocks_impl(key_high, nonce, inputs, out) }
}

#[target_feature(enable = "neon")]
unsafe fn eval_blocks_impl(
    key_high: &[u32; 4],
    nonce: &[u32; 3],
    inputs: &[Block128],
    out: &mut [Block128],
) {
    // SAFETY: NEON is enabled by the caller; Block128 is #[repr(transparent)]
    // over u128, so the word reads at base + 12 + j stay inside `inputs`, and
    // the only stores target local [u32; 4] arrays.
    unsafe {
        let constants: [uint32x4_t; 4] = [
            vdupq_n_u32(0x6170_7865),
            vdupq_n_u32(0x3320_646e),
            vdupq_n_u32(0x7962_2d32),
            vdupq_n_u32(0x6b20_6574),
        ];
        let key_high_v: [uint32x4_t; 4] = [
            vdupq_n_u32(key_high[0]),
            vdupq_n_u32(key_high[1]),
            vdupq_n_u32(key_high[2]),
            vdupq_n_u32(key_high[3]),
        ];
        let tail_v: [uint32x4_t; 4] = [
            vdupq_n_u32(0), // counter
            vdupq_n_u32(nonce[0]),
            vdupq_n_u32(nonce[1]),
            vdupq_n_u32(nonce[2]),
        ];

        // Block128 is #[repr(transparent)] over u128 — each block is four
        // contiguous little-endian u32 words.
        let words = inputs.as_ptr().cast::<u32>();

        for (chunk, out_chunk) in (0..inputs.len() / WIDTH).zip(out.chunks_exact_mut(WIDTH)) {
            let base = chunk * WIDTH * 4;
            // Transpose: vector j holds input word j of the four blocks;
            // base + 3 * 4 + j < inputs.len() * 4.
            let mut input_words = [constants[0]; 4];
            for (j, slot) in input_words.iter_mut().enumerate() {
                let gathered = [
                    *words.add(base + j),
                    *words.add(base + 4 + j),
                    *words.add(base + 8 + j),
                    *words.add(base + 12 + j),
                ];
                *slot = vld1q_u32(gathered.as_ptr());
            }

            let mut state: [uint32x4_t; 16] = [
                constants[0],
                constants[1],
                constants[2],
                constants[3],
                input_words[0],
                input_words[1],
                input_words[2],
                input_words[3],
                key_high_v[0],
                key_high_v[1],
                key_high_v[2],
                key_high_v[3],
                tail_v[0],
                tail_v[1],
                tail_v[2],
                tail_v[3],
            ];
            for _ in 0..10 {
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            // Feed-forward of the initial state; only words 0–3 are emitted.
            let outs = [
                vaddq_u32(state[0], constants[0]),
                vaddq_u32(state[1], constants[1]),
                vaddq_u32(state[2], constants[2]),
                vaddq_u32(state[3], constants[3]),
            ];

            // Transpose back: block j reads lane j of each output vector.
            let mut w = [[0u32; WIDTH]; 4];
            for (vector, lanes) in outs.into_iter().zip(w.iter_mut()) {
                vst1q_u32(lanes.as_mut_ptr(), vector);
            }
            for (j, slot) in out_chunk.iter_mut().enumerate() {
                *slot = Block128::from_halves(
                    (w[0][j] as u64) | ((w[1][j] as u64) << 32),
                    (w[2][j] as u64) | ((w[3][j] as u64) << 32),
                );
            }
        }
    }
}
