//! Per-architecture vectorized PRF sweeps.
//!
//! Each submodule implements the batched entry points of one primitive for
//! one instruction set, bit-identical to the portable scalar code in the
//! primitive's own module (which remains the semantic reference and the only
//! implementation of `Prf::eval_block`). The submodules expose *safe*
//! wrapper functions; their contract is that they are only reached through a
//! [`pir_field::SimdBackend`] value that passed runtime feature detection
//! (`SimdBackend::supported_or_scalar` enforces this at PRF construction),
//! so the `#[target_feature]` internals cannot execute on a host lacking the
//! instructions.
//!
//! Layout mirrors Expander's dual-backend field pattern: one portable entry
//! point per primitive, `*_x86` (AVX2 / AES-NI) and `*_neon` implementations
//! selected behind it at runtime.

#[cfg(target_arch = "x86_64")]
pub(crate) mod aes_x86;
#[cfg(target_arch = "aarch64")]
pub(crate) mod chacha_neon;
#[cfg(target_arch = "x86_64")]
pub(crate) mod chacha_x86;
#[cfg(target_arch = "x86_64")]
pub(crate) mod highway_x86;
#[cfg(target_arch = "x86_64")]
pub(crate) mod sha256_x86;
#[cfg(target_arch = "x86_64")]
pub(crate) mod siphash_x86;
