//! AVX2 HighwayHash-style sweeps.
//!
//! Unlike the other primitives, the HighwayHash-style state is itself four
//! 64-bit lanes per register group — the algorithm was designed for exactly
//! this mapping — so one block occupies one `__m256i` per state group
//! (`v0`, `v1`, `mul0`, `mul1`) and the update/permute/zipper-merge steps
//! become single instructions: `VPMULUDQ` is precisely the scalar
//! `(x & 0xffff_ffff) * (y >> 32)` cross-half multiply, `VPSHUFB` the
//! zipper-merge byte interleave, and `VPERMQ` the lane permutation. Two
//! blocks run interleaved to cover multiply latency.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_loadu_si256, _mm256_mul_epu32, _mm256_permute4x64_epi64,
    _mm256_setr_epi64x, _mm256_setr_epi8, _mm256_shuffle_epi32, _mm256_shuffle_epi8,
    _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
};

use pir_field::Block128;

/// One vectorized state: the four 64-bit lanes of each group.
#[derive(Clone, Copy)]
struct StateVec {
    v0: __m256i,
    v1: __m256i,
    mul0: __m256i,
    mul1: __m256i,
}

/// The key-derived base state, as raw lane arrays.
pub(crate) struct BaseState {
    /// `v0` lanes.
    pub v0: [u64; 4],
    /// `v1` lanes.
    pub v1: [u64; 4],
    /// `mul0` lanes.
    pub mul0: [u64; 4],
    /// `mul1` lanes.
    pub mul1: [u64; 4],
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn zipper_merge(x: __m256i) -> __m256i {
    // Scalar: dest LE bytes = src bytes [3, 1, 4, 0, 6, 2, 7, 5] per u64.
    let mask = _mm256_setr_epi8(
        3, 1, 4, 0, 6, 2, 7, 5, 11, 9, 12, 8, 14, 10, 15, 13, //
        3, 1, 4, 0, 6, 2, 7, 5, 11, 9, 12, 8, 14, 10, 15, 13,
    );
    _mm256_shuffle_epi8(x, mask)
}

/// `(a & 0xffff_ffff) * (b >> 32)` per 64-bit lane — `VPMULUDQ` multiplies
/// the low 32 bits of each lane, so shifting `b` down selects its high half.
// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cross_mul(a: __m256i, b: __m256i) -> __m256i {
    _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b))
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn update(s: &mut StateVec, packet: __m256i) {
    // SAFETY: register-only lane arithmetic; no memory preconditions.
    unsafe {
        s.v1 = _mm256_add_epi64(s.v1, _mm256_add_epi64(packet, s.mul0));
        s.mul0 = _mm256_xor_si256(s.mul0, cross_mul(s.v1, s.v0));
        s.v0 = _mm256_add_epi64(s.v0, s.mul1);
        s.mul1 = _mm256_xor_si256(s.mul1, cross_mul(s.v0, s.v1));
        s.v0 = _mm256_add_epi64(s.v0, zipper_merge(s.v1));
        s.v1 = _mm256_add_epi64(s.v1, zipper_merge(s.v0));
    }
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn permute_and_update(s: &mut StateVec) {
    // Scalar permuted[i] = v0[[2, 3, 0, 1][i]].rotate_left(32): a 64-bit
    // lane swap (imm 0x4e) followed by a 32-bit half swap within each lane.
    // SAFETY: register-only permutes; no memory preconditions.
    unsafe {
        let swapped = _mm256_permute4x64_epi64::<0x4e>(s.v0);
        let permuted = _mm256_shuffle_epi32::<0b10_11_00_01>(swapped);
        update(s, permuted);
    }
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn finalize128(mut s: StateVec) -> (u64, u64) {
    // SAFETY: the only stores target local [u64; 4] arrays — 32 writable
    // bytes each, unaligned stores.
    unsafe {
        for _ in 0..6 {
            permute_and_update(&mut s);
        }
        let mut v0 = [0u64; 4];
        let mut v1 = [0u64; 4];
        let mut mul0 = [0u64; 4];
        let mut mul1 = [0u64; 4];
        _mm256_storeu_si256(v0.as_mut_ptr().cast::<__m256i>(), s.v0);
        _mm256_storeu_si256(v1.as_mut_ptr().cast::<__m256i>(), s.v1);
        _mm256_storeu_si256(mul0.as_mut_ptr().cast::<__m256i>(), s.mul0);
        _mm256_storeu_si256(mul1.as_mut_ptr().cast::<__m256i>(), s.mul1);
        let low = v0[0]
            .wrapping_add(mul0[0])
            .wrapping_add(v1[2])
            .wrapping_add(mul1[2]);
        let high = v0[1]
            .wrapping_add(mul0[1])
            .wrapping_add(v1[3])
            .wrapping_add(mul1[3]);
        (low, high)
    }
}

/// Vectorized `eval_blocks` (any length; one state per block, two blocks
/// interleaved).
///
/// Must only be called when the Avx2 backend passed runtime detection.
pub(crate) fn eval_blocks(
    base: &BaseState,
    t2: u64,
    t3: u64,
    inputs: &[Block128],
    out: &mut [Block128],
) {
    debug_assert_eq!(inputs.len(), out.len());
    // SAFETY: caller contract — AVX2 detected at runtime.
    unsafe { eval_blocks_impl(base, t2, t3, inputs, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn eval_blocks_impl(
    base: &BaseState,
    t2: u64,
    t3: u64,
    inputs: &[Block128],
    out: &mut [Block128],
) {
    // SAFETY: AVX2 is enabled by the caller; the loads read the base state's
    // [u64; 4] arrays — 32 readable bytes each, unaligned loads.
    unsafe {
        let base_vec = StateVec {
            v0: _mm256_loadu_si256(base.v0.as_ptr().cast::<__m256i>()),
            v1: _mm256_loadu_si256(base.v1.as_ptr().cast::<__m256i>()),
            mul0: _mm256_loadu_si256(base.mul0.as_ptr().cast::<__m256i>()),
            mul1: _mm256_loadu_si256(base.mul1.as_ptr().cast::<__m256i>()),
        };
        let packet = |input: Block128| {
            let (low, high) = input.halves();
            _mm256_setr_epi64x(low as i64, high as i64, t2 as i64, t3 as i64)
        };

        let mut input_pairs = inputs.chunks_exact(2);
        let mut output_pairs = out.chunks_exact_mut(2);
        for (pair, slots) in input_pairs.by_ref().zip(output_pairs.by_ref()) {
            let mut s_a = base_vec;
            let mut s_b = base_vec;
            update(&mut s_a, packet(pair[0]));
            update(&mut s_b, packet(pair[1]));
            let (low_a, high_a) = finalize128(s_a);
            let (low_b, high_b) = finalize128(s_b);
            slots[0] = Block128::from_halves(low_a, high_a);
            slots[1] = Block128::from_halves(low_b, high_b);
        }
        for (input, slot) in input_pairs
            .remainder()
            .iter()
            .zip(output_pairs.into_remainder())
        {
            let mut s = base_vec;
            update(&mut s, packet(*input));
            let (low, high) = finalize128(s);
            *slot = Block128::from_halves(low, high);
        }
    }
}
