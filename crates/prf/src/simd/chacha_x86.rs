//! AVX2 8-way block-parallel ChaCha20 sweeps.
//!
//! The scalar PRF runs one 20-round ChaCha20 block function per input with
//! the input occupying key words 0–3. ChaCha has no intra-block parallelism
//! to speak of (the quarter-rounds form one dependency chain), but blocks
//! are fully independent, so the vector path transposes eight inputs into
//! sixteen `__m256i` state vectors — lane `j` of every vector belongs to
//! block `j` — and runs the identical round schedule once. Adds, XORs and
//! shifts act lane-wise, so every lane computes exactly the scalar result.
//!
//! Rotations by 16 and 8 are byte-granular and use `PSHUFB`; 12 and 7 use
//! shift+or.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256i, _mm256_add_epi32, _mm256_or_si256, _mm256_set1_epi32, _mm256_setr_epi32,
    _mm256_setr_epi8, _mm256_shuffle_epi8, _mm256_slli_epi32, _mm256_srli_epi32,
    _mm256_storeu_si256, _mm256_xor_si256,
};

use pir_field::Block128;

/// Number of blocks processed per vector step (u32 lanes in a `__m256i`).
pub(crate) const WIDTH: usize = 8;

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl16(x: __m256i) -> __m256i {
    // Per-u32 left rotation by 16 = swap the two 16-bit halves of each lane.
    let mask = _mm256_setr_epi8(
        2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13, //
        2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
    );
    _mm256_shuffle_epi8(x, mask)
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl8(x: __m256i) -> __m256i {
    // Per-u32 left rotation by 8: dest byte k takes source byte (k + 3) % 4.
    let mask = _mm256_setr_epi8(
        3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14, //
        3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,
    );
    _mm256_shuffle_epi8(x, mask)
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl12(x: __m256i) -> __m256i {
    _mm256_or_si256(_mm256_slli_epi32::<12>(x), _mm256_srli_epi32::<20>(x))
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl7(x: __m256i) -> __m256i {
    _mm256_or_si256(_mm256_slli_epi32::<7>(x), _mm256_srli_epi32::<25>(x))
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn quarter_round(state: &mut [__m256i; 16], a: usize, b: usize, c: usize, d: usize) {
    // SAFETY: register-only lane arithmetic; no memory preconditions.
    unsafe {
        state[a] = _mm256_add_epi32(state[a], state[b]);
        state[d] = rotl16(_mm256_xor_si256(state[d], state[a]));
        state[c] = _mm256_add_epi32(state[c], state[d]);
        state[b] = rotl12(_mm256_xor_si256(state[b], state[c]));
        state[a] = _mm256_add_epi32(state[a], state[b]);
        state[d] = rotl8(_mm256_xor_si256(state[d], state[a]));
        state[c] = _mm256_add_epi32(state[c], state[d]);
        state[b] = rotl7(_mm256_xor_si256(state[b], state[c]));
    }
}

/// Vectorized `eval_blocks` over a whole-multiple-of-[`WIDTH`] batch.
///
/// Must only be called when the Avx2 backend passed runtime detection, and
/// with `inputs.len() % WIDTH == 0` (the caller evaluates the remainder with
/// the scalar path).
pub(crate) fn eval_blocks(
    key_high: &[u32; 4],
    nonce: &[u32; 3],
    inputs: &[Block128],
    out: &mut [Block128],
) {
    debug_assert_eq!(inputs.len() % WIDTH, 0);
    debug_assert_eq!(inputs.len(), out.len());
    // SAFETY: caller contract — AVX2 detected at runtime.
    unsafe { eval_blocks_impl(key_high, nonce, inputs, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn eval_blocks_impl(
    key_high: &[u32; 4],
    nonce: &[u32; 3],
    inputs: &[Block128],
    out: &mut [Block128],
) {
    // SAFETY: AVX2 is enabled by the caller; Block128 is #[repr(transparent)]
    // over u128, so the word reads at base + 28 + j stay inside `inputs`, and
    // the only stores target local [u32; 8] arrays.
    unsafe {
        // The state words that do not depend on the input are the same for every
        // block of the sweep.
        let constants: [__m256i; 4] = [
            _mm256_set1_epi32(0x6170_7865),
            _mm256_set1_epi32(0x3320_646e),
            _mm256_set1_epi32(0x7962_2d32),
            _mm256_set1_epi32(0x6b20_6574_u32 as i32),
        ];
        let key_high_v: [__m256i; 4] = [
            _mm256_set1_epi32(key_high[0] as i32),
            _mm256_set1_epi32(key_high[1] as i32),
            _mm256_set1_epi32(key_high[2] as i32),
            _mm256_set1_epi32(key_high[3] as i32),
        ];
        let tail_v: [__m256i; 4] = [
            _mm256_set1_epi32(0), // counter
            _mm256_set1_epi32(nonce[0] as i32),
            _mm256_set1_epi32(nonce[1] as i32),
            _mm256_set1_epi32(nonce[2] as i32),
        ];

        // Block128 is #[repr(transparent)] over u128 — each block is four
        // contiguous little-endian u32 words.
        let words = inputs.as_ptr().cast::<u32>();

        for (chunk, out_chunk) in (0..inputs.len() / WIDTH).zip(out.chunks_exact_mut(WIDTH)) {
            let base = chunk * WIDTH * 4;
            // Transpose: vector j holds input word j of the eight blocks;
            // base + 7 * 4 + j < inputs.len() * 4.
            let mut input_words = [constants[0]; 4];
            for (j, slot) in input_words.iter_mut().enumerate() {
                *slot = _mm256_setr_epi32(
                    *words.add(base + j) as i32,
                    *words.add(base + 4 + j) as i32,
                    *words.add(base + 8 + j) as i32,
                    *words.add(base + 12 + j) as i32,
                    *words.add(base + 16 + j) as i32,
                    *words.add(base + 20 + j) as i32,
                    *words.add(base + 24 + j) as i32,
                    *words.add(base + 28 + j) as i32,
                );
            }

            let mut state: [__m256i; 16] = [
                constants[0],
                constants[1],
                constants[2],
                constants[3],
                input_words[0],
                input_words[1],
                input_words[2],
                input_words[3],
                key_high_v[0],
                key_high_v[1],
                key_high_v[2],
                key_high_v[3],
                tail_v[0],
                tail_v[1],
                tail_v[2],
                tail_v[3],
            ];
            for _ in 0..10 {
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            // Feed-forward of the initial state; only words 0–3 are emitted.
            let out0 = _mm256_add_epi32(state[0], constants[0]);
            let out1 = _mm256_add_epi32(state[1], constants[1]);
            let out2 = _mm256_add_epi32(state[2], constants[2]);
            let out3 = _mm256_add_epi32(state[3], constants[3]);

            // Transpose back: block j reads lane j of each output vector
            // ([u32; 8] is 32 writable bytes; unaligned store).
            let mut w = [[0u32; WIDTH]; 4];
            for (vector, lanes) in [out0, out1, out2, out3].into_iter().zip(w.iter_mut()) {
                _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), vector);
            }
            for (j, slot) in out_chunk.iter_mut().enumerate() {
                *slot = Block128::from_halves(
                    (w[0][j] as u64) | ((w[1][j] as u64) << 32),
                    (w[2][j] as u64) | ((w[3][j] as u64) << 32),
                );
            }
        }
    }
}
