//! AVX2 8-way multi-buffer HMAC-SHA-256 sweeps.
//!
//! SHA-256's compression function is one long dependency chain, so (as with
//! ChaCha) the vector path parallelizes across messages: eight independent
//! HMAC evaluations run in the eight u32 lanes of each `__m256i`, executing
//! the identical two-compression midstate schedule the scalar `mac_block`
//! uses (one compression for the padded 24-byte message, one for the padded
//! inner digest). All operations are lane-wise adds, rotations and boolean
//! functions, so every lane computes exactly the scalar result.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_andnot_si256, _mm256_or_si256,
    _mm256_set1_epi32, _mm256_setr_epi32, _mm256_setr_epi8, _mm256_shuffle_epi8, _mm256_slli_epi32,
    _mm256_srli_epi32, _mm256_storeu_si256, _mm256_xor_si256,
};

use pir_field::Block128;

use crate::sha256::{INNER_LEN_BITS, K, OUTER_LEN_BITS};

/// Number of independent HMAC evaluations per vector step.
pub(crate) const WIDTH: usize = 8;

/// `rotr!(x, n, 32 - n)` — per-u32 right rotation (both literals spelled out
/// because intrinsic shift counts must be const generics).
macro_rules! rotr {
    ($x:expr, $n:literal, $m:literal) => {
        _mm256_or_si256(_mm256_srli_epi32::<$n>($x), _mm256_slli_epi32::<$m>($x))
    };
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bswap32(x: __m256i) -> __m256i {
    let mask = _mm256_setr_epi8(
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12, //
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
    );
    _mm256_shuffle_epi8(x, mask)
}

/// One SHA-256 compression over eight lanes: `state` is the eight working
/// variables (one vector per variable), `w[0..16]` the prefilled message
/// words; the remaining schedule is expanded in place.
// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[target_feature(enable = "avx2")]
unsafe fn compress8(state: &mut [__m256i; 8], w: &mut [__m256i; 64]) {
    for i in 16..64 {
        let s0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr!(w[i - 15], 7, 25), rotr!(w[i - 15], 18, 14)),
            _mm256_srli_epi32::<3>(w[i - 15]),
        );
        let s1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr!(w[i - 2], 17, 15), rotr!(w[i - 2], 19, 13)),
            _mm256_srli_epi32::<10>(w[i - 2]),
        );
        w[i] = _mm256_add_epi32(
            _mm256_add_epi32(w[i - 16], s0),
            _mm256_add_epi32(w[i - 7], s1),
        );
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr!(e, 6, 26), rotr!(e, 11, 21)),
            rotr!(e, 25, 7),
        );
        // ch = (e & f) ^ (!e & g); andnot computes !a & b.
        let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
        let temp1 = _mm256_add_epi32(
            _mm256_add_epi32(_mm256_add_epi32(h, s1), _mm256_add_epi32(ch, w[i])),
            _mm256_set1_epi32(K[i] as i32),
        );
        let s0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr!(a, 2, 30), rotr!(a, 13, 19)),
            rotr!(a, 22, 10),
        );
        let maj = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
            _mm256_and_si256(b, c),
        );
        let temp2 = _mm256_add_epi32(s0, maj);
        h = g;
        g = f;
        f = e;
        e = _mm256_add_epi32(d, temp1);
        d = c;
        c = b;
        b = a;
        a = _mm256_add_epi32(temp1, temp2);
    }

    state[0] = _mm256_add_epi32(state[0], a);
    state[1] = _mm256_add_epi32(state[1], b);
    state[2] = _mm256_add_epi32(state[2], c);
    state[3] = _mm256_add_epi32(state[3], d);
    state[4] = _mm256_add_epi32(state[4], e);
    state[5] = _mm256_add_epi32(state[5], f);
    state[6] = _mm256_add_epi32(state[6], g);
    state[7] = _mm256_add_epi32(state[7], h);
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn broadcast_state(words: &[u32; 8]) -> [__m256i; 8] {
    let mut out = [_mm256_set1_epi32(0); 8];
    for (slot, word) in out.iter_mut().zip(words) {
        *slot = _mm256_set1_epi32(*word as i32);
    }
    out
}

/// Vectorized `eval_blocks` over a whole-multiple-of-[`WIDTH`] batch.
///
/// Must only be called when the Avx2 backend passed runtime detection, and
/// with `inputs.len() % WIDTH == 0` (the caller evaluates the remainder with
/// the scalar path).
pub(crate) fn eval_blocks(
    inner_midstate: &[u32; 8],
    outer_midstate: &[u32; 8],
    inputs: &[Block128],
    tweak: u64,
    out: &mut [Block128],
) {
    debug_assert_eq!(inputs.len() % WIDTH, 0);
    debug_assert_eq!(inputs.len(), out.len());
    // SAFETY: caller contract — AVX2 detected at runtime.
    unsafe { eval_blocks_impl(inner_midstate, outer_midstate, inputs, tweak, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn eval_blocks_impl(
    inner_midstate: &[u32; 8],
    outer_midstate: &[u32; 8],
    inputs: &[Block128],
    tweak: u64,
    out: &mut [Block128],
) {
    // SAFETY: AVX2 is enabled by the caller; Block128 is #[repr(transparent)]
    // over u128, so the word reads at base + 28 + j stay inside `inputs`, and
    // the only stores target local [u32; 8] arrays.
    unsafe {
        let zero = _mm256_set1_epi32(0);
        let pad_word = _mm256_set1_epi32(0x8000_0000_u32 as i32);
        // Message words 4–5 (the tweak) and 14–15 (the bit length) are the same
        // for every block; as big-endian words they are byte-swapped u32s.
        let w4 = _mm256_set1_epi32((tweak as u32).swap_bytes() as i32);
        let w5 = _mm256_set1_epi32(((tweak >> 32) as u32).swap_bytes() as i32);
        let inner_len_hi = _mm256_set1_epi32(((INNER_LEN_BITS >> 32) as u32) as i32);
        let inner_len_lo = _mm256_set1_epi32((INNER_LEN_BITS as u32) as i32);
        let outer_len_hi = _mm256_set1_epi32(((OUTER_LEN_BITS >> 32) as u32) as i32);
        let outer_len_lo = _mm256_set1_epi32((OUTER_LEN_BITS as u32) as i32);

        // Block128 is #[repr(transparent)] over u128 — each block is four
        // contiguous little-endian u32 words.
        let words = inputs.as_ptr().cast::<u32>();

        for (chunk, out_chunk) in (0..inputs.len() / WIDTH).zip(out.chunks_exact_mut(WIDTH)) {
            let base = chunk * WIDTH * 4;
            let mut w = [zero; 64];
            // Words 0–3: the input block's bytes read big-endian — a transpose
            // of the little-endian u32 words followed by a byte swap
            // (base + 7 * 4 + j < inputs.len() * 4).
            #[allow(clippy::needless_range_loop)] // j offsets `words` too, not just `w`
            for j in 0..4 {
                let gathered = _mm256_setr_epi32(
                    *words.add(base + j) as i32,
                    *words.add(base + 4 + j) as i32,
                    *words.add(base + 8 + j) as i32,
                    *words.add(base + 12 + j) as i32,
                    *words.add(base + 16 + j) as i32,
                    *words.add(base + 20 + j) as i32,
                    *words.add(base + 24 + j) as i32,
                    *words.add(base + 28 + j) as i32,
                );
                w[j] = bswap32(gathered);
            }
            w[4] = w4;
            w[5] = w5;
            w[6] = pad_word; // 0x80 directly after the 24-byte message
            w[14] = inner_len_hi;
            w[15] = inner_len_lo;

            let mut state = broadcast_state(inner_midstate);
            compress8(&mut state, &mut w);

            // Outer block: the 32-byte inner digest is written big-endian and
            // re-read big-endian, so its words carry over untouched.
            let mut w = [zero; 64];
            w[..8].copy_from_slice(&state);
            w[8] = pad_word;
            w[14] = outer_len_hi;
            w[15] = outer_len_lo;

            let mut state = broadcast_state(outer_midstate);
            compress8(&mut state, &mut w);

            // The PRF output is the first four state words serialized big-endian
            // then reinterpreted as a little-endian u128: byte-swap each word
            // and transpose back per block.
            let mut lanes = [[0u32; WIDTH]; 4];
            for (slot, vector) in lanes.iter_mut().zip(state.iter().take(4)) {
                _mm256_storeu_si256(slot.as_mut_ptr().cast::<__m256i>(), bswap32(*vector));
            }
            for (j, slot) in out_chunk.iter_mut().enumerate() {
                *slot = Block128::from_halves(
                    (lanes[0][j] as u64) | ((lanes[1][j] as u64) << 32),
                    (lanes[2][j] as u64) | ((lanes[3][j] as u64) << 32),
                );
            }
        }
    }
}
