//! AVX2 4-state SipHash-2-4 sweeps.
//!
//! The scalar batched paths already interleave four independent SipHash
//! states (two inputs × the low/high output-half keys) to expose ILP; the
//! vector path packs those same four states into the four 64-bit lanes of
//! one set of `__m256i` registers — lane layout `[input0·low-key,
//! input0·high-key, input1·low-key, input1·high-key]` — and runs one
//! `SipRound` per vector instruction group instead of four scalar chains.
//! The message word differs per lane (inputs differ, keys don't), so each
//! absorbed word is a `[m0, m0, m1, m1]` vector.
//!
//! Rotations by 32 use a lane shuffle, 16 a byte shuffle, the rest shift+or.
//! Adds, XORs and rotations act lane-wise, so every lane computes exactly
//! the scalar `sip_round` sequence.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_or_si256, _mm256_set1_epi64x, _mm256_setr_epi64x,
    _mm256_setr_epi8, _mm256_shuffle_epi32, _mm256_shuffle_epi8, _mm256_slli_epi64,
    _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
};

use pir_field::Block128;

/// One vectorized SipHash state: `v0..v3` for four independent instances.
#[derive(Clone, Copy)]
struct SipVec {
    v0: __m256i,
    v1: __m256i,
    v2: __m256i,
    v3: __m256i,
}

/// The padded final message word of the PRF's fixed 24-byte message shape.
const SIP_FINAL_WORD_24: u64 = 24u64 << 56;

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl32(x: __m256i) -> __m256i {
    // Swap the 32-bit halves of each 64-bit lane.
    _mm256_shuffle_epi32::<0b10_11_00_01>(x)
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl16(x: __m256i) -> __m256i {
    // Per-u64 left rotation by 16 = byte rotation by 2 within each lane.
    let mask = _mm256_setr_epi8(
        6, 7, 0, 1, 2, 3, 4, 5, 14, 15, 8, 9, 10, 11, 12, 13, //
        6, 7, 0, 1, 2, 3, 4, 5, 14, 15, 8, 9, 10, 11, 12, 13,
    );
    _mm256_shuffle_epi8(x, mask)
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl13(x: __m256i) -> __m256i {
    _mm256_or_si256(_mm256_slli_epi64::<13>(x), _mm256_srli_epi64::<51>(x))
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl17(x: __m256i) -> __m256i {
    _mm256_or_si256(_mm256_slli_epi64::<17>(x), _mm256_srli_epi64::<47>(x))
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn rotl21(x: __m256i) -> __m256i {
    _mm256_or_si256(_mm256_slli_epi64::<21>(x), _mm256_srli_epi64::<43>(x))
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sip_round(s: &mut SipVec) {
    // SAFETY: register-only lane arithmetic; no memory preconditions.
    unsafe {
        s.v0 = _mm256_add_epi64(s.v0, s.v1);
        s.v1 = rotl13(s.v1);
        s.v1 = _mm256_xor_si256(s.v1, s.v0);
        s.v0 = rotl32(s.v0);
        s.v2 = _mm256_add_epi64(s.v2, s.v3);
        s.v3 = rotl16(s.v3);
        s.v3 = _mm256_xor_si256(s.v3, s.v2);
        s.v0 = _mm256_add_epi64(s.v0, s.v3);
        s.v3 = rotl21(s.v3);
        s.v3 = _mm256_xor_si256(s.v3, s.v0);
        s.v2 = _mm256_add_epi64(s.v2, s.v1);
        s.v1 = rotl17(s.v1);
        s.v1 = _mm256_xor_si256(s.v1, s.v2);
        s.v2 = rotl32(s.v2);
    }
}

/// Absorb one message word: `v3 ^= m; 2×SipRound; v0 ^= m`.
// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn absorb(s: &mut SipVec, m: __m256i) {
    // SAFETY: register-only lane arithmetic; no memory preconditions.
    unsafe {
        s.v3 = _mm256_xor_si256(s.v3, m);
        sip_round(s);
        sip_round(s);
        s.v0 = _mm256_xor_si256(s.v0, m);
    }
}

/// Finalize: `v2 ^= 0xff; 4×SipRound; v0 ^ v1 ^ v2 ^ v3` per lane.
// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn finish(mut s: SipVec) -> [u64; 4] {
    // SAFETY: the only store targets a local [u64; 4] — 32 writable bytes,
    // unaligned store.
    unsafe {
        s.v2 = _mm256_xor_si256(s.v2, _mm256_set1_epi64x(0xff));
        for _ in 0..4 {
            sip_round(&mut s);
        }
        let folded = _mm256_xor_si256(_mm256_xor_si256(s.v0, s.v1), _mm256_xor_si256(s.v2, s.v3));
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), folded);
        lanes
    }
}

/// The key-derived initial state for lanes `[low, high, low, high]`.
// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[target_feature(enable = "avx2")]
unsafe fn init_state(low_key: (u64, u64), high_key: (u64, u64)) -> SipVec {
    let splat2 =
        |low: u64, high: u64| _mm256_setr_epi64x(low as i64, high as i64, low as i64, high as i64);
    SipVec {
        v0: splat2(
            low_key.0 ^ 0x736f_6d65_7073_6575,
            high_key.0 ^ 0x736f_6d65_7073_6575,
        ),
        v1: splat2(
            low_key.1 ^ 0x646f_7261_6e64_6f6d,
            high_key.1 ^ 0x646f_7261_6e64_6f6d,
        ),
        v2: splat2(
            low_key.0 ^ 0x6c79_6765_6e65_7261,
            high_key.0 ^ 0x6c79_6765_6e65_7261,
        ),
        v3: splat2(
            low_key.1 ^ 0x7465_6462_7974_6573,
            high_key.1 ^ 0x7465_6462_7974_6573,
        ),
    }
}

/// A message-word vector for the lane layout: `[m_a, m_a, m_b, m_b]`.
// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn word_pair(m_a: u64, m_b: u64) -> __m256i {
    _mm256_setr_epi64x(m_a as i64, m_a as i64, m_b as i64, m_b as i64)
}

/// Vectorized single-tweak `eval_blocks` over an even-length batch.
///
/// Must only be called when the Avx2 backend passed runtime detection, and
/// with `inputs.len() % 2 == 0` (the caller evaluates the remainder with the
/// scalar path).
pub(crate) fn eval_blocks(
    low_key: (u64, u64),
    high_key: (u64, u64),
    inputs: &[Block128],
    tweak: u64,
    out: &mut [Block128],
) {
    debug_assert_eq!(inputs.len() % 2, 0);
    debug_assert_eq!(inputs.len(), out.len());
    // SAFETY: caller contract — AVX2 detected at runtime.
    unsafe { eval_blocks_impl(low_key, high_key, inputs, tweak, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn eval_blocks_impl(
    low_key: (u64, u64),
    high_key: (u64, u64),
    inputs: &[Block128],
    tweak: u64,
    out: &mut [Block128],
) {
    // SAFETY: AVX2 is enabled by the caller; all operations are register-only
    // or stores into local arrays.
    unsafe {
        let base = init_state(low_key, high_key);
        let tweak_v = _mm256_set1_epi64x(tweak as i64);
        let final_v = _mm256_set1_epi64x(SIP_FINAL_WORD_24 as i64);
        for (pair, slots) in inputs.chunks_exact(2).zip(out.chunks_exact_mut(2)) {
            let (a0, a1) = pair[0].halves();
            let (b0, b1) = pair[1].halves();
            let mut s = base;
            absorb(&mut s, word_pair(a0, b0));
            absorb(&mut s, word_pair(a1, b1));
            absorb(&mut s, tweak_v);
            absorb(&mut s, final_v);
            let lanes = finish(s);
            slots[0] = Block128::from_halves(lanes[0], lanes[1]);
            slots[1] = Block128::from_halves(lanes[2], lanes[3]);
        }
    }
}

/// Vectorized paired-tweak GGM sweep (optionally with the Matyas–Meyer–Oseas
/// feed-forward) over an even-length batch.
///
/// Mirrors the scalar prefix-sharing: the input-dependent first two words
/// are absorbed once, then the state forks for the two child tweaks.
///
/// Must only be called when the Avx2 backend passed runtime detection, and
/// with `inputs.len() % 2 == 0`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pair_sweep(
    low_key: (u64, u64),
    high_key: (u64, u64),
    inputs: &[Block128],
    tweak_a: u64,
    tweak_b: u64,
    out_a: &mut [Block128],
    out_b: &mut [Block128],
    mmo: bool,
) {
    debug_assert_eq!(inputs.len() % 2, 0);
    debug_assert_eq!(inputs.len(), out_a.len());
    debug_assert_eq!(inputs.len(), out_b.len());
    // SAFETY: caller contract — AVX2 detected at runtime.
    unsafe {
        pair_sweep_impl(
            low_key, high_key, inputs, tweak_a, tweak_b, out_a, out_b, mmo,
        )
    }
}

// SAFETY: caller must ensure AVX2 is available (`#[target_feature]`).
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn pair_sweep_impl(
    low_key: (u64, u64),
    high_key: (u64, u64),
    inputs: &[Block128],
    tweak_a: u64,
    tweak_b: u64,
    out_a: &mut [Block128],
    out_b: &mut [Block128],
    mmo: bool,
) {
    // SAFETY: AVX2 is enabled by the caller; all operations are register-only
    // or stores into local arrays.
    unsafe {
        let base = init_state(low_key, high_key);
        let tweak_a_v = _mm256_set1_epi64x(tweak_a as i64);
        let tweak_b_v = _mm256_set1_epi64x(tweak_b as i64);
        let final_v = _mm256_set1_epi64x(SIP_FINAL_WORD_24 as i64);
        let feed = (mmo as u64).wrapping_neg();
        for (i, pair) in inputs.chunks_exact(2).enumerate() {
            let (a0, a1) = pair[0].halves();
            let (b0, b1) = pair[1].halves();
            // Input-dependent prefix, shared by both child tweaks.
            let mut prefix = base;
            absorb(&mut prefix, word_pair(a0, b0));
            absorb(&mut prefix, word_pair(a1, b1));
            // Fork per child tweak.
            let mut s_a = prefix;
            absorb(&mut s_a, tweak_a_v);
            absorb(&mut s_a, final_v);
            let mut s_b = prefix;
            absorb(&mut s_b, tweak_b_v);
            absorb(&mut s_b, final_v);
            let lanes_a = finish(s_a);
            let lanes_b = finish(s_b);
            out_a[2 * i] =
                Block128::from_halves(lanes_a[0] ^ (a0 & feed), lanes_a[1] ^ (a1 & feed));
            out_a[2 * i + 1] =
                Block128::from_halves(lanes_a[2] ^ (b0 & feed), lanes_a[3] ^ (b1 & feed));
            out_b[2 * i] =
                Block128::from_halves(lanes_b[0] ^ (a0 & feed), lanes_b[1] ^ (a1 & feed));
            out_b[2 * i + 1] =
                Block128::from_halves(lanes_b[2] ^ (b0 & feed), lanes_b[3] ^ (b1 & feed));
        }
    }
}
