//! A PRF decorator that counts invocations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pir_field::Block128;

use crate::{Prf, PrfKind};

/// Wraps any [`Prf`] and counts how many blocks it has evaluated.
///
/// The count is the "number of PRFs evaluated" metric of the paper's Figure 6
/// and also feeds the GPU cost model (PRF evaluations dominate kernel compute
/// time). Counting uses a relaxed atomic so concurrent simulated threads can
/// share one instance.
pub struct CountingPrf {
    inner: Arc<dyn Prf>,
    calls: AtomicU64,
}

impl CountingPrf {
    /// Wrap an existing PRF.
    #[must_use]
    pub fn new(inner: Arc<dyn Prf>) -> Self {
        Self {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of PRF block evaluations performed so far.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Reset the counter to zero (e.g. between benchmark iterations).
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// Record `n` block evaluations with a single atomic add.
    ///
    /// This is the batched-counting path used by [`Prf::eval_blocks`]: a
    /// frontier expansion of `n` seeds performs one read-modify-write instead
    /// of `n`, so counted runs no longer serialize every simulated thread on
    /// this counter.
    pub fn record_many(&self, n: u64) {
        self.calls.fetch_add(n, Ordering::Relaxed);
    }

    /// Access the wrapped PRF.
    #[must_use]
    pub fn inner(&self) -> &Arc<dyn Prf> {
        &self.inner
    }
}

impl Prf for CountingPrf {
    fn kind(&self) -> PrfKind {
        self.inner.kind()
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.eval_block(input, tweak)
    }

    fn eval_blocks(&self, inputs: &[Block128], tweak: u64, out: &mut [Block128]) {
        self.record_many(inputs.len() as u64);
        self.inner.eval_blocks(inputs, tweak, out);
    }

    fn eval_blocks_pair(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        self.record_many(2 * inputs.len() as u64);
        self.inner
            .eval_blocks_pair(inputs, tweak_a, tweak_b, out_a, out_b);
    }

    fn expand_blocks_mmo(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        self.record_many(2 * inputs.len() as u64);
        self.inner
            .expand_blocks_mmo(inputs, tweak_a, tweak_b, out_a, out_b);
    }

    fn call_count(&self) -> Option<u64> {
        Some(self.calls())
    }

    fn backend_label(&self) -> &'static str {
        self.inner.backend_label()
    }
}

impl std::fmt::Debug for CountingPrf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingPrf")
            .field("kind", &self.inner.kind())
            .field("calls", &self.calls())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_prf;

    #[test]
    fn counts_and_resets() {
        let counting = CountingPrf::new(build_prf(PrfKind::SipHash));
        assert_eq!(counting.calls(), 0);
        assert_eq!(counting.call_count(), Some(0));
        for i in 0..10 {
            let _ = counting.eval_block(Block128::from_u128(i), 0);
        }
        assert_eq!(counting.calls(), 10);
        counting.reset();
        assert_eq!(counting.calls(), 0);
    }

    #[test]
    fn output_matches_inner_prf() {
        let inner = build_prf(PrfKind::Chacha20);
        let counting = CountingPrf::new(inner.clone());
        let x = Block128::from_u128(77);
        assert_eq!(counting.eval_block(x, 5), inner.eval_block(x, 5));
        assert_eq!(counting.kind(), PrfKind::Chacha20);
    }

    /// The batched counter path must agree with the scalar path: counting n
    /// blocks via `eval_blocks` equals n scalar `eval_block` calls, and the
    /// outputs are bit-identical.
    #[test]
    fn batched_counts_match_scalar_path() {
        for kind in crate::PrfKind::ALL {
            let scalar = CountingPrf::new(build_prf(kind));
            let batched = CountingPrf::new(build_prf(kind));
            let inputs: Vec<Block128> = (0..33u128).map(Block128::from_u128).collect();

            let scalar_out: Vec<Block128> =
                inputs.iter().map(|x| scalar.eval_block(*x, 5)).collect();
            let mut batched_out = vec![Block128::ZERO; inputs.len()];
            batched.eval_blocks(&inputs, 5, &mut batched_out);

            assert_eq!(scalar_out, batched_out, "{kind} outputs must match");
            assert_eq!(scalar.calls(), 33, "{kind} scalar count");
            assert_eq!(batched.calls(), 33, "{kind} batched count");
        }
    }

    #[test]
    fn record_many_adds_once() {
        let counting = CountingPrf::new(build_prf(PrfKind::SipHash));
        counting.record_many(17);
        counting.record_many(3);
        assert_eq!(counting.calls(), 20);
    }

    #[test]
    fn counting_is_thread_safe() {
        let counting = Arc::new(CountingPrf::new(build_prf(PrfKind::SipHash)));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let prf = Arc::clone(&counting);
                scope.spawn(move || {
                    for i in 0..100u128 {
                        let _ = prf.eval_block(Block128::from_u128(i + t), 0);
                    }
                });
            }
        });
        assert_eq!(counting.calls(), 400);
    }
}
