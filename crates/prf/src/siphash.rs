//! SipHash-2-4 used as a lightweight PRF.
//!
//! SipHash is the fastest PRF the paper evaluates (Table 5: ~7.7× the AES
//! throughput on a V100) but, as the paper notes, it is a 64-bit keyed hash
//! designed for hash-flooding protection rather than a standard cryptographic
//! PRF, so its security margin for PIR is weaker. The 128-bit PRF output here
//! is produced by two domain-separated SipHash-2-4 invocations.

use pir_field::Block128;

use crate::{Prf, PrfKind};

/// SipHash-2-4 state.
#[derive(Clone, Copy)]
struct SipState {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
}

#[inline]
fn sip_round(state: &mut SipState) {
    state.v0 = state.v0.wrapping_add(state.v1);
    state.v1 = state.v1.rotate_left(13);
    state.v1 ^= state.v0;
    state.v0 = state.v0.rotate_left(32);
    state.v2 = state.v2.wrapping_add(state.v3);
    state.v3 = state.v3.rotate_left(16);
    state.v3 ^= state.v2;
    state.v0 = state.v0.wrapping_add(state.v3);
    state.v3 = state.v3.rotate_left(21);
    state.v3 ^= state.v0;
    state.v2 = state.v2.wrapping_add(state.v1);
    state.v1 = state.v1.rotate_left(17);
    state.v1 ^= state.v2;
    state.v2 = state.v2.rotate_left(32);
}

/// Compute SipHash-2-4 of `message` under the 128-bit key `(k0, k1)`.
#[must_use]
pub fn siphash24(k0: u64, k1: u64, message: &[u8]) -> u64 {
    let mut state = SipState {
        v0: k0 ^ 0x736f_6d65_7073_6575,
        v1: k1 ^ 0x646f_7261_6e64_6f6d,
        v2: k0 ^ 0x6c79_6765_6e65_7261,
        v3: k1 ^ 0x7465_6462_7974_6573,
    };

    let len = message.len();
    let mut chunks = message.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        state.v3 ^= m;
        sip_round(&mut state);
        sip_round(&mut state);
        state.v0 ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let remainder = chunks.remainder();
    let mut last = (len as u64 & 0xff) << 56;
    for (i, byte) in remainder.iter().enumerate() {
        last |= (*byte as u64) << (8 * i);
    }
    state.v3 ^= last;
    sip_round(&mut state);
    sip_round(&mut state);
    state.v0 ^= last;

    state.v2 ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut state);
    }
    state.v0 ^ state.v1 ^ state.v2 ^ state.v3
}

/// SipHash-2-4 based PRF with 128-bit output.
pub struct SipHashPrf {
    k0: u64,
    k1: u64,
}

impl SipHashPrf {
    /// Build a PRF with an explicit 128-bit key split into two 64-bit halves.
    #[must_use]
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Build a PRF with the crate's fixed public key.
    #[must_use]
    pub fn with_fixed_key() -> Self {
        Self::new(0x6770_7570_6972_5f73, 0x6970_6861_7368_5f6b)
    }
}

impl Prf for SipHashPrf {
    fn kind(&self) -> PrfKind {
        PrfKind::SipHash
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        let mut message = [0u8; 24];
        message[..16].copy_from_slice(&input.to_le_bytes());
        message[16..].copy_from_slice(&tweak.to_le_bytes());
        let low = siphash24(self.k0, self.k1, &message);
        let high = siphash24(
            self.k0 ^ 0x6868_6868_6868_6868,
            self.k1.rotate_left(17),
            &message,
        );
        Block128::from_halves(low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper / reference implementation:
    /// key = 00 01 02 ... 0f, messages are 0..len prefixes of 00 01 02 ...
    #[test]
    fn reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let message: Vec<u8> = (0u8..15).collect();

        // vectors_sip64 from the reference implementation (first 3 entries).
        let expected: [u64; 3] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
        ];
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(k0, k1, &message[..len]),
                *want,
                "length {len} mismatch"
            );
        }
    }

    #[test]
    fn prf_properties() {
        let prf = SipHashPrf::with_fixed_key();
        let x = Block128::from_u128(0xfeed);
        assert_eq!(prf.eval_block(x, 9), prf.eval_block(x, 9));
        assert_ne!(prf.eval_block(x, 9), prf.eval_block(x, 10));
        assert_ne!(
            prf.eval_block(x, 9),
            prf.eval_block(Block128::from_u128(0xfeee), 9)
        );
        assert_eq!(prf.kind(), PrfKind::SipHash);
    }

    #[test]
    fn output_halves_are_independent() {
        // The two SipHash calls use different keys, so low != high in general.
        let prf = SipHashPrf::with_fixed_key();
        let out = prf.eval_block(Block128::from_u128(1), 0);
        let (low, high) = out.halves();
        assert_ne!(low, high);
    }
}
