//! SipHash-2-4 used as a lightweight PRF.
//!
//! SipHash is the fastest PRF the paper evaluates (Table 5: ~7.7× the AES
//! throughput on a V100) but, as the paper notes, it is a 64-bit keyed hash
//! designed for hash-flooding protection rather than a standard cryptographic
//! PRF, so its security margin for PIR is weaker. The 128-bit PRF output here
//! is produced by two domain-separated SipHash-2-4 invocations.

use pir_field::{Block128, SimdBackend};

use crate::{Prf, PrfKind};

/// SipHash-2-4 state.
#[derive(Clone, Copy)]
struct SipState {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
}

#[inline(always)]
fn sip_round(state: &mut SipState) {
    state.v0 = state.v0.wrapping_add(state.v1);
    state.v1 = state.v1.rotate_left(13);
    state.v1 ^= state.v0;
    state.v0 = state.v0.rotate_left(32);
    state.v2 = state.v2.wrapping_add(state.v3);
    state.v3 = state.v3.rotate_left(16);
    state.v3 ^= state.v2;
    state.v0 = state.v0.wrapping_add(state.v3);
    state.v3 = state.v3.rotate_left(21);
    state.v3 ^= state.v0;
    state.v2 = state.v2.wrapping_add(state.v1);
    state.v1 = state.v1.rotate_left(17);
    state.v1 ^= state.v2;
    state.v2 = state.v2.rotate_left(32);
}

/// Compute SipHash-2-4 of `message` under the 128-bit key `(k0, k1)`.
#[must_use]
pub fn siphash24(k0: u64, k1: u64, message: &[u8]) -> u64 {
    let mut state = SipState {
        v0: k0 ^ 0x736f_6d65_7073_6575,
        v1: k1 ^ 0x646f_7261_6e64_6f6d,
        v2: k0 ^ 0x6c79_6765_6e65_7261,
        v3: k1 ^ 0x7465_6462_7974_6573,
    };

    let len = message.len();
    let mut chunks = message.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        state.v3 ^= m;
        sip_round(&mut state);
        sip_round(&mut state);
        state.v0 ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let remainder = chunks.remainder();
    let mut last = (len as u64 & 0xff) << 56;
    for (i, byte) in remainder.iter().enumerate() {
        last |= (*byte as u64) << (8 * i);
    }
    state.v3 ^= last;
    sip_round(&mut state);
    sip_round(&mut state);
    state.v0 ^= last;

    state.v2 ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut state);
    }
    state.v0 ^ state.v1 ^ state.v2 ^ state.v3
}

/// SipHash-2-4 based PRF with 128-bit output.
pub struct SipHashPrf {
    k0: u64,
    k1: u64,
    backend: SimdBackend,
}

impl SipHashPrf {
    /// Build a PRF with an explicit 128-bit key split into two 64-bit halves.
    #[must_use]
    pub fn new(k0: u64, k1: u64) -> Self {
        Self {
            k0,
            k1,
            backend: SimdBackend::Scalar,
        }
    }

    /// Build a PRF with the crate's fixed public key.
    #[must_use]
    pub fn with_fixed_key() -> Self {
        Self::new(0x6770_7570_6972_5f73, 0x6970_6861_7368_5f6b)
    }

    /// Pin the batched sweeps to a SIMD backend (unsupported requests fall
    /// back to scalar). Only the x86_64 backend vectorizes SipHash; NEON
    /// hosts use the scalar interleaved path.
    #[must_use]
    pub fn with_backend(mut self, backend: SimdBackend) -> Self {
        self.backend = match backend.supported_or_scalar() {
            SimdBackend::Avx2 => SimdBackend::Avx2,
            _ => SimdBackend::Scalar,
        };
        self
    }
}

#[inline(always)]
fn sip_init(k0: u64, k1: u64) -> SipState {
    SipState {
        v0: k0 ^ 0x736f_6d65_7073_6575,
        v1: k1 ^ 0x646f_7261_6e64_6f6d,
        v2: k0 ^ 0x6c79_6765_6e65_7261,
        v3: k1 ^ 0x7465_6462_7974_6573,
    }
}

/// The padded final message word of a 24-byte message: no remaining bytes,
/// only the length in the top byte.
const SIP_FINAL_WORD_24: u64 = 24u64 << 56;

/// SipHash-2-4 over exactly three 8-byte message words, the only message
/// shape the PRF ever hashes. Bit-identical to [`siphash24`] on the
/// corresponding 24-byte little-endian buffer, but with no buffer assembly or
/// chunking — the reference the interleaved production paths are tested
/// against.
#[cfg(test)]
fn siphash24_words(k0: u64, k1: u64, m0: u64, m1: u64, m2: u64) -> u64 {
    let mut state = sip_init(k0, k1);
    for m in [m0, m1, m2, SIP_FINAL_WORD_24] {
        state.v3 ^= m;
        sip_round(&mut state);
        sip_round(&mut state);
        state.v0 ^= m;
    }
    state.v2 ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut state);
    }
    state.v0 ^ state.v1 ^ state.v2 ^ state.v3
}

/// Two SipHash-2-4 instances over the same three message words under two
/// different keys, advanced in lockstep.
///
/// The PRF's 128-bit output is two independent SipHash chains; computing them
/// in one interleaved pass exposes the two dependency chains to the CPU
/// scheduler side by side (each `sip_round` is a serial chain of
/// add/rotate/xor steps, so a single chain leaves most ALU ports idle).
/// Bit-identical to two [`siphash24_words`] calls.
#[inline]
fn siphash24_words_x2(
    (k0a, k1a): (u64, u64),
    (k0b, k1b): (u64, u64),
    m0: u64,
    m1: u64,
    m2: u64,
) -> (u64, u64) {
    let mut a = sip_init(k0a, k1a);
    let mut b = sip_init(k0b, k1b);
    for m in [m0, m1, m2, SIP_FINAL_WORD_24] {
        a.v3 ^= m;
        b.v3 ^= m;
        sip_round(&mut a);
        sip_round(&mut b);
        sip_round(&mut a);
        sip_round(&mut b);
        a.v0 ^= m;
        b.v0 ^= m;
    }
    a.v2 ^= 0xff;
    b.v2 ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut a);
        sip_round(&mut b);
    }
    (a.v0 ^ a.v1 ^ a.v2 ^ a.v3, b.v0 ^ b.v1 ^ b.v2 ^ b.v3)
}

/// The SipHash-2-4 state after absorbing the first two message words
/// (`m0`, `m1`) of a 24-byte message — everything *before* the tweak word.
///
/// A GGM node expansion evaluates the PRF on one seed under two tweaks; the
/// tweak is the third message word, so this input-dependent prefix (started
/// from the key-derived `base` state, which batched sweeps hoist out of
/// their loop) is shared by both children and computed once.
#[inline(always)]
fn sip_prefix(base: SipState, m0: u64, m1: u64) -> SipState {
    let mut state = base;
    for m in [m0, m1] {
        state.v3 ^= m;
        sip_round(&mut state);
        sip_round(&mut state);
        state.v0 ^= m;
    }
    state
}

/// Finish four prefix-shared SipHash-2-4 instances in lockstep: the low/high
/// key prefixes of one seed, each forked for the two child tweaks.
///
/// Returns `(low_a, high_a, low_b, high_b)` for tweaks `a` and `b`;
/// bit-identical to four [`siphash24_words`] calls that re-absorbed the
/// prefix from scratch.
#[inline]
fn sip_fork_x4(
    prefix_low: SipState,
    prefix_high: SipState,
    tweak_a: u64,
    tweak_b: u64,
) -> (u64, u64, u64, u64) {
    let mut s = [prefix_low, prefix_high, prefix_low, prefix_high];
    let words = [(tweak_a, tweak_b), (SIP_FINAL_WORD_24, SIP_FINAL_WORD_24)];
    for (wa, wb) in words {
        s[0].v3 ^= wa;
        s[1].v3 ^= wa;
        s[2].v3 ^= wb;
        s[3].v3 ^= wb;
        for state in &mut s {
            sip_round(state);
        }
        for state in &mut s {
            sip_round(state);
        }
        s[0].v0 ^= wa;
        s[1].v0 ^= wa;
        s[2].v0 ^= wb;
        s[3].v0 ^= wb;
    }
    for state in &mut s {
        state.v2 ^= 0xff;
    }
    for _ in 0..4 {
        for state in &mut s {
            sip_round(state);
        }
    }
    (
        s[0].v0 ^ s[0].v1 ^ s[0].v2 ^ s[0].v3,
        s[1].v0 ^ s[1].v1 ^ s[1].v2 ^ s[1].v3,
        s[2].v0 ^ s[2].v1 ^ s[2].v2 ^ s[2].v3,
        s[3].v0 ^ s[3].v1 ^ s[3].v2 ^ s[3].v3,
    )
}

/// Four SipHash-2-4 instances advanced in lockstep: two PRF blocks (messages
/// `ma`/`mb` plus the shared tweak) times the two output-half keys.
///
/// Batched sweeps pair up adjacent seeds so the scheduler sees four
/// independent add/rotate/xor chains, enough to saturate the ALU ports that
/// a single chain leaves idle. Returns `(low_a, high_a, low_b, high_b)`;
/// bit-identical to four [`siphash24_words`] calls.
#[inline]
fn siphash24_words_x4(
    low_key: (u64, u64),
    high_key: (u64, u64),
    ma: (u64, u64),
    mb: (u64, u64),
    tweak: u64,
) -> (u64, u64, u64, u64) {
    let mut s = [
        sip_init(low_key.0, low_key.1),
        sip_init(high_key.0, high_key.1),
        sip_init(low_key.0, low_key.1),
        sip_init(high_key.0, high_key.1),
    ];
    let words = [
        (ma.0, mb.0),
        (ma.1, mb.1),
        (tweak, tweak),
        (SIP_FINAL_WORD_24, SIP_FINAL_WORD_24),
    ];
    for (wa, wb) in words {
        s[0].v3 ^= wa;
        s[1].v3 ^= wa;
        s[2].v3 ^= wb;
        s[3].v3 ^= wb;
        for state in &mut s {
            sip_round(state);
        }
        for state in &mut s {
            sip_round(state);
        }
        s[0].v0 ^= wa;
        s[1].v0 ^= wa;
        s[2].v0 ^= wb;
        s[3].v0 ^= wb;
    }
    for state in &mut s {
        state.v2 ^= 0xff;
    }
    for _ in 0..4 {
        for state in &mut s {
            sip_round(state);
        }
    }
    (
        s[0].v0 ^ s[0].v1 ^ s[0].v2 ^ s[0].v3,
        s[1].v0 ^ s[1].v1 ^ s[1].v2 ^ s[1].v3,
        s[2].v0 ^ s[2].v1 ^ s[2].v2 ^ s[2].v3,
        s[3].v0 ^ s[3].v1 ^ s[3].v2 ^ s[3].v3,
    )
}

impl SipHashPrf {
    /// The key of the second, domain-separated invocation that produces the
    /// high output half.
    #[inline]
    fn high_key(&self) -> (u64, u64) {
        (self.k0 ^ 0x6868_6868_6868_6868, self.k1.rotate_left(17))
    }

    /// The shared body of [`Prf::eval_blocks_pair`] and
    /// [`Prf::expand_blocks_mmo`]: one prefix-shared, fork-interleaved sweep
    /// over `inputs` (40 sip rounds per seed instead of 48). When `mmo` is
    /// set, the Matyas–Meyer–Oseas feed-forward is applied for free — the
    /// input halves are already in registers.
    #[inline]
    fn pair_sweep(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
        mmo: bool,
    ) {
        assert_eq!(
            inputs.len(),
            out_a.len(),
            "paired sweep input/output length mismatch"
        );
        assert_eq!(
            inputs.len(),
            out_b.len(),
            "paired sweep input/output length mismatch"
        );
        let (hk0, hk1) = self.high_key();

        #[cfg_attr(not(target_arch = "x86_64"), allow(unused_mut))]
        let mut vector_len = 0;
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            vector_len = inputs.len() & !1;
            crate::simd::siphash_x86::pair_sweep(
                (self.k0, self.k1),
                (hk0, hk1),
                &inputs[..vector_len],
                tweak_a,
                tweak_b,
                &mut out_a[..vector_len],
                &mut out_b[..vector_len],
                mmo,
            );
        }

        let base_low = sip_init(self.k0, self.k1);
        let base_high = sip_init(hk0, hk1);
        // `mmo` is constant for the whole sweep; the select below is hoisted.
        let feed = (mmo as u64).wrapping_neg();
        for (input, (slot_a, slot_b)) in inputs[vector_len..].iter().zip(
            out_a[vector_len..]
                .iter_mut()
                .zip(out_b[vector_len..].iter_mut()),
        ) {
            let (m0, m1) = input.halves();
            let prefix_low = sip_prefix(base_low, m0, m1);
            let prefix_high = sip_prefix(base_high, m0, m1);
            let (low_a, high_a, low_b, high_b) =
                sip_fork_x4(prefix_low, prefix_high, tweak_a, tweak_b);
            *slot_a = Block128::from_halves(low_a ^ (m0 & feed), high_a ^ (m1 & feed));
            *slot_b = Block128::from_halves(low_b ^ (m0 & feed), high_b ^ (m1 & feed));
        }
    }
}

impl Prf for SipHashPrf {
    fn kind(&self) -> PrfKind {
        PrfKind::SipHash
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        let (m0, m1) = input.halves();
        let (low, high) = siphash24_words_x2((self.k0, self.k1), self.high_key(), m0, m1, tweak);
        Block128::from_halves(low, high)
    }

    fn eval_blocks(&self, inputs: &[Block128], tweak: u64, out: &mut [Block128]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "eval_blocks input/output length mismatch"
        );
        let low_key = (self.k0, self.k1);
        let high_key = self.high_key();

        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            let vector_len = inputs.len() & !1;
            crate::simd::siphash_x86::eval_blocks(
                low_key,
                high_key,
                &inputs[..vector_len],
                tweak,
                &mut out[..vector_len],
            );
            for (input, slot) in inputs[vector_len..]
                .iter()
                .zip(out[vector_len..].iter_mut())
            {
                let (m0, m1) = input.halves();
                let (low, high) = siphash24_words_x2(low_key, high_key, m0, m1, tweak);
                *slot = Block128::from_halves(low, high);
            }
            return;
        }

        let mut input_pairs = inputs.chunks_exact(2);
        let mut output_pairs = out.chunks_exact_mut(2);
        for (pair, slots) in input_pairs.by_ref().zip(output_pairs.by_ref()) {
            let (low_a, high_a, low_b, high_b) =
                siphash24_words_x4(low_key, high_key, pair[0].halves(), pair[1].halves(), tweak);
            slots[0] = Block128::from_halves(low_a, high_a);
            slots[1] = Block128::from_halves(low_b, high_b);
        }
        for (input, slot) in input_pairs
            .remainder()
            .iter()
            .zip(output_pairs.into_remainder())
        {
            let (m0, m1) = input.halves();
            let (low, high) = siphash24_words_x2(low_key, high_key, m0, m1, tweak);
            *slot = Block128::from_halves(low, high);
        }
    }

    fn eval_blocks_pair(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        self.pair_sweep(inputs, tweak_a, tweak_b, out_a, out_b, false);
    }

    fn expand_blocks_mmo(
        &self,
        inputs: &[Block128],
        tweak_a: u64,
        tweak_b: u64,
        out_a: &mut [Block128],
        out_b: &mut [Block128],
    ) {
        self.pair_sweep(inputs, tweak_a, tweak_b, out_a, out_b, true);
    }

    fn backend_label(&self) -> &'static str {
        self.backend.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper / reference implementation:
    /// key = 00 01 02 ... 0f, messages are 0..len prefixes of 00 01 02 ...
    #[test]
    fn reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let message: Vec<u8> = (0u8..15).collect();

        // vectors_sip64 from the reference implementation (first 3 entries).
        let expected: [u64; 3] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
        ];
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(k0, k1, &message[..len]),
                *want,
                "length {len} mismatch"
            );
        }
    }

    #[test]
    fn prf_properties() {
        let prf = SipHashPrf::with_fixed_key();
        let x = Block128::from_u128(0xfeed);
        assert_eq!(prf.eval_block(x, 9), prf.eval_block(x, 9));
        assert_ne!(prf.eval_block(x, 9), prf.eval_block(x, 10));
        assert_ne!(
            prf.eval_block(x, 9),
            prf.eval_block(Block128::from_u128(0xfeee), 9)
        );
        assert_eq!(prf.kind(), PrfKind::SipHash);
    }

    /// The register-only word path must match the byte-oriented reference.
    #[test]
    fn word_path_matches_buffer_path() {
        for (m0, m1, m2) in [
            (0u64, 0u64, 0u64),
            (1, 2, 3),
            (u64::MAX, 0x0123_4567_89ab_cdef, 42),
        ] {
            let mut message = [0u8; 24];
            message[..8].copy_from_slice(&m0.to_le_bytes());
            message[8..16].copy_from_slice(&m1.to_le_bytes());
            message[16..].copy_from_slice(&m2.to_le_bytes());
            assert_eq!(
                siphash24_words(7, 13, m0, m1, m2),
                siphash24(7, 13, &message)
            );
            let (a, b) = siphash24_words_x2((7, 13), (21, 34), m0, m1, m2);
            assert_eq!(a, siphash24(7, 13, &message));
            assert_eq!(b, siphash24(21, 34, &message));
        }
    }

    /// Batched evaluation (including the 4-way interleaved pair path and the
    /// odd-length remainder) must match scalar evaluation bit for bit.
    #[test]
    fn eval_blocks_matches_eval_block() {
        let prf = SipHashPrf::with_fixed_key();
        for len in [0usize, 1, 2, 3, 7, 8, 33] {
            let inputs: Vec<Block128> = (0..len as u128)
                .map(|i| Block128::from_u128(i * 0x1234_5677 + 3))
                .collect();
            let mut batched = vec![Block128::ZERO; len];
            prf.eval_blocks(&inputs, 9, &mut batched);
            for (input, got) in inputs.iter().zip(&batched) {
                assert_eq!(*got, prf.eval_block(*input, 9), "len {len}");
            }
        }
    }

    /// The prefix-shared paired-tweak sweep must match two scalar sweeps.
    #[test]
    fn eval_blocks_pair_matches_scalar_tweaks() {
        let prf = SipHashPrf::with_fixed_key();
        let inputs: Vec<Block128> = (0..21u128)
            .map(|i| Block128::from_u128(i * 0x9e37 + 11))
            .collect();
        let mut left = vec![Block128::ZERO; inputs.len()];
        let mut right = vec![Block128::ZERO; inputs.len()];
        prf.eval_blocks_pair(&inputs, 0, 1, &mut left, &mut right);
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(left[i], prf.eval_block(*input, 0), "left {i}");
            assert_eq!(right[i], prf.eval_block(*input, 1), "right {i}");
        }
    }

    #[test]
    fn output_halves_are_independent() {
        // The two SipHash calls use different keys, so low != high in general.
        let prf = SipHashPrf::with_fixed_key();
        let out = prf.eval_block(Block128::from_u128(1), 0);
        let (low, high) = out.halves();
        assert_ne!(low, high);
    }
}
