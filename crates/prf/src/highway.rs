//! HighwayHash-style keyed mixing PRF.
//!
//! The paper's Table 5 includes HighwayHash as a fast, SIMD-friendly keyed
//! hash. The reference HighwayHash algorithm is defined in terms of AVX2
//! 256-bit lanes; this module implements a portable keyed permutation that
//! follows the same design recipe (a 1024-bit state of 64-bit lanes updated
//! with multiply/permute/zipper-merge style mixing) rather than the exact
//! published bitstream. Because no external test vectors are matched, the
//! implementation is documented as "HighwayHash-style": it provides the same
//! interface, state width and arithmetic mix of the original, which is what
//! the performance model needs, while its output stream is specific to this
//! crate. This substitution is recorded in `DESIGN.md`.

use pir_field::{Block128, SimdBackend};

use crate::{Prf, PrfKind};

/// 1024-bit state: four groups of four 64-bit lanes (v0, v1, mul0, mul1).
#[derive(Clone)]
struct HighwayState {
    v0: [u64; 4],
    v1: [u64; 4],
    mul0: [u64; 4],
    mul1: [u64; 4],
}

const INIT0: [u64; 4] = [
    0xdbe6_d5d5_fe4c_ce2f,
    0xa409_3822_299f_31d0,
    0x1319_8a2e_0370_7344,
    0x2434_4a40_9382_2299,
];
const INIT1: [u64; 4] = [
    0x4528_21e6_38d0_1377,
    0xbe54_66cf_34e9_0c6c,
    0xc0ac_29b7_c97c_50dd,
    0x3f84_d5b5_b547_0917,
];

#[inline]
fn zipper_merge(value: u64) -> u64 {
    // Byte shuffle approximating HighwayHash's ZipperMerge: interleave bytes
    // so that multiplications diffuse across lanes.
    let bytes = value.to_le_bytes();
    u64::from_le_bytes([
        bytes[3], bytes[1], bytes[4], bytes[0], bytes[6], bytes[2], bytes[7], bytes[5],
    ])
}

impl HighwayState {
    fn new(key: &[u64; 4]) -> Self {
        let mut state = Self {
            v0: [0; 4],
            v1: [0; 4],
            mul0: INIT0,
            mul1: INIT1,
        };
        for i in 0..4 {
            state.v0[i] = INIT0[i] ^ key[i];
            state.v1[i] = INIT1[i] ^ key[i].rotate_left(32);
        }
        state
    }

    fn update(&mut self, packet: &[u64; 4]) {
        for (i, &lane) in packet.iter().enumerate() {
            self.v1[i] = self.v1[i].wrapping_add(lane.wrapping_add(self.mul0[i]));
            self.mul0[i] ^= (self.v1[i] & 0xffff_ffff).wrapping_mul(self.v0[i] >> 32);
            self.v0[i] = self.v0[i].wrapping_add(self.mul1[i]);
            self.mul1[i] ^= (self.v0[i] & 0xffff_ffff).wrapping_mul(self.v1[i] >> 32);
        }
        for i in 0..4 {
            self.v0[i] = self.v0[i].wrapping_add(zipper_merge(self.v1[i]));
            self.v1[i] = self.v1[i].wrapping_add(zipper_merge(self.v0[i]));
        }
    }

    fn permute_and_update(&mut self) {
        let permuted = [
            self.v0[2].rotate_left(32),
            self.v0[3].rotate_left(32),
            self.v0[0].rotate_left(32),
            self.v0[1].rotate_left(32),
        ];
        self.update(&permuted);
    }

    fn finalize128(&mut self) -> (u64, u64) {
        for _ in 0..6 {
            self.permute_and_update();
        }
        let low = self.v0[0]
            .wrapping_add(self.mul0[0])
            .wrapping_add(self.v1[2])
            .wrapping_add(self.mul1[2]);
        let high = self.v0[1]
            .wrapping_add(self.mul0[1])
            .wrapping_add(self.v1[3])
            .wrapping_add(self.mul1[3]);
        (low, high)
    }
}

/// HighwayHash-style keyed PRF with 128-bit output.
pub struct HighwayPrf {
    /// The key-derived initial state, computed once; every evaluation starts
    /// from a copy instead of re-deriving it from the key.
    base: HighwayState,
    backend: SimdBackend,
}

impl HighwayPrf {
    /// Build a PRF with an explicit 256-bit key.
    #[must_use]
    pub fn new(key: [u64; 4]) -> Self {
        Self {
            base: HighwayState::new(&key),
            backend: SimdBackend::Scalar,
        }
    }

    /// Pin the batched sweeps to a SIMD backend (unsupported requests fall
    /// back to scalar). Only the x86_64 backend vectorizes the lane update;
    /// NEON hosts use the scalar path.
    #[must_use]
    pub fn with_backend(mut self, backend: SimdBackend) -> Self {
        self.backend = match backend.supported_or_scalar() {
            SimdBackend::Avx2 => SimdBackend::Avx2,
            _ => SimdBackend::Scalar,
        };
        self
    }

    /// The tweak-derived packet lanes shared by every block of a batch.
    #[inline]
    fn tweak_lanes(tweak: u64) -> (u64, u64) {
        (tweak, tweak.rotate_left(29) ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// One evaluation from the cached base state.
    #[inline]
    fn eval_from_base(&self, input: Block128, t2: u64, t3: u64) -> Block128 {
        let (low, high) = input.halves();
        let mut state = self.base.clone();
        state.update(&[low, high, t2, t3]);
        let (out_low, out_high) = state.finalize128();
        Block128::from_halves(out_low, out_high)
    }

    /// Build a PRF with the crate's fixed public key.
    #[must_use]
    pub fn with_fixed_key() -> Self {
        Self::new([
            0x0706_0504_0302_0100,
            0x0f0e_0d0c_0b0a_0908,
            0x1716_1514_1312_1110,
            0x1f1e_1d1c_1b1a_1918,
        ])
    }
}

impl Prf for HighwayPrf {
    fn kind(&self) -> PrfKind {
        PrfKind::HighwayHash
    }

    fn eval_block(&self, input: Block128, tweak: u64) -> Block128 {
        let (t2, t3) = Self::tweak_lanes(tweak);
        self.eval_from_base(input, t2, t3)
    }

    fn eval_blocks(&self, inputs: &[Block128], tweak: u64, out: &mut [Block128]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "eval_blocks input/output length mismatch"
        );
        let (t2, t3) = Self::tweak_lanes(tweak);
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 {
            let base = crate::simd::highway_x86::BaseState {
                v0: self.base.v0,
                v1: self.base.v1,
                mul0: self.base.mul0,
                mul1: self.base.mul1,
            };
            crate::simd::highway_x86::eval_blocks(&base, t2, t3, inputs, out);
            return;
        }
        for (input, slot) in inputs.iter().zip(out.iter_mut()) {
            *slot = self.eval_from_base(*input, t2, t3);
        }
    }

    fn backend_label(&self) -> &'static str {
        self.backend.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_tweak_separated() {
        let prf = HighwayPrf::with_fixed_key();
        let x = Block128::from_u128(1234);
        assert_eq!(prf.eval_block(x, 0), prf.eval_block(x, 0));
        assert_ne!(prf.eval_block(x, 0), prf.eval_block(x, 1));
        assert_eq!(prf.kind(), PrfKind::HighwayHash);
    }

    #[test]
    fn no_collisions_on_small_domain() {
        // Sanity check on diffusion: distinct inputs map to distinct outputs.
        let prf = HighwayPrf::with_fixed_key();
        let outputs: HashSet<u128> = (0u128..2048)
            .map(|i| prf.eval_block(Block128::from_u128(i), 0).as_u128())
            .collect();
        assert_eq!(outputs.len(), 2048);
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let prf = HighwayPrf::with_fixed_key();
        let a = prf.eval_block(Block128::from_u128(0), 0).as_u128();
        let b = prf.eval_block(Block128::from_u128(1), 0).as_u128();
        let differing = (a ^ b).count_ones();
        // Expect roughly half the bits to flip; accept a generous range.
        assert!(differing > 30, "only {differing} bits differ");
    }

    #[test]
    fn different_keys_differ() {
        let a = HighwayPrf::new([1, 2, 3, 4]);
        let b = HighwayPrf::new([5, 6, 7, 8]);
        let x = Block128::from_u128(9);
        assert_ne!(a.eval_block(x, 0), b.eval_block(x, 0));
    }
}
