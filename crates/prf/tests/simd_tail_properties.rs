//! Tail-correctness proofs for the vectorized PRF backends.
//!
//! Every SIMD path splits a batch into a vector-width-aligned prefix and a
//! scalar remainder; the seams (length 0, 1, one-below-a-lane, one-above,
//! and arbitrary non-multiples) are exactly where a wrong split corrupts
//! outputs. These tests pin every batch entry point — `eval_blocks`,
//! `eval_blocks_pair` and `expand_blocks_mmo` — to the scalar backend,
//! byte for byte, for every PRF family × every backend this host supports.

use pir_field::Block128;
use pir_prf::{build_prf_with_backend, PrfKind, SimdBackend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The widest vector lane in the tree (AVX2 ChaCha20 / SHA-256 process 8
/// blocks per step), so `LANE - 1`, `LANE` and `LANE + 1` bracket every
/// backend's split point.
const LANE: usize = 8;

/// Deterministic edge lengths every property run always covers, in addition
/// to the sampled ones.
const EDGE_LENGTHS: [usize; 8] = [0, 1, 2, LANE - 1, LANE, LANE + 1, 2 * LANE - 1, 33];

fn random_blocks(seed: u64, len: usize) -> Vec<Block128> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| Block128::from_u128(rng.gen())).collect()
}

/// Assert all three batch entry points agree with the forced-scalar build
/// for one (kind, backend, length, seed) combination.
fn assert_backend_matches_scalar(kind: PrfKind, backend: SimdBackend, len: usize, seed: u64) {
    let scalar = build_prf_with_backend(kind, SimdBackend::Scalar);
    let vector = build_prf_with_backend(kind, backend);
    let inputs = random_blocks(seed, len);
    let tweak_a = seed ^ 0xA5A5;
    let tweak_b = seed.wrapping_add(1);
    let what = format!("{kind} backend={} len={len}", vector.backend_label());

    let mut want = vec![Block128::ZERO; len];
    let mut got = vec![Block128::ZERO; len];
    scalar.eval_blocks(&inputs, tweak_a, &mut want);
    vector.eval_blocks(&inputs, tweak_a, &mut got);
    assert_eq!(got, want, "{what}: eval_blocks");

    let mut want_b = vec![Block128::ZERO; len];
    let mut got_b = vec![Block128::ZERO; len];
    scalar.eval_blocks_pair(&inputs, tweak_a, tweak_b, &mut want, &mut want_b);
    vector.eval_blocks_pair(&inputs, tweak_a, tweak_b, &mut got, &mut got_b);
    assert_eq!(got, want, "{what}: eval_blocks_pair (a)");
    assert_eq!(got_b, want_b, "{what}: eval_blocks_pair (b)");

    scalar.expand_blocks_mmo(&inputs, tweak_a, tweak_b, &mut want, &mut want_b);
    vector.expand_blocks_mmo(&inputs, tweak_a, tweak_b, &mut got, &mut got_b);
    assert_eq!(got, want, "{what}: expand_blocks_mmo (a)");
    assert_eq!(got_b, want_b, "{what}: expand_blocks_mmo (b)");
}

#[test]
fn edge_lengths_match_scalar_for_every_kind_and_backend() {
    for kind in PrfKind::ALL {
        for backend in SimdBackend::candidates() {
            for len in EDGE_LENGTHS {
                assert_backend_matches_scalar(kind, *backend, len, 0xED6E ^ len as u64);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random non-lane-multiple (and occasionally aligned) lengths: the
    /// vector prefix / scalar remainder seam moves with every case.
    #[test]
    fn random_lengths_match_scalar(len in 0usize..200, seed in any::<u64>()) {
        for kind in PrfKind::ALL {
            for backend in SimdBackend::candidates() {
                assert_backend_matches_scalar(kind, *backend, len, seed);
            }
        }
    }
}
