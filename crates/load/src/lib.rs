//! `pir-load` — deterministic trace-driven traffic for the PIR serving
//! stack.
//!
//! The serving tower (`pir-serve`, `pir-wire`, `pir-cluster`) is exercised
//! everywhere else by unit-sized bursts. This crate generates *realistic*
//! demand — Zipf-skewed indices, diurnal rate swings, flash crowds — as a
//! fully deterministic schedule ([`TraceConfig`]), replays it against an
//! in-process runtime or a wire session ([`replay()`]), and condenses the
//! outcome into a structured [`SoakReport`] the CI soak gate asserts on.
//!
//! Determinism is the design center: a trace is a pure function of its
//! config (arrival times from a fractional-accumulator integration, indices
//! from a seeded Zipf sampler), so two builds replayed under the same config
//! see byte-identical offered load.
//!
//! **Privacy note.** The client-side hot-entry cache the replay layers over
//! [`pir_protocol::HotEntryCache`] never changes what goes on the wire: a
//! hit suppresses a lookup entirely, a miss issues the exact query a
//! cacheless client would. Hit-rate accounting lives in the client process
//! and is reported only by this harness, never transmitted to the servers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod report;
pub mod trace;

pub use replay::{
    replay, LookupOutcome, OutcomeKind, ReplayConfig, ReplayError, ReplayResult, RequestRecord,
    RuntimeTarget, SessionTarget, SoakTarget,
};
pub use report::{
    AutoscaleSummary, LatencySummary, OutcomeCounts, PhaseSummary, SoakReport, TenantSummary,
    TierSummary,
};
pub use trace::{
    Diurnal, FlashCrowd, Phase, TenantSpec, Trace, TraceConfig, TraceError, TraceRequest,
};
