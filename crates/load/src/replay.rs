//! Trace replay against a serving target.
//!
//! The replay engine is target-agnostic: a [`SoakTarget`] is anything that
//! can answer one private lookup and classify the failure modes the serving
//! stack distinguishes (shed vs. failed). Two adapters cover the stack's two
//! client boundaries — [`RuntimeTarget`] embeds a [`pir_serve::ServeHandle`]
//! in-process, [`SessionTarget`] speaks the wire protocol through a
//! [`pir_wire::PirSession`] — so the same trace exercises either layer.
//!
//! Each worker thread owns its own target and its own
//! [`pir_protocol::HotEntryCache`]: the cache is client state, and sharing
//! one across workers would launder hits between tenants that a real
//! deployment keeps separate. A verify closure checks every reconstructed
//! row (and every cache hit) against ground truth, which is how the soak
//! harness proves zero mixed-version reconstructions across hot reloads.

use std::time::{Duration, Instant};

use pir_protocol::{HotCacheStats, HotEntryCache};
use pir_serve::ServeHandle;
use pir_wire::PirSession;
use rand::SeedableRng;

use crate::trace::Trace;

/// The result of one private lookup, as a target classifies it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The row was reconstructed from two matching shares.
    Answered {
        /// The reconstructed row.
        row: Vec<u8>,
        /// The table generation both shares were stamped with (the
        /// hot-cache key).
        generation: u64,
    },
    /// The serving layer shed the request under backpressure (typed: quota,
    /// queue-full, displacement, shutdown).
    Shed,
    /// A non-shed failure (protocol error, transport failure, ...).
    Failed,
}

/// Anything a trace can be replayed against.
pub trait SoakTarget {
    /// Perform one blocking private lookup on behalf of `tenant`.
    fn lookup(&mut self, tenant: &str, index: u64) -> LookupOutcome;
}

/// In-process target: queries a [`ServeHandle`] directly.
pub struct RuntimeTarget {
    handle: ServeHandle,
    table: String,
}

impl RuntimeTarget {
    /// Target the named table through an embedded runtime handle.
    #[must_use]
    pub fn new(handle: ServeHandle, table: impl Into<String>) -> Self {
        Self {
            handle,
            table: table.into(),
        }
    }
}

impl SoakTarget for RuntimeTarget {
    fn lookup(&mut self, tenant: &str, index: u64) -> LookupOutcome {
        match self.handle.query(&self.table, tenant, index) {
            Ok(pending) => match pending.wait_versioned() {
                Ok((row, generation)) => LookupOutcome::Answered { row, generation },
                Err(err) if err.is_shed() => LookupOutcome::Shed,
                Err(_) => LookupOutcome::Failed,
            },
            Err(err) if err.is_shed() => LookupOutcome::Shed,
            Err(_) => LookupOutcome::Failed,
        }
    }
}

/// Wire target: queries through a [`PirSession`] (two server connections).
///
/// The session's tenant is fixed at connect time, so the per-request tenant
/// name is ignored here — run one session per tenant (the soak example maps
/// workers to tenants) when per-tenant wire accounting matters.
pub struct SessionTarget {
    session: PirSession,
    table: String,
    rng: rand::rngs::StdRng,
}

impl SessionTarget {
    /// Target the named table through a connected session; `seed` drives the
    /// DPF key randomness deterministically.
    #[must_use]
    pub fn new(session: PirSession, table: impl Into<String>, seed: u64) -> Self {
        Self {
            session,
            table: table.into(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl SoakTarget for SessionTarget {
    fn lookup(&mut self, _tenant: &str, index: u64) -> LookupOutcome {
        let id = match self.session.submit(&self.table, index, &mut self.rng) {
            Ok(id) => id,
            Err(_) => return LookupOutcome::Failed,
        };
        loop {
            match self.session.poll() {
                Ok(done) if done.query_id == id => {
                    return match done.outcome {
                        Ok(row) => LookupOutcome::Answered {
                            row,
                            generation: done.table_version,
                        },
                        Err(err) if err.is_shed() => LookupOutcome::Shed,
                        Err(_) => LookupOutcome::Failed,
                    };
                }
                // A completion for an earlier pipelined query: not ours,
                // keep draining.
                Ok(_) => {}
                Err(_) => return LookupOutcome::Failed,
            }
        }
    }
}

/// How a replayed request resolved, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// Answered by a real PIR lookup.
    Answered,
    /// Answered from the client-side hot-entry cache (no wire traffic).
    CacheHit,
    /// Shed under backpressure.
    Shed,
    /// Failed for a non-shed reason.
    Failed,
}

/// One replayed request with its measured outcome.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// Index into the trace's tenant list.
    pub tenant: usize,
    /// Scheduled (unscaled) issue offset from trace start.
    pub at: Duration,
    /// Measured wall-clock latency of the lookup.
    pub latency: Duration,
    /// How the request resolved.
    pub outcome: OutcomeKind,
}

/// Replay knobs.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Concurrent client workers; requests are dealt round-robin.
    pub workers: usize,
    /// Multiplier on scheduled times (0.5 replays twice as fast). Must be
    /// positive and finite.
    pub time_scale: f64,
    /// Per-worker hot-entry cache capacity (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            time_scale: 1.0,
            cache_capacity: 0,
        }
    }
}

/// A structurally invalid replay, or a worker that died mid-replay.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// `workers` was zero or `time_scale` out of range.
    BadConfig {
        /// Which knob, and why.
        detail: String,
    },
    /// A worker thread panicked (a target implementation bug).
    WorkerPanicked,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadConfig { detail } => write!(f, "bad replay config: {detail}"),
            Self::WorkerPanicked => write!(f, "a replay worker panicked"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Everything a replay measured.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// One record per scheduled request, sorted by schedule time.
    pub records: Vec<RequestRecord>,
    /// Hot-entry cache accounting summed over all workers (client-local —
    /// see the crate privacy note).
    pub cache: HotCacheStats,
    /// Rows (fresh or cached) that failed the verify closure — must be zero
    /// for a correct stack.
    pub corrupt: u64,
    /// Wall-clock time the replay took.
    pub wall: Duration,
}

fn merge_stats(into: &mut HotCacheStats, from: HotCacheStats) {
    into.hits += from.hits;
    into.misses += from.misses;
    into.admitted += from.admitted;
    into.stale_rejected += from.stale_rejected;
    into.invalidations += from.invalidations;
    into.evictions += from.evictions;
}

/// Replay a trace: each worker issues its share of the schedule at the
/// scheduled (scaled) times against its own target and hot-entry cache.
///
/// `make_target` builds worker `w`'s target (called on the worker thread);
/// `verify(index, generation, row)` returns whether a reconstructed or
/// cached row matches ground truth for that table generation.
///
/// # Errors
///
/// [`ReplayError::BadConfig`] for invalid knobs; [`ReplayError::WorkerPanicked`]
/// if a target implementation panicked mid-replay.
pub fn replay<T, F, V>(
    trace: &Trace,
    config: &ReplayConfig,
    make_target: F,
    verify: V,
) -> Result<ReplayResult, ReplayError>
where
    T: SoakTarget,
    F: Fn(usize) -> T + Sync,
    V: Fn(u64, u64, &[u8]) -> bool + Sync,
{
    if config.workers == 0 {
        return Err(ReplayError::BadConfig {
            detail: "need at least one worker".into(),
        });
    }
    if !config.time_scale.is_finite() || config.time_scale <= 0.0 {
        return Err(ReplayError::BadConfig {
            detail: format!(
                "time scale {} must be finite and positive",
                config.time_scale
            ),
        });
    }
    let started = Instant::now();
    let workers = config.workers;
    let worker_results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let make_target = &make_target;
                let verify = &verify;
                scope.spawn(move || {
                    let mut target = make_target(w);
                    let mut cache = HotEntryCache::new(config.cache_capacity);
                    let mut records = Vec::new();
                    let mut corrupt = 0u64;
                    for request in trace.requests.iter().skip(w).step_by(workers) {
                        let due = started + request.at.mul_f64(config.time_scale);
                        let now = Instant::now();
                        if let Some(wait) = due.checked_duration_since(now) {
                            std::thread::sleep(wait);
                        }
                        let issue = Instant::now();
                        let tenant = &trace.tenants[request.tenant].name;
                        let generation = cache.generation();
                        let outcome = match cache.lookup(request.index, generation) {
                            Some(row) => {
                                if !verify(request.index, cache.generation(), &row) {
                                    corrupt += 1;
                                }
                                OutcomeKind::CacheHit
                            }
                            None => match target.lookup(tenant, request.index) {
                                LookupOutcome::Answered { row, generation } => {
                                    if !verify(request.index, generation, &row) {
                                        corrupt += 1;
                                    }
                                    cache.admit(request.index, generation, row);
                                    OutcomeKind::Answered
                                }
                                LookupOutcome::Shed => OutcomeKind::Shed,
                                LookupOutcome::Failed => OutcomeKind::Failed,
                            },
                        };
                        records.push(RequestRecord {
                            tenant: request.tenant,
                            at: request.at,
                            latency: issue.elapsed(),
                            outcome,
                        });
                    }
                    (records, cache.stats(), corrupt)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().map_err(|_| ReplayError::WorkerPanicked))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let mut records = Vec::new();
    let mut cache = HotCacheStats::default();
    let mut corrupt = 0;
    for (worker_records, worker_cache, worker_corrupt) in worker_results {
        records.extend(worker_records);
        merge_stats(&mut cache, worker_cache);
        corrupt += worker_corrupt;
    }
    records.sort_by_key(|r| r.at);
    Ok(ReplayResult {
        records,
        cache,
        corrupt,
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TenantSpec, TraceConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A target that answers index `i` with `[i as u8; 4]` at generation 1,
    /// shedding every third lookup.
    struct FakeTarget {
        calls: u64,
    }

    impl SoakTarget for FakeTarget {
        fn lookup(&mut self, _tenant: &str, index: u64) -> LookupOutcome {
            self.calls += 1;
            if self.calls.is_multiple_of(3) {
                LookupOutcome::Shed
            } else {
                LookupOutcome::Answered {
                    row: vec![index as u8; 4],
                    generation: 1,
                }
            }
        }
    }

    fn tiny_trace() -> Trace {
        TraceConfig {
            entries: 8,
            zipf_exponent: 1.2,
            duration: Duration::from_millis(200),
            base_rps: 500.0,
            tick: Duration::from_millis(50),
            tenants: vec![TenantSpec::steady("t", "default", 1.0)],
            seed: 9,
            ..TraceConfig::default()
        }
        .generate()
        .expect("valid trace")
    }

    #[test]
    fn replay_covers_every_request_and_classifies_outcomes() {
        let trace = tiny_trace();
        let config = ReplayConfig {
            workers: 2,
            time_scale: 0.01,
            cache_capacity: 0,
        };
        let result = replay(
            &trace,
            &config,
            |_| FakeTarget { calls: 0 },
            |index, _gen, row| row == vec![index as u8; 4],
        )
        .expect("replay runs");
        assert_eq!(result.records.len(), trace.len());
        assert_eq!(result.corrupt, 0);
        let shed = result
            .records
            .iter()
            .filter(|r| r.outcome == OutcomeKind::Shed)
            .count();
        assert!(shed > 0, "fake target sheds every third call");
        assert_eq!(result.cache.hits, 0, "capacity 0 never hits");
    }

    #[test]
    fn cache_absorbs_repeats_and_detects_corruption() {
        let trace = tiny_trace();
        let config = ReplayConfig {
            workers: 1,
            time_scale: 0.01,
            cache_capacity: 8,
        };
        let fresh = AtomicU64::new(0);
        let result = replay(
            &trace,
            &config,
            |_| FakeTarget { calls: 1 }, // offset so no call sheds on call 3k
            |index, _gen, row| {
                if row == vec![index as u8; 4] {
                    fresh.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            },
        )
        .expect("replay runs");
        // Zipf(1.2) over 8 entries repeats the head constantly: the cache
        // must absorb a large share once warm.
        assert!(result.cache.hits > 0);
        assert_eq!(result.corrupt, 0);
        let answered = result
            .records
            .iter()
            .filter(|r| r.outcome == OutcomeKind::Answered)
            .count() as u64;
        assert_eq!(result.cache.admitted, answered);
    }

    #[test]
    fn bad_configs_are_typed() {
        let trace = tiny_trace();
        let config = ReplayConfig {
            workers: 0,
            ..ReplayConfig::default()
        };
        let err = replay(&trace, &config, |_| FakeTarget { calls: 0 }, |_, _, _| true)
            .expect_err("zero workers");
        assert!(matches!(err, ReplayError::BadConfig { .. }));
    }
}
