//! Structured soak reporting.
//!
//! A [`SoakReport`] condenses a replay into the aggregates the CI gate and a
//! human reading `BENCH_soak.json` both need: per-tenant and per-tier
//! latency/outcome summaries, per-phase breakdowns keyed to the flash-crowd
//! window, autoscaler reactions, hot-cache accounting, and the corruption
//! counter that must stay at zero across hot reloads.
//!
//! Serialization is a small hand-rolled JSON writer (the workspace has no
//! serde_json): every emitted value is a number, a string, a bool or a flat
//! array/object of those, so the writer stays trivially correct.

use std::io::Write as _;
use std::path::Path;

use pir_core::LatencyHistogram;
use pir_protocol::HotCacheStats;

use crate::replay::{OutcomeKind, ReplayResult};
use crate::trace::{Phase, Trace};

/// Outcome counters shared by every aggregation level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Requests issued.
    pub submitted: u64,
    /// Answered by a real PIR lookup.
    pub answered: u64,
    /// Answered from the client-side cache.
    pub cache_hits: u64,
    /// Shed under backpressure.
    pub shed: u64,
    /// Failed for a non-shed reason.
    pub failed: u64,
}

impl OutcomeCounts {
    fn add(&mut self, outcome: OutcomeKind) {
        self.submitted += 1;
        match outcome {
            OutcomeKind::Answered => self.answered += 1,
            OutcomeKind::CacheHit => self.cache_hits += 1,
            OutcomeKind::Shed => self.shed += 1,
            OutcomeKind::Failed => self.failed += 1,
        }
    }

    /// Fraction of submitted requests that were answered (fresh or cached).
    #[must_use]
    pub fn answer_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.answered + self.cache_hits) as f64 / self.submitted as f64
    }
}

/// Latency quantiles over answered requests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Median, milliseconds.
    pub p50_ms: Option<f64>,
    /// 99th percentile, milliseconds.
    pub p99_ms: Option<f64>,
    /// Mean, milliseconds.
    pub mean_ms: Option<f64>,
}

impl LatencySummary {
    fn from_histogram(histogram: &LatencyHistogram) -> Self {
        let quantiles = histogram.quantiles_ms(&[0.50, 0.99]);
        Self {
            p50_ms: quantiles[0],
            p99_ms: quantiles[1],
            mean_ms: histogram.mean_ms(),
        }
    }
}

/// One tenant's replay summary.
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// The SLO tier the tenant was assigned to.
    pub tier: String,
    /// Outcome counters.
    pub counts: OutcomeCounts,
    /// Latency over answered (non-cached) requests.
    pub latency: LatencySummary,
}

/// One SLO tier's replay summary (tenants aggregated).
#[derive(Clone, Debug)]
pub struct TierSummary {
    /// Tier name.
    pub tier: String,
    /// Outcome counters.
    pub counts: OutcomeCounts,
    /// Latency over answered (non-cached) requests.
    pub latency: LatencySummary,
}

/// One (phase, tier) cell of the replay: how a tier fared before, during and
/// after the flash crowd.
#[derive(Clone, Debug)]
pub struct PhaseSummary {
    /// Phase label (`steady`, `flash`, `recovery`).
    pub phase: String,
    /// Tier name.
    pub tier: String,
    /// Outcome counters.
    pub counts: OutcomeCounts,
    /// Latency over answered (non-cached) requests.
    pub latency: LatencySummary,
}

/// Autoscaler reactions observed during the soak, filled by the harness from
/// the runtime's stats snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AutoscaleSummary {
    /// Replica-pool scale-up events.
    pub scale_ups: u64,
    /// Replica-pool scale-down events.
    pub scale_downs: u64,
    /// Active replicas per party when the soak ended.
    pub final_active_replicas: [usize; 2],
}

/// The structured result of one soak run.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Scenario name.
    pub name: String,
    /// Scheduled trace length, seconds.
    pub duration_s: f64,
    /// Wall-clock replay time, seconds.
    pub wall_s: f64,
    /// Total requests replayed.
    pub requests: u64,
    /// Rows that failed ground-truth verification — zero on a correct stack.
    pub corrupt: u64,
    /// Hot reloads applied mid-soak by the harness.
    pub reloads: u64,
    /// Per-tier aggregates, in trace tier order.
    pub tiers: Vec<TierSummary>,
    /// Per-tenant aggregates, in trace tenant order.
    pub tenants: Vec<TenantSummary>,
    /// Per-(phase, tier) aggregates.
    pub phases: Vec<PhaseSummary>,
    /// Autoscaler reactions (harness-filled; zero if not observed).
    pub autoscale: AutoscaleSummary,
    /// Client-side cache accounting (client-local; never on the wire).
    pub cache: HotCacheStats,
}

impl SoakReport {
    /// Aggregate a replay into a report. Autoscale and reload fields start
    /// at zero — the harness fills them from the runtime's stats snapshot.
    #[must_use]
    pub fn build(name: impl Into<String>, trace: &Trace, result: &ReplayResult) -> Self {
        let mut tier_names: Vec<String> = Vec::new();
        for tenant in &trace.tenants {
            if !tier_names.contains(&tenant.tier) {
                tier_names.push(tenant.tier.clone());
            }
        }
        let tier_of = |tenant: usize| -> usize {
            tier_names
                .iter()
                .position(|t| *t == trace.tenants[tenant].tier)
                .unwrap_or(0)
        };

        let mut tenant_counts = vec![OutcomeCounts::default(); trace.tenants.len()];
        let mut tenant_latency = vec![LatencyHistogram::default(); trace.tenants.len()];
        let mut tier_counts = vec![OutcomeCounts::default(); tier_names.len()];
        let mut tier_latency = vec![LatencyHistogram::default(); tier_names.len()];
        let phases = [Phase::Steady, Phase::Flash, Phase::Recovery];
        let mut phase_counts = vec![OutcomeCounts::default(); phases.len() * tier_names.len()];
        let mut phase_latency = vec![LatencyHistogram::default(); phases.len() * tier_names.len()];

        for record in &result.records {
            let tier = tier_of(record.tenant);
            tenant_counts[record.tenant].add(record.outcome);
            tier_counts[tier].add(record.outcome);
            let phase = trace.phase_of(record.at);
            let cell =
                phases.iter().position(|p| *p == phase).unwrap_or(0) * tier_names.len() + tier;
            phase_counts[cell].add(record.outcome);
            if record.outcome == OutcomeKind::Answered {
                let ms = record.latency.as_secs_f64() * 1e3;
                tenant_latency[record.tenant].record_ms(ms);
                tier_latency[tier].record_ms(ms);
                phase_latency[cell].record_ms(ms);
            }
        }

        let tenants = trace
            .tenants
            .iter()
            .enumerate()
            .map(|(slot, spec)| TenantSummary {
                name: spec.name.clone(),
                tier: spec.tier.clone(),
                counts: tenant_counts[slot],
                latency: LatencySummary::from_histogram(&tenant_latency[slot]),
            })
            .collect();
        let tiers = tier_names
            .iter()
            .enumerate()
            .map(|(slot, tier)| TierSummary {
                tier: tier.clone(),
                counts: tier_counts[slot],
                latency: LatencySummary::from_histogram(&tier_latency[slot]),
            })
            .collect();
        let phase_summaries = phases
            .iter()
            .enumerate()
            .flat_map(|(p, phase)| {
                let tier_names = &tier_names;
                let phase_counts = &phase_counts;
                let phase_latency = &phase_latency;
                tier_names.iter().enumerate().filter_map(move |(t, tier)| {
                    let cell = p * tier_names.len() + t;
                    if phase_counts[cell].submitted == 0 {
                        return None;
                    }
                    Some(PhaseSummary {
                        phase: phase.label().to_string(),
                        tier: tier.clone(),
                        counts: phase_counts[cell],
                        latency: LatencySummary::from_histogram(&phase_latency[cell]),
                    })
                })
            })
            .collect();

        Self {
            name: name.into(),
            duration_s: trace.duration.as_secs_f64(),
            wall_s: result.wall.as_secs_f64(),
            requests: result.records.len() as u64,
            corrupt: result.corrupt,
            reloads: 0,
            tiers,
            tenants,
            phases: phase_summaries,
            autoscale: AutoscaleSummary::default(),
            cache: result.cache,
        }
    }

    /// The summary for a named tier, if present.
    #[must_use]
    pub fn tier(&self, tier: &str) -> Option<&TierSummary> {
        self.tiers.iter().find(|t| t.tier == tier)
    }

    /// The (phase, tier) cell, if any request landed in it.
    #[must_use]
    pub fn phase(&self, phase: &str, tier: &str) -> Option<&PhaseSummary> {
        self.phases
            .iter()
            .find(|p| p.phase == phase && p.tier == tier)
    }

    /// Render the report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "name", &self.name);
        push_f64_field(&mut out, "duration_s", Some(self.duration_s));
        push_f64_field(&mut out, "wall_s", Some(self.wall_s));
        push_u64_field(&mut out, "requests", self.requests);
        push_u64_field(&mut out, "corrupt", self.corrupt);
        push_u64_field(&mut out, "reloads", self.reloads);
        out.push_str("\"autoscale\":{");
        push_u64_field(&mut out, "scale_ups", self.autoscale.scale_ups);
        push_u64_field(&mut out, "scale_downs", self.autoscale.scale_downs);
        out.push_str(&format!(
            "\"final_active_replicas\":[{},{}]}},",
            self.autoscale.final_active_replicas[0], self.autoscale.final_active_replicas[1]
        ));
        out.push_str("\"cache\":{");
        push_u64_field(&mut out, "hits", self.cache.hits);
        push_u64_field(&mut out, "misses", self.cache.misses);
        push_f64_field(&mut out, "hit_rate", self.cache.hit_rate());
        push_u64_field(&mut out, "admitted", self.cache.admitted);
        push_u64_field(&mut out, "stale_rejected", self.cache.stale_rejected);
        push_u64_field(&mut out, "invalidations", self.cache.invalidations);
        push_u64_field(&mut out, "evictions", self.cache.evictions);
        trim_comma(&mut out);
        out.push_str("},");
        out.push_str("\"tiers\":[");
        for tier in &self.tiers {
            out.push('{');
            push_str_field(&mut out, "tier", &tier.tier);
            push_counts(&mut out, &tier.counts, &tier.latency);
            trim_comma(&mut out);
            out.push_str("},");
        }
        trim_comma(&mut out);
        out.push_str("],");
        out.push_str("\"tenants\":[");
        for tenant in &self.tenants {
            out.push('{');
            push_str_field(&mut out, "name", &tenant.name);
            push_str_field(&mut out, "tier", &tenant.tier);
            push_counts(&mut out, &tenant.counts, &tenant.latency);
            trim_comma(&mut out);
            out.push_str("},");
        }
        trim_comma(&mut out);
        out.push_str("],");
        out.push_str("\"phases\":[");
        for phase in &self.phases {
            out.push('{');
            push_str_field(&mut out, "phase", &phase.phase);
            push_str_field(&mut out, "tier", &phase.tier);
            push_counts(&mut out, &phase.counts, &phase.latency);
            trim_comma(&mut out);
            out.push_str("},");
        }
        trim_comma(&mut out);
        out.push(']');
        out.push('}');
        out
    }

    /// Write the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())?;
        file.write_all(b"\n")
    }
}

fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("\"{key}\":\"{}\",", escape(value)));
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push_str(&format!("\"{key}\":{value},"));
}

fn push_f64_field(out: &mut String, key: &str, value: Option<f64>) {
    match value {
        Some(v) if v.is_finite() => out.push_str(&format!("\"{key}\":{v:.4},")),
        _ => out.push_str(&format!("\"{key}\":null,")),
    }
}

fn push_counts(out: &mut String, counts: &OutcomeCounts, latency: &LatencySummary) {
    push_u64_field(out, "submitted", counts.submitted);
    push_u64_field(out, "answered", counts.answered);
    push_u64_field(out, "cache_hits", counts.cache_hits);
    push_u64_field(out, "shed", counts.shed);
    push_u64_field(out, "failed", counts.failed);
    push_f64_field(out, "answer_rate", Some(counts.answer_rate()));
    push_f64_field(out, "p50_ms", latency.p50_ms);
    push_f64_field(out, "p99_ms", latency.p99_ms);
    push_f64_field(out, "mean_ms", latency.mean_ms);
}

fn trim_comma(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::RequestRecord;
    use crate::trace::{FlashCrowd, TenantSpec, TraceConfig};
    use std::time::Duration;

    fn sample_report() -> SoakReport {
        let trace = TraceConfig {
            entries: 64,
            duration: Duration::from_secs(2),
            base_rps: 100.0,
            tick: Duration::from_millis(100),
            flash: Some(FlashCrowd {
                start: Duration::from_millis(500),
                duration: Duration::from_millis(1000),
            }),
            tenants: vec![
                TenantSpec::flashy("interactive", "urgent", 1.0, 4.0),
                TenantSpec::steady("batch", "background", 1.0),
            ],
            seed: 1,
            ..TraceConfig::default()
        }
        .generate()
        .expect("valid trace");
        let records: Vec<RequestRecord> = trace
            .requests
            .iter()
            .enumerate()
            .map(|(i, r)| RequestRecord {
                tenant: r.tenant,
                at: r.at,
                latency: Duration::from_micros(500 + (i as u64 % 7) * 100),
                outcome: match i % 5 {
                    0 => OutcomeKind::CacheHit,
                    4 if r.tenant == 1 => OutcomeKind::Shed,
                    _ => OutcomeKind::Answered,
                },
            })
            .collect();
        let result = ReplayResult {
            records,
            cache: HotCacheStats {
                hits: 10,
                misses: 40,
                admitted: 38,
                stale_rejected: 0,
                invalidations: 2,
                evictions: 1,
            },
            corrupt: 0,
            wall: Duration::from_secs(2),
        };
        SoakReport::build("test-soak", &trace, &result)
    }

    #[test]
    fn aggregates_line_up_with_records() {
        let report = sample_report();
        let total: u64 = report.tiers.iter().map(|t| t.counts.submitted).sum();
        assert_eq!(total, report.requests);
        let urgent = report.tier("urgent").expect("urgent tier present");
        assert!(urgent.counts.shed == 0, "only batch tenants shed here");
        let background = report.tier("background").expect("background present");
        assert!(background.counts.shed > 0);
        assert!(report.phase("flash", "urgent").is_some());
        assert!(urgent.latency.p99_ms.is_some());
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_keys() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"name\":\"test-soak\"",
            "\"tiers\":[",
            "\"tenants\":[",
            "\"phases\":[",
            "\"autoscale\":{",
            "\"cache\":{",
            "\"corrupt\":0",
            "\"hit_rate\":0.2",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets (no nesting beyond our own writer).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn string_escaping_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
