//! Deterministic request-schedule generation.
//!
//! A trace is the *entire* offered load, decided up front from a seed: which
//! tenant issues a lookup, when, and for which table index. Replaying the
//! same trace against two server builds therefore compares them under
//! byte-identical demand — the property every regression claim in the soak
//! harness rests on.
//!
//! Rates compose multiplicatively per tenant and per tick:
//!
//! ```text
//! rate(tenant, t) = base_rps · weight_share(tenant)
//!                 · diurnal(t)                  // 1 + a·sin(2πt/period)
//!                 · flash(tenant, t)            // multiplier inside window
//! ```
//!
//! Arrival counts come from a per-tenant *fractional accumulator* (the
//! carry-the-remainder trick): each tick adds `rate · tick` to the
//! accumulator and emits `floor(acc)` requests, keeping the fraction for the
//! next tick. No randomness in arrival *times* — only the looked-up indices
//! are sampled (Zipf, from the trace seed) — so expected and generated
//! request counts agree to within one request per tenant.

use std::fmt;
use std::time::Duration;

use pir_ml::ZipfSampler;
use rand::SeedableRng;

/// One tenant's share of the offered load.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant name, as presented to the serving layer for admission.
    pub name: String,
    /// SLO tier this tenant is assigned to (a `pir_serve::SloClass` name).
    pub tier: String,
    /// Relative share of the base rate (normalized over all tenants).
    pub weight: f64,
    /// Rate multiplier applied inside the flash-crowd window (1.0 = the
    /// tenant does not participate in the flash).
    pub flash_multiplier: f64,
}

impl TenantSpec {
    /// A tenant with no flash participation.
    #[must_use]
    pub fn steady(name: impl Into<String>, tier: impl Into<String>, weight: f64) -> Self {
        Self {
            name: name.into(),
            tier: tier.into(),
            weight,
            flash_multiplier: 1.0,
        }
    }

    /// A tenant whose rate multiplies by `flash_multiplier` during the flash
    /// window.
    #[must_use]
    pub fn flashy(
        name: impl Into<String>,
        tier: impl Into<String>,
        weight: f64,
        flash_multiplier: f64,
    ) -> Self {
        Self {
            name: name.into(),
            tier: tier.into(),
            weight,
            flash_multiplier,
        }
    }
}

/// Smooth daily rate variation: `1 + amplitude · sin(2πt / period)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Diurnal {
    /// Length of one full cycle.
    pub period: Duration,
    /// Peak deviation from the base rate, in `[0, 1)`.
    pub amplitude: f64,
}

/// A step surge: participating tenants multiply their rate by their
/// `flash_multiplier` for the window `[start, start + duration)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashCrowd {
    /// Offset of the surge from trace start.
    pub start: Duration,
    /// How long the surge lasts.
    pub duration: Duration,
}

impl FlashCrowd {
    /// Whether `at` falls inside the surge window.
    #[must_use]
    pub fn contains(&self, at: Duration) -> bool {
        at >= self.start && at < self.start + self.duration
    }
}

/// Everything needed to generate a trace deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceConfig {
    /// Entries in the table the trace queries (index domain).
    pub entries: u64,
    /// Zipf skew of the looked-up indices (0 = uniform).
    pub zipf_exponent: f64,
    /// Total trace length.
    pub duration: Duration,
    /// Aggregate request rate across all tenants, before modulation.
    pub base_rps: f64,
    /// Scheduling quantum: rates are integrated per tick and arrivals spread
    /// evenly inside it.
    pub tick: Duration,
    /// Optional smooth rate modulation.
    pub diurnal: Option<Diurnal>,
    /// Optional step surge.
    pub flash: Option<FlashCrowd>,
    /// The tenants sharing the load. Must be non-empty.
    pub tenants: Vec<TenantSpec>,
    /// Seed for index sampling (the only randomness in a trace).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            entries: 1 << 10,
            zipf_exponent: 1.0,
            duration: Duration::from_secs(10),
            base_rps: 100.0,
            tick: Duration::from_millis(100),
            diurnal: None,
            flash: None,
            tenants: vec![TenantSpec::steady("tenant-0", "default", 1.0)],
            seed: 0,
        }
    }
}

/// A structurally invalid [`TraceConfig`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// No tenants were configured.
    NoTenants,
    /// `tick` or `duration` was zero, or `tick` exceeds `duration`.
    BadTiming {
        /// Human-readable description of the violated constraint.
        detail: String,
    },
    /// `entries` was zero or an exponent/rate/amplitude was out of range.
    BadParameter {
        /// Which parameter, and why.
        detail: String,
    },
    /// A tenant's weight or flash multiplier was non-positive or non-finite.
    BadTenant {
        /// The offending tenant.
        tenant: String,
        /// Which field, and why.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoTenants => write!(f, "trace needs at least one tenant"),
            Self::BadTiming { detail } => write!(f, "bad trace timing: {detail}"),
            Self::BadParameter { detail } => write!(f, "bad trace parameter: {detail}"),
            Self::BadTenant { tenant, detail } => {
                write!(f, "bad tenant '{tenant}': {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One scheduled lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRequest {
    /// Offset from trace start at which the request is issued.
    pub at: Duration,
    /// Index into [`Trace::tenants`].
    pub tenant: usize,
    /// The table index to look up.
    pub index: u64,
}

/// Which part of the trace a request falls in, relative to the flash window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Before the flash crowd (or the whole trace if there is none).
    Steady,
    /// Inside the flash window.
    Flash,
    /// After the flash window closed.
    Recovery,
}

impl Phase {
    /// Stable lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Steady => "steady",
            Self::Flash => "flash",
            Self::Recovery => "recovery",
        }
    }
}

/// A fully materialized request schedule.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The tenants, in the order [`TraceRequest::tenant`] indexes.
    pub tenants: Vec<TenantSpec>,
    /// All requests, sorted by issue time.
    pub requests: Vec<TraceRequest>,
    /// The flash window the schedule was generated with, if any.
    pub flash: Option<FlashCrowd>,
    /// Total trace length.
    pub duration: Duration,
}

impl Trace {
    /// Number of scheduled requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Classify an issue time against the flash window.
    #[must_use]
    pub fn phase_of(&self, at: Duration) -> Phase {
        match self.flash {
            Some(flash) if flash.contains(at) => Phase::Flash,
            Some(flash) if at >= flash.start + flash.duration => Phase::Recovery,
            _ => Phase::Steady,
        }
    }

    /// Peak offered rate over any single tick, in requests per second.
    #[must_use]
    pub fn peak_tick_rps(&self, tick: Duration) -> f64 {
        let tick_s = tick.as_secs_f64();
        if tick_s <= 0.0 || self.requests.is_empty() {
            return 0.0;
        }
        let mut counts: Vec<u64> = Vec::new();
        for request in &self.requests {
            let slot = (request.at.as_secs_f64() / tick_s) as usize;
            if counts.len() <= slot {
                counts.resize(slot + 1, 0);
            }
            counts[slot] += 1;
        }
        counts.iter().copied().max().unwrap_or(0) as f64 / tick_s
    }
}

impl TraceConfig {
    fn validate(&self) -> Result<(), TraceError> {
        if self.tenants.is_empty() {
            return Err(TraceError::NoTenants);
        }
        if self.tick.is_zero() || self.duration.is_zero() {
            return Err(TraceError::BadTiming {
                detail: "tick and duration must be positive".into(),
            });
        }
        if self.tick > self.duration {
            return Err(TraceError::BadTiming {
                detail: format!(
                    "tick {:?} exceeds trace duration {:?}",
                    self.tick, self.duration
                ),
            });
        }
        if self.entries == 0 {
            return Err(TraceError::BadParameter {
                detail: "table must have at least one entry".into(),
            });
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return Err(TraceError::BadParameter {
                detail: format!(
                    "zipf exponent {} must be finite and >= 0",
                    self.zipf_exponent
                ),
            });
        }
        if !self.base_rps.is_finite() || self.base_rps <= 0.0 {
            return Err(TraceError::BadParameter {
                detail: format!(
                    "base rate {} rps must be finite and positive",
                    self.base_rps
                ),
            });
        }
        if let Some(diurnal) = &self.diurnal {
            if diurnal.period.is_zero() {
                return Err(TraceError::BadParameter {
                    detail: "diurnal period must be positive".into(),
                });
            }
            if !diurnal.amplitude.is_finite() || !(0.0..1.0).contains(&diurnal.amplitude) {
                return Err(TraceError::BadParameter {
                    detail: format!(
                        "diurnal amplitude {} must be in [0, 1) so rates stay positive",
                        diurnal.amplitude
                    ),
                });
            }
        }
        if let Some(flash) = &self.flash {
            if flash.duration.is_zero() {
                return Err(TraceError::BadParameter {
                    detail: "flash window must have positive duration".into(),
                });
            }
        }
        for tenant in &self.tenants {
            if !tenant.weight.is_finite() || tenant.weight <= 0.0 {
                return Err(TraceError::BadTenant {
                    tenant: tenant.name.clone(),
                    detail: format!("weight {} must be finite and positive", tenant.weight),
                });
            }
            if !tenant.flash_multiplier.is_finite() || tenant.flash_multiplier < 1.0 {
                return Err(TraceError::BadTenant {
                    tenant: tenant.name.clone(),
                    detail: format!(
                        "flash multiplier {} must be finite and >= 1",
                        tenant.flash_multiplier
                    ),
                });
            }
        }
        Ok(())
    }

    /// Generate the full request schedule.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first structural problem with
    /// the configuration; a valid configuration cannot fail.
    pub fn generate(&self) -> Result<Trace, TraceError> {
        self.validate()?;
        let sampler = ZipfSampler::new(self.entries, self.zipf_exponent);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let total_weight: f64 = self.tenants.iter().map(|t| t.weight).sum();
        let tick_s = self.tick.as_secs_f64();
        let ticks = (self.duration.as_secs_f64() / tick_s).ceil() as u64;
        let mut accumulators = vec![0.0f64; self.tenants.len()];
        let mut requests = Vec::new();
        for tick in 0..ticks {
            let tick_start = self.tick * (tick as u32);
            let mid = tick_start + self.tick / 2;
            let diurnal = match &self.diurnal {
                Some(d) => {
                    let angle = std::f64::consts::TAU * mid.as_secs_f64() / d.period.as_secs_f64();
                    1.0 + d.amplitude * angle.sin()
                }
                None => 1.0,
            };
            let in_flash = self.flash.as_ref().is_some_and(|f| f.contains(mid));
            for (slot, tenant) in self.tenants.iter().enumerate() {
                let flash = if in_flash {
                    tenant.flash_multiplier
                } else {
                    1.0
                };
                let rate = self.base_rps * (tenant.weight / total_weight) * diurnal * flash;
                accumulators[slot] += rate * tick_s;
                let count = accumulators[slot].floor() as u64;
                accumulators[slot] -= count as f64;
                // Spread the tick's arrivals evenly across its span so a
                // whole tick's worth never lands on one instant.
                for k in 0..count {
                    let offset = self.tick.mul_f64((k as f64 + 0.5) / count as f64);
                    requests.push(TraceRequest {
                        at: tick_start + offset,
                        tenant: slot,
                        index: sampler.sample(&mut rng),
                    });
                }
            }
        }
        requests.sort_by_key(|r| (r.at, r.tenant));
        Ok(Trace {
            tenants: self.tenants.clone(),
            requests,
            flash: self.flash,
            duration: self.duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> TraceConfig {
        TraceConfig {
            entries: 256,
            zipf_exponent: 1.0,
            duration: Duration::from_secs(4),
            base_rps: 50.0,
            tick: Duration::from_millis(100),
            diurnal: None,
            flash: None,
            tenants: vec![
                TenantSpec::flashy("interactive", "urgent", 1.0, 10.0),
                TenantSpec::steady("batch", "background", 1.0),
            ],
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = base_config();
        let a = config.generate().unwrap();
        let b = config.generate().unwrap();
        assert_eq!(a.requests, b.requests);
        assert!(!a.is_empty());
    }

    #[test]
    fn steady_rate_matches_expectation() {
        let trace = base_config().generate().unwrap();
        // 50 rps x 4 s = 200 requests, ± one per tenant from the accumulator.
        let n = trace.len() as i64;
        assert!((n - 200).abs() <= 2, "got {n} requests");
        // Requests are sorted by time and within the duration.
        assert!(trace.requests.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(trace.requests.iter().all(|r| r.at < trace.duration));
    }

    #[test]
    fn flash_crowd_multiplies_participating_tenants_only() {
        let mut config = base_config();
        config.flash = Some(FlashCrowd {
            start: Duration::from_secs(1),
            duration: Duration::from_secs(1),
        });
        let trace = config.generate().unwrap();
        let in_flash = |r: &&TraceRequest| trace.phase_of(r.at) == Phase::Flash;
        let flash_interactive = trace
            .requests
            .iter()
            .filter(in_flash)
            .filter(|r| r.tenant == 0)
            .count() as f64;
        let flash_batch = trace
            .requests
            .iter()
            .filter(in_flash)
            .filter(|r| r.tenant == 1)
            .count() as f64;
        // Tenant 0 multiplies 10x, tenant 1 stays flat: the ratio inside the
        // window reflects that.
        assert!(flash_interactive > 5.0 * flash_batch);
        // And the peak tick rate clearly exceeds the steady 50 rps.
        assert!(trace.peak_tick_rps(Duration::from_millis(100)) > 100.0);
    }

    #[test]
    fn diurnal_modulation_moves_load_within_a_period() {
        let mut config = base_config();
        config.duration = Duration::from_secs(8);
        config.diurnal = Some(Diurnal {
            period: Duration::from_secs(8),
            amplitude: 0.8,
        });
        let trace = config.generate().unwrap();
        // First half-period rides the sine peak, second half the trough.
        let half = Duration::from_secs(4);
        let first = trace.requests.iter().filter(|r| r.at < half).count();
        let second = trace.len() - first;
        assert!(first > second + second / 2, "first {first} second {second}");
    }

    #[test]
    fn phases_classify_against_the_flash_window() {
        let mut config = base_config();
        config.flash = Some(FlashCrowd {
            start: Duration::from_secs(1),
            duration: Duration::from_secs(1),
        });
        let trace = config.generate().unwrap();
        assert_eq!(trace.phase_of(Duration::from_millis(500)), Phase::Steady);
        assert_eq!(trace.phase_of(Duration::from_millis(1500)), Phase::Flash);
        assert_eq!(trace.phase_of(Duration::from_millis(2500)), Phase::Recovery);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let mut config = base_config();
        config.tenants.clear();
        assert_eq!(config.generate().unwrap_err(), TraceError::NoTenants);

        let mut config = base_config();
        config.tick = Duration::ZERO;
        assert!(matches!(
            config.generate().unwrap_err(),
            TraceError::BadTiming { .. }
        ));

        let mut config = base_config();
        config.base_rps = 0.0;
        assert!(matches!(
            config.generate().unwrap_err(),
            TraceError::BadParameter { .. }
        ));

        let mut config = base_config();
        config.tenants[0].weight = -1.0;
        assert!(matches!(
            config.generate().unwrap_err(),
            TraceError::BadTenant { .. }
        ));

        let mut config = base_config();
        config.diurnal = Some(Diurnal {
            period: Duration::from_secs(1),
            amplitude: 1.5,
        });
        assert!(matches!(
            config.generate().unwrap_err(),
            TraceError::BadParameter { .. }
        ));
    }

    #[test]
    fn indices_stay_in_range_and_skew_to_the_head() {
        let trace = base_config().generate().unwrap();
        assert!(trace.requests.iter().all(|r| r.index < 256));
        let head_hits = trace.requests.iter().filter(|r| r.index < 16).count();
        // Zipf(1.0) over 256 entries puts far more than 16/256 of mass on
        // the first 16 indices.
        assert!(head_hits * 4 > trace.len());
    }
}
