//! Minimal dense linear algebra for the on-device models.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major dense `f32` matrix.
///
/// Sized for the small on-device models the paper runs (a few hundred
/// thousand parameters); no attempt is made at cache blocking or SIMD.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix with entries drawn uniformly from `[-scale, scale]` (Xavier
    /// style when `scale = 1/sqrt(cols)`).
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrow one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Element access.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// Element update.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row * self.cols + col] = value;
    }

    /// `y = W · x` for a column vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "vector length must equal matrix cols");
        self.data.chunks(self.cols).map(|row| dot(row, x)).collect()
    }

    /// `y = Wᵀ · x` for a column vector `x` (used in backprop).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    #[must_use]
    pub fn matvec_transposed(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "vector length must equal matrix rows");
        let mut out = vec![0.0; self.cols];
        for (row_index, row) in self.data.chunks(self.cols).enumerate() {
            let scale = x[row_index];
            for (o, w) in out.iter_mut().zip(row) {
                *o += scale * w;
            }
        }
        out
    }

    /// Rank-one SGD update: `W -= lr · g xᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `g.len() != rows` or `x.len() != cols`.
    pub fn sgd_rank_one(&mut self, g: &[f32], x: &[f32], lr: f32) {
        assert_eq!(g.len(), self.rows, "gradient length must equal rows");
        assert_eq!(x.len(), self.cols, "input length must equal cols");
        for (row_index, row) in self.data.chunks_mut(self.cols).enumerate() {
            let scale = lr * g[row_index];
            if scale == 0.0 {
                continue;
            }
            for (w, xv) in row.iter_mut().zip(x) {
                *w -= scale * xv;
            }
        }
    }

    /// Total number of parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.data.len()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product needs equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent (re-exported for symmetry with [`sigmoid`]).
#[must_use]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Rectified linear unit.
#[must_use]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// In-place softmax over a logit vector; returns the probabilities.
#[must_use]
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sgd_rank_one_reduces_loss_direction() {
        let mut m = Matrix::zeros(1, 2);
        m.sgd_rank_one(&[1.0], &[0.5, -0.5], 0.1);
        assert!((m.get(0, 0) - -0.05).abs() < 1e-6);
        assert!((m.get(0, 1) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn activations_behave() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert!((tanh(0.0)).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with large logits.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn random_matrix_respects_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random(10, 10, 0.1, &mut rng);
        assert!(m.data.iter().all(|v| v.abs() <= 0.1));
        assert_eq!(m.parameter_count(), 100);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
