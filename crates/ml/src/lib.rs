//! ML substrate for private embedding retrieval.
//!
//! The paper's end-to-end claims are about *applications*: on-device
//! recommendation models (MovieLens-20M, Taobao) and an LSTM language model
//! (WikiText-2) whose embedding tables live on servers and are fetched with
//! PIR. This crate builds everything those applications need, from scratch:
//!
//! * [`tensor`] — a minimal dense linear-algebra layer (matrices, activations)
//!   sufficient for small MLPs and LSTMs,
//! * [`embedding`] — float embedding tables plus the fixed-point quantization
//!   that turns them into byte entries a PIR server can host,
//! * [`mlp`] — the 2-layer MLP click-through-rate model used for the
//!   recommendation workloads,
//! * [`lstm`] — a single-layer LSTM language model,
//! * [`metrics`] — ROC-AUC, log-loss and perplexity,
//! * [`datasets`] — synthetic workload generators standing in for the public
//!   datasets (same table sizes, entry sizes, queries-per-inference and
//!   Zipf-like access skew; see `DESIGN.md` for the substitution rationale),
//! * [`workload`] — access-pattern statistics (frequencies, co-occurrence,
//!   sessions) consumed by the PIR co-design search,
//! * [`quality`] — the model-quality-vs-dropped-queries relationship that the
//!   co-design optimizer trades against system cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod embedding;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod quality;
pub mod tensor;
pub mod workload;

pub use datasets::{DatasetCatalog, DatasetKind, SyntheticDataset};
pub use embedding::EmbeddingTable;
pub use lstm::{LstmConfig, LstmLanguageModel};
pub use metrics::{accuracy, log_loss, perplexity, roc_auc};
pub use mlp::{MlpConfig, MlpModel};
pub use quality::{QualityMetric, QualityModel};
pub use tensor::Matrix;
pub use workload::{AccessWorkload, ZipfSampler};
