//! Embedding-access workloads: the per-inference index sets the PIR layer must
//! serve, and the statistics (frequencies, co-occurrence, skew) the co-design
//! exploits.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A collection of per-inference embedding accesses against one table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessWorkload {
    /// Number of entries in the table being accessed.
    pub table_entries: u64,
    /// One entry per inference: the (possibly repeating) indices it looks up.
    pub sessions: Vec<Vec<u64>>,
}

impl AccessWorkload {
    /// Create a workload.
    ///
    /// # Panics
    ///
    /// Panics if any session references an index outside the table.
    #[must_use]
    pub fn new(table_entries: u64, sessions: Vec<Vec<u64>>) -> Self {
        for session in &sessions {
            for &index in session {
                assert!(
                    index < table_entries,
                    "session references index {index} outside table of {table_entries}"
                );
            }
        }
        Self {
            table_entries,
            sessions,
        }
    }

    /// Generate a synthetic Zipf-distributed workload: `sessions` inferences
    /// of `queries_per_session` lookups each, with index popularity following
    /// a power law of the given `exponent` (1.0 ≈ classic Zipf; larger is
    /// more skewed; 0.0 is uniform).
    ///
    /// Sampling uses inverse-CDF over the exact finite Zipf mass function, so
    /// the same RNG stream always yields the same workload — the trace
    /// harness replays these deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is zero or `exponent` is negative/non-finite.
    #[must_use]
    pub fn zipf<R: Rng + ?Sized>(
        table_entries: u64,
        sessions: usize,
        queries_per_session: usize,
        exponent: f64,
        rng: &mut R,
    ) -> Self {
        let sampler = ZipfSampler::new(table_entries, exponent);
        let sessions = (0..sessions)
            .map(|_| {
                (0..queries_per_session)
                    .map(|_| sampler.sample(rng))
                    .collect()
            })
            .collect();
        Self {
            table_entries,
            sessions,
        }
    }

    /// Flatten the per-inference sessions into one lookup stream, in session
    /// order — the request sequence a trace harness replays.
    #[must_use]
    pub fn lookup_stream(&self) -> Vec<u64> {
        self.sessions.iter().flatten().copied().collect()
    }

    /// Number of inferences in the workload.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the workload contains no inferences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Mean number of (non-deduplicated) lookups per inference.
    #[must_use]
    pub fn avg_queries_per_inference(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        let total: usize = self.sessions.iter().map(Vec::len).sum();
        total as f64 / self.sessions.len() as f64
    }

    /// Per-index access counts over the whole workload (length =
    /// `table_entries`), the input to the hot-table split.
    #[must_use]
    pub fn frequencies(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.table_entries as usize];
        for session in &self.sessions {
            for &index in session {
                counts[index as usize] += 1;
            }
        }
        counts
    }

    /// Fraction of all accesses captured by the `top` most frequent indices —
    /// a direct measure of the power-law skew the hot table exploits.
    #[must_use]
    pub fn coverage_of_top(&self, top: usize) -> f64 {
        let mut counts = self.frequencies();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let covered: u64 = counts.iter().take(top).sum();
        covered as f64 / total as f64
    }

    /// Split into train / test workloads at `train_fraction` (sessions are
    /// assigned in order, mirroring a temporal split).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not strictly between 0 and 1.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Self, Self) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let cut = ((self.sessions.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.sessions.len().saturating_sub(1).max(1));
        (
            Self {
                table_entries: self.table_entries,
                sessions: self.sessions[..cut].to_vec(),
            },
            Self {
                table_entries: self.table_entries,
                sessions: self.sessions[cut..].to_vec(),
            },
        )
    }
}

/// Inverse-CDF sampler over the finite Zipf distribution
/// `P(i) ∝ 1 / (i + 1)^s` for `i` in `0..n`.
///
/// The CDF table costs `O(n)` to build and each sample is one binary search,
/// which keeps trace generation cheap even for skew sweeps. Public so the
/// load harness can sample lookups one at a time without materializing whole
/// sessions.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` indices with skew `exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative or non-finite.
    #[must_use]
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one index");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for mass in &mut cdf {
            *mass /= total;
        }
        Self { cdf }
    }

    /// Draw one index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let unit: f64 = rng.gen_range(0.0..1.0);
        // partition_point: first index whose cumulative mass covers `unit`.
        let index = self.cdf.partition_point(|&mass| mass < unit);
        index.min(self.cdf.len() - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> AccessWorkload {
        AccessWorkload::new(
            10,
            vec![vec![0, 0, 1], vec![0, 2], vec![0, 1, 2, 3], vec![9]],
        )
    }

    #[test]
    fn statistics_are_correct() {
        let w = workload();
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert!((w.avg_queries_per_inference() - 2.5).abs() < 1e-9);
        let freq = w.frequencies();
        assert_eq!(freq[0], 4);
        assert_eq!(freq[1], 2);
        assert_eq!(freq[9], 1);
        assert_eq!(freq.iter().sum::<u64>(), 10);
    }

    #[test]
    fn coverage_reflects_skew() {
        let w = workload();
        assert!((w.coverage_of_top(1) - 0.4).abs() < 1e-9);
        assert!((w.coverage_of_top(10) - 1.0).abs() < 1e-9);
        assert!(w.coverage_of_top(1) > 1.0 / 10.0); // more skewed than uniform
    }

    #[test]
    fn split_preserves_sessions() {
        let w = workload();
        let (train, test) = w.split(0.5);
        assert_eq!(train.len() + test.len(), w.len());
        assert_eq!(train.table_entries, 10);
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    fn zipf_workload_is_deterministic_and_skewed() {
        use rand::SeedableRng;
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(7);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(7);
        let a = AccessWorkload::zipf(1024, 200, 4, 1.1, &mut rng_a);
        let b = AccessWorkload::zipf(1024, 200, 4, 1.1, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert_eq!(a.lookup_stream().len(), 800);
        assert!(a.lookup_stream().iter().all(|&i| i < 1024));
        // Zipf 1.1 concentrates far more than uniform on the head.
        assert!(a.coverage_of_top(16) > 0.3);
        let mut rng_c = rand::rngs::StdRng::seed_from_u64(7);
        let uniform = AccessWorkload::zipf(1024, 200, 4, 0.0, &mut rng_c);
        assert!(uniform.coverage_of_top(16) < a.coverage_of_top(16));
    }

    #[test]
    fn zipf_sampler_covers_the_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sampler = ZipfSampler::new(4, 1.0);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[sampler.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one index")]
    fn zipf_rejects_empty_table() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside table")]
    fn out_of_range_session_panics() {
        let _ = AccessWorkload::new(4, vec![vec![4]]);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_split_fraction_panics() {
        let _ = workload().split(1.0);
    }
}
