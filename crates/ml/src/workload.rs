//! Embedding-access workloads: the per-inference index sets the PIR layer must
//! serve, and the statistics (frequencies, co-occurrence, skew) the co-design
//! exploits.

use serde::{Deserialize, Serialize};

/// A collection of per-inference embedding accesses against one table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessWorkload {
    /// Number of entries in the table being accessed.
    pub table_entries: u64,
    /// One entry per inference: the (possibly repeating) indices it looks up.
    pub sessions: Vec<Vec<u64>>,
}

impl AccessWorkload {
    /// Create a workload.
    ///
    /// # Panics
    ///
    /// Panics if any session references an index outside the table.
    #[must_use]
    pub fn new(table_entries: u64, sessions: Vec<Vec<u64>>) -> Self {
        for session in &sessions {
            for &index in session {
                assert!(
                    index < table_entries,
                    "session references index {index} outside table of {table_entries}"
                );
            }
        }
        Self {
            table_entries,
            sessions,
        }
    }

    /// Number of inferences in the workload.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the workload contains no inferences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Mean number of (non-deduplicated) lookups per inference.
    #[must_use]
    pub fn avg_queries_per_inference(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        let total: usize = self.sessions.iter().map(Vec::len).sum();
        total as f64 / self.sessions.len() as f64
    }

    /// Per-index access counts over the whole workload (length =
    /// `table_entries`), the input to the hot-table split.
    #[must_use]
    pub fn frequencies(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.table_entries as usize];
        for session in &self.sessions {
            for &index in session {
                counts[index as usize] += 1;
            }
        }
        counts
    }

    /// Fraction of all accesses captured by the `top` most frequent indices —
    /// a direct measure of the power-law skew the hot table exploits.
    #[must_use]
    pub fn coverage_of_top(&self, top: usize) -> f64 {
        let mut counts = self.frequencies();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let covered: u64 = counts.iter().take(top).sum();
        covered as f64 / total as f64
    }

    /// Split into train / test workloads at `train_fraction` (sessions are
    /// assigned in order, mirroring a temporal split).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not strictly between 0 and 1.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Self, Self) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let cut = ((self.sessions.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.sessions.len().saturating_sub(1).max(1));
        (
            Self {
                table_entries: self.table_entries,
                sessions: self.sessions[..cut].to_vec(),
            },
            Self {
                table_entries: self.table_entries,
                sessions: self.sessions[cut..].to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> AccessWorkload {
        AccessWorkload::new(
            10,
            vec![vec![0, 0, 1], vec![0, 2], vec![0, 1, 2, 3], vec![9]],
        )
    }

    #[test]
    fn statistics_are_correct() {
        let w = workload();
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
        assert!((w.avg_queries_per_inference() - 2.5).abs() < 1e-9);
        let freq = w.frequencies();
        assert_eq!(freq[0], 4);
        assert_eq!(freq[1], 2);
        assert_eq!(freq[9], 1);
        assert_eq!(freq.iter().sum::<u64>(), 10);
    }

    #[test]
    fn coverage_reflects_skew() {
        let w = workload();
        assert!((w.coverage_of_top(1) - 0.4).abs() < 1e-9);
        assert!((w.coverage_of_top(10) - 1.0).abs() < 1e-9);
        assert!(w.coverage_of_top(1) > 1.0 / 10.0); // more skewed than uniform
    }

    #[test]
    fn split_preserves_sessions() {
        let w = workload();
        let (train, test) = w.split(0.5);
        assert_eq!(train.len() + test.len(), w.len());
        assert_eq!(train.table_entries, 10);
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside table")]
    fn out_of_range_session_panics() {
        let _ = AccessWorkload::new(4, vec![vec![4]]);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_split_fraction_panics() {
        let _ = workload().split(1.0);
    }
}
