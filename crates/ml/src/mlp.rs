//! The 2-layer MLP click-through-rate model used for the recommendation
//! workloads (the paper's MovieLens / Taobao models are 2-layer MLPs fed by
//! pooled embedding features).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tensor::{dot, relu, sigmoid, Matrix};

/// Hyper-parameters of the MLP.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature dimension (pooled embeddings + dense features).
    pub input_dim: usize,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            input_dim: 32,
            hidden_dim: 64,
            learning_rate: 0.05,
        }
    }
}

/// A 2-layer MLP with a ReLU hidden layer and a sigmoid output, trained with
/// SGD on binary cross-entropy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MlpModel {
    config: MlpConfig,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Vec<f32>,
    b2: f32,
}

impl MlpModel {
    /// Initialize with small random weights.
    pub fn new<R: Rng + ?Sized>(config: MlpConfig, rng: &mut R) -> Self {
        let scale1 = 1.0 / (config.input_dim as f32).sqrt();
        let scale2 = 1.0 / (config.hidden_dim as f32).sqrt();
        Self {
            config,
            w1: Matrix::random(config.hidden_dim, config.input_dim, scale1, rng),
            b1: vec![0.0; config.hidden_dim],
            w2: (0..config.hidden_dim)
                .map(|_| rng.gen_range(-scale2..=scale2))
                .collect(),
            b2: 0.0,
        }
    }

    /// The model's configuration.
    #[must_use]
    pub fn config(&self) -> MlpConfig {
        self.config
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.w1.parameter_count() + self.b1.len() + self.w2.len() + 1
    }

    /// Approximate size in bytes of the on-device model (f32 parameters).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.parameter_count() * 4
    }

    fn hidden(&self, input: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let pre: Vec<f32> = self
            .w1
            .matvec(input)
            .iter()
            .zip(&self.b1)
            .map(|(z, b)| z + b)
            .collect();
        let post = pre.iter().map(|&z| relu(z)).collect();
        (pre, post)
    }

    /// Predicted click probability for one input vector.
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match `config.input_dim`.
    #[must_use]
    pub fn predict(&self, input: &[f32]) -> f32 {
        assert_eq!(input.len(), self.config.input_dim, "input width mismatch");
        let (_, hidden) = self.hidden(input);
        sigmoid(dot(&hidden, &self.w2) + self.b2)
    }

    /// One SGD step on a single example; returns the example's log loss.
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match `config.input_dim`.
    pub fn train_step(&mut self, input: &[f32], label: bool) -> f32 {
        assert_eq!(input.len(), self.config.input_dim, "input width mismatch");
        let (pre, hidden) = self.hidden(input);
        let probability = sigmoid(dot(&hidden, &self.w2) + self.b2);
        let target = if label { 1.0 } else { 0.0 };
        let d_logit = probability - target;
        let lr = self.config.learning_rate;

        // Output layer gradients.
        let d_hidden: Vec<f32> = self.w2.iter().map(|w| w * d_logit).collect();
        for (w, h) in self.w2.iter_mut().zip(&hidden) {
            *w -= lr * d_logit * h;
        }
        self.b2 -= lr * d_logit;

        // Hidden layer gradients through the ReLU.
        let d_pre: Vec<f32> = d_hidden
            .iter()
            .zip(&pre)
            .map(|(d, &z)| if z > 0.0 { *d } else { 0.0 })
            .collect();
        self.w1.sgd_rank_one(&d_pre, input, lr);
        for (b, d) in self.b1.iter_mut().zip(&d_pre) {
            *b -= lr * d;
        }

        let eps = 1e-7;
        let p = probability.clamp(eps, 1.0 - eps);
        if label {
            -p.ln()
        } else {
            -(1.0 - p).ln()
        }
    }

    /// Train for `epochs` passes over `(input, label)` examples, returning the
    /// mean loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty.
    pub fn train(&mut self, examples: &[(Vec<f32>, bool)], epochs: usize) -> f32 {
        assert!(!examples.is_empty(), "cannot train on an empty dataset");
        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs {
            last_epoch_loss = 0.0;
            for (input, label) in examples {
                last_epoch_loss += self.train_step(input, *label);
            }
            last_epoch_loss /= examples.len() as f32;
        }
        last_epoch_loss
    }

    /// Score a batch of inputs.
    #[must_use]
    pub fn predict_batch(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        inputs.iter().map(|input| self.predict(input)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A linearly separable synthetic task: label = (w·x > 0).
    fn synthetic_dataset(n: usize, dim: usize, seed: u64) -> Vec<(Vec<f32>, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        (0..n)
            .map(|_| {
                let x: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..=1.0)).collect();
                let label = dot(&x, &weights) + rng.gen_range(-0.2..0.2) > 0.0;
                (x, label)
            })
            .collect()
    }

    #[test]
    fn training_improves_auc_over_chance() {
        let config = MlpConfig {
            input_dim: 16,
            hidden_dim: 32,
            learning_rate: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = MlpModel::new(config, &mut rng);
        let all = synthetic_dataset(1100, 16, 1);
        let (train, test) = all.split_at(800);
        let (train, test) = (train.to_vec(), test.to_vec());

        let untrained_scores: Vec<f32> = test.iter().map(|(x, _)| model.predict(x)).collect();
        let labels: Vec<bool> = test.iter().map(|(_, y)| *y).collect();
        let untrained_auc = roc_auc(&untrained_scores, &labels);

        let final_loss = model.train(&train, 5);
        let trained_scores: Vec<f32> = test.iter().map(|(x, _)| model.predict(x)).collect();
        let trained_auc = roc_auc(&trained_scores, &labels);

        assert!(final_loss < 0.6, "final loss {final_loss}");
        assert!(trained_auc > 0.85, "trained AUC {trained_auc}");
        assert!(trained_auc > untrained_auc);
    }

    #[test]
    fn loss_decreases_during_training() {
        let config = MlpConfig {
            input_dim: 8,
            hidden_dim: 16,
            learning_rate: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = MlpModel::new(config, &mut rng);
        let data = synthetic_dataset(400, 8, 3);
        let early = model.train(&data, 1);
        let late = model.train(&data, 5);
        assert!(late < early, "loss should decrease: {early} -> {late}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let mut rng = StdRng::seed_from_u64(13);
        let model = MlpModel::new(MlpConfig::default(), &mut rng);
        let input = vec![0.3; 32];
        let p = model.predict(&input);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(model.predict_batch(&[input.clone(), input]).len(), 2);
    }

    #[test]
    fn model_is_small_enough_for_devices() {
        let mut rng = StdRng::seed_from_u64(14);
        let model = MlpModel::new(
            MlpConfig {
                input_dim: 64,
                hidden_dim: 128,
                learning_rate: 0.05,
            },
            &mut rng,
        );
        // The paper's on-device models are a few MB; this one is far smaller.
        assert!(model.size_bytes() < 1_000_000);
        assert!(model.parameter_count() > 1_000);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let mut rng = StdRng::seed_from_u64(15);
        let model = MlpModel::new(MlpConfig::default(), &mut rng);
        let _ = model.predict(&[0.0; 3]);
    }
}
