//! A single-layer LSTM language model (the paper's WikiText-2 workload).
//!
//! The model follows the standard architecture: a word-embedding lookup, one
//! LSTM layer and a softmax projection over the vocabulary, trained with
//! truncated back-propagation through time. In the private-inference setting
//! the embedding table is the part hosted on the servers and fetched with
//! PIR; a dropped lookup replaces the word's embedding with zeros, which is
//! how dropped queries degrade perplexity.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::embedding::EmbeddingTable;
use crate::metrics::perplexity;
use crate::tensor::{sigmoid, softmax, Matrix};

/// Hyper-parameters of the LSTM language model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Vocabulary size (= embedding-table entries).
    pub vocab_size: usize,
    /// Word-embedding dimensionality.
    pub embedding_dim: usize,
    /// Hidden state width.
    pub hidden_dim: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Gradient clipping threshold (absolute value per component).
    pub gradient_clip: f32,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            vocab_size: 1000,
            embedding_dim: 32,
            hidden_dim: 64,
            learning_rate: 0.1,
            gradient_clip: 1.0,
        }
    }
}

/// Per-time-step cache used by back-propagation through time.
struct StepCache {
    token: usize,
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    h: Vec<f32>,
    probabilities: Vec<f32>,
    target: usize,
}

/// The LSTM language model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LstmLanguageModel {
    config: LstmConfig,
    embeddings: EmbeddingTable,
    /// Gate weights: rows = 4·hidden (i, f, g, o stacked), cols = embedding + hidden.
    gate_weights: Matrix,
    gate_bias: Vec<f32>,
    /// Output projection: vocab × hidden.
    output_weights: Matrix,
    output_bias: Vec<f32>,
}

/// Intermediate activations of one LSTM step: `(h, c, i, f, g, o, z)`,
/// kept for the backward pass.
type StepState = (
    Vec<f32>,
    Vec<f32>,
    Vec<f32>,
    Vec<f32>,
    Vec<f32>,
    Vec<f32>,
    Vec<f32>,
);

impl LstmLanguageModel {
    /// Initialize with small random weights.
    pub fn new<R: Rng + ?Sized>(config: LstmConfig, rng: &mut R) -> Self {
        let input_dim = config.embedding_dim + config.hidden_dim;
        let gate_scale = 1.0 / (input_dim as f32).sqrt();
        let out_scale = 1.0 / (config.hidden_dim as f32).sqrt();
        let mut gate_bias = vec![0.0; 4 * config.hidden_dim];
        // Forget-gate bias initialized to 1.0, the standard trick for stable
        // early training.
        for bias in gate_bias
            .iter_mut()
            .skip(config.hidden_dim)
            .take(config.hidden_dim)
        {
            *bias = 1.0;
        }
        Self {
            config,
            embeddings: EmbeddingTable::random(config.vocab_size, config.embedding_dim, rng),
            gate_weights: Matrix::random(4 * config.hidden_dim, input_dim, gate_scale, rng),
            gate_bias,
            output_weights: Matrix::random(config.vocab_size, config.hidden_dim, out_scale, rng),
            output_bias: vec![0.0; config.vocab_size],
        }
    }

    /// The model's configuration.
    #[must_use]
    pub fn config(&self) -> LstmConfig {
        self.config
    }

    /// The word-embedding table (the part served via PIR).
    #[must_use]
    pub fn embeddings(&self) -> &EmbeddingTable {
        &self.embeddings
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.embeddings.entries() * self.embeddings.dimension()
            + self.gate_weights.parameter_count()
            + self.gate_bias.len()
            + self.output_weights.parameter_count()
            + self.output_bias.len()
    }

    /// Embedding vector for a token, or zeros when the lookup was dropped.
    fn input_vector(&self, token: usize, dropped: bool) -> Vec<f32> {
        if dropped || token >= self.config.vocab_size {
            vec![0.0; self.config.embedding_dim]
        } else {
            self.embeddings.row(token).to_vec()
        }
    }

    fn step(&self, token: usize, dropped: bool, h_prev: &[f32], c_prev: &[f32]) -> StepState {
        let hidden = self.config.hidden_dim;
        let x = self.input_vector(token, dropped);
        let mut z = Vec::with_capacity(x.len() + h_prev.len());
        z.extend_from_slice(&x);
        z.extend_from_slice(h_prev);

        let pre: Vec<f32> = self
            .gate_weights
            .matvec(&z)
            .iter()
            .zip(&self.gate_bias)
            .map(|(v, b)| v + b)
            .collect();
        let i: Vec<f32> = pre[..hidden].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f32> = pre[hidden..2 * hidden]
            .iter()
            .map(|&v| sigmoid(v))
            .collect();
        let g: Vec<f32> = pre[2 * hidden..3 * hidden]
            .iter()
            .map(|&v| v.tanh())
            .collect();
        let o: Vec<f32> = pre[3 * hidden..].iter().map(|&v| sigmoid(v)).collect();
        let c: Vec<f32> = (0..hidden)
            .map(|k| f[k] * c_prev[k] + i[k] * g[k])
            .collect();
        let h: Vec<f32> = (0..hidden).map(|k| o[k] * c[k].tanh()).collect();
        (x, i, f, g, o, c, h)
    }

    /// Evaluate the per-token negative log-likelihood of predicting each next
    /// token in `tokens`, optionally treating some positions' embedding
    /// lookups as dropped.
    ///
    /// `dropped[t]` says whether the embedding for `tokens[t]` was dropped.
    /// Returns the probabilities assigned to each target token.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is shorter than two tokens or `dropped` has a
    /// different length than `tokens`.
    #[must_use]
    pub fn sequence_probabilities(&self, tokens: &[usize], dropped: &[bool]) -> Vec<f32> {
        assert!(tokens.len() >= 2, "need at least two tokens to predict");
        assert_eq!(tokens.len(), dropped.len(), "one drop flag per token");
        let hidden = self.config.hidden_dim;
        let mut h = vec![0.0; hidden];
        let mut c = vec![0.0; hidden];
        let mut probabilities = Vec::with_capacity(tokens.len() - 1);
        for t in 0..tokens.len() - 1 {
            let (_, _, _, _, _, new_c, new_h) = self.step(tokens[t], dropped[t], &h, &c);
            c = new_c;
            h = new_h;
            let logits: Vec<f32> = self
                .output_weights
                .matvec(&h)
                .iter()
                .zip(&self.output_bias)
                .map(|(v, b)| v + b)
                .collect();
            let probs = softmax(&logits);
            probabilities.push(probs[tokens[t + 1].min(self.config.vocab_size - 1)]);
        }
        probabilities
    }

    /// Perplexity over a set of sequences (no dropped lookups).
    #[must_use]
    pub fn evaluate_perplexity(&self, sequences: &[Vec<usize>]) -> f64 {
        self.evaluate_perplexity_with_drops(sequences, &|_, _| false)
    }

    /// Perplexity over a set of sequences where `is_dropped(sequence_index,
    /// position)` marks embedding lookups that were dropped by the PIR layer.
    #[must_use]
    pub fn evaluate_perplexity_with_drops(
        &self,
        sequences: &[Vec<usize>],
        is_dropped: &dyn Fn(usize, usize) -> bool,
    ) -> f64 {
        let mut total_nll = 0.0f64;
        let mut count = 0usize;
        for (sequence_index, tokens) in sequences.iter().enumerate() {
            if tokens.len() < 2 {
                continue;
            }
            let dropped: Vec<bool> = (0..tokens.len())
                .map(|position| is_dropped(sequence_index, position))
                .collect();
            for p in self.sequence_probabilities(tokens, &dropped) {
                total_nll += -f64::from(p.max(1e-12)).ln();
                count += 1;
            }
        }
        if count == 0 {
            return f64::INFINITY;
        }
        perplexity(total_nll / count as f64)
    }

    /// One truncated-BPTT SGD step over a single sequence; returns the mean
    /// per-token loss.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is shorter than two tokens.
    pub fn train_sequence(&mut self, tokens: &[usize]) -> f32 {
        assert!(tokens.len() >= 2, "need at least two tokens to train");
        let hidden = self.config.hidden_dim;
        let embed = self.config.embedding_dim;
        let lr = self.config.learning_rate;
        let clip = self.config.gradient_clip;

        // Forward pass, caching per-step state.
        let mut caches: Vec<StepCache> = Vec::with_capacity(tokens.len() - 1);
        let mut h = vec![0.0; hidden];
        let mut c = vec![0.0; hidden];
        let mut total_loss = 0.0f32;
        for t in 0..tokens.len() - 1 {
            let token = tokens[t].min(self.config.vocab_size - 1);
            let target = tokens[t + 1].min(self.config.vocab_size - 1);
            let (x, i, f, g, o, new_c, new_h) = self.step(token, false, &h, &c);
            let logits: Vec<f32> = self
                .output_weights
                .matvec(&new_h)
                .iter()
                .zip(&self.output_bias)
                .map(|(v, b)| v + b)
                .collect();
            let probabilities = softmax(&logits);
            total_loss += -probabilities[target].max(1e-12).ln();
            caches.push(StepCache {
                token,
                x,
                h_prev: h.clone(),
                c_prev: c.clone(),
                i,
                f,
                g,
                o,
                c: new_c.clone(),
                h: new_h.clone(),
                probabilities,
                target,
            });
            h = new_h;
            c = new_c;
        }

        // Backward pass through time.
        let clamp = |v: f32| v.clamp(-clip, clip);
        let mut dh_next = vec![0.0f32; hidden];
        let mut dc_next = vec![0.0f32; hidden];
        for cache in caches.iter().rev() {
            // Output layer.
            let mut d_logits = cache.probabilities.clone();
            d_logits[cache.target] -= 1.0;
            let mut dh = self.output_weights.matvec_transposed(&d_logits);
            for (acc, extra) in dh.iter_mut().zip(&dh_next) {
                *acc += extra;
            }
            self.output_weights.sgd_rank_one(&d_logits, &cache.h, lr);
            for (b, d) in self.output_bias.iter_mut().zip(&d_logits) {
                *b -= lr * clamp(*d);
            }

            // LSTM cell.
            let mut d_pre = vec![0.0f32; 4 * hidden];
            let mut dc = dc_next.clone();
            let mut dh_prev = vec![0.0f32; hidden];
            let mut dc_prev = vec![0.0f32; hidden];
            for k in 0..hidden {
                let tanh_c = cache.c[k].tanh();
                let d_o = dh[k] * tanh_c;
                dc[k] += dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c);
                let d_i = dc[k] * cache.g[k];
                let d_g = dc[k] * cache.i[k];
                let d_f = dc[k] * cache.c_prev[k];
                dc_prev[k] = dc[k] * cache.f[k];
                d_pre[k] = clamp(d_i * cache.i[k] * (1.0 - cache.i[k]));
                d_pre[hidden + k] = clamp(d_f * cache.f[k] * (1.0 - cache.f[k]));
                d_pre[2 * hidden + k] = clamp(d_g * (1.0 - cache.g[k] * cache.g[k]));
                d_pre[3 * hidden + k] = clamp(d_o * cache.o[k] * (1.0 - cache.o[k]));
            }

            // Gate weight updates and gradient w.r.t. the concatenated input.
            let mut z = Vec::with_capacity(embed + hidden);
            z.extend_from_slice(&cache.x);
            z.extend_from_slice(&cache.h_prev);
            let dz = self.gate_weights.matvec_transposed(&d_pre);
            self.gate_weights.sgd_rank_one(&d_pre, &z, lr);
            for (b, d) in self.gate_bias.iter_mut().zip(&d_pre) {
                *b -= lr * clamp(*d);
            }

            // Embedding update for this token.
            {
                let row = self.embeddings.row_mut(cache.token);
                for (weight, d) in row.iter_mut().zip(&dz[..embed]) {
                    *weight -= lr * clamp(*d);
                }
            }
            dh_prev.copy_from_slice(&dz[embed..]);

            dh_next = dh_prev;
            dc_next = dc_prev;
        }

        total_loss / (tokens.len() - 1) as f32
    }

    /// Train for `epochs` passes over the corpus, returning the mean loss of
    /// the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn train(&mut self, corpus: &[Vec<usize>], epochs: usize) -> f32 {
        assert!(!corpus.is_empty(), "cannot train on an empty corpus");
        let mut last = 0.0;
        for _ in 0..epochs {
            last = 0.0;
            let mut counted = 0usize;
            for sequence in corpus {
                if sequence.len() < 2 {
                    continue;
                }
                last += self.train_sequence(sequence);
                counted += 1;
            }
            last /= counted.max(1) as f32;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic synthetic "language": token t is followed by
    /// (3t + 1) mod vocab with high probability, or a random token otherwise.
    fn corpus(vocab: usize, sequences: usize, length: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..sequences)
            .map(|_| {
                let mut token = rng.gen_range(0..vocab);
                let mut out = vec![token];
                for _ in 1..length {
                    token = if rng.gen_bool(0.9) {
                        (3 * token + 1) % vocab
                    } else {
                        rng.gen_range(0..vocab)
                    };
                    out.push(token);
                }
                out
            })
            .collect()
    }

    fn small_config() -> LstmConfig {
        LstmConfig {
            vocab_size: 50,
            embedding_dim: 16,
            hidden_dim: 32,
            learning_rate: 0.15,
            gradient_clip: 1.0,
        }
    }

    #[test]
    fn training_reduces_perplexity_well_below_uniform() {
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(21);
        let mut model = LstmLanguageModel::new(config, &mut rng);
        let train = corpus(config.vocab_size, 120, 16, 1);
        let test = corpus(config.vocab_size, 30, 16, 2);

        let before = model.evaluate_perplexity(&test);
        model.train(&train, 3);
        let after = model.evaluate_perplexity(&test);

        // Uniform guessing gives ppl = vocab_size (50); the structure is
        // learnable so training should land far below that and improve on the
        // untrained model.
        assert!(
            after < before,
            "ppl should improve: {before:.1} -> {after:.1}"
        );
        assert!(after < 30.0, "trained ppl {after:.1} too high");
    }

    #[test]
    fn dropped_embeddings_hurt_perplexity() {
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(22);
        let mut model = LstmLanguageModel::new(config, &mut rng);
        let train = corpus(config.vocab_size, 100, 16, 3);
        let test = corpus(config.vocab_size, 30, 16, 4);
        model.train(&train, 3);

        let clean = model.evaluate_perplexity(&test);
        let degraded =
            model.evaluate_perplexity_with_drops(&test, &|_, position| position % 2 == 0);
        assert!(
            degraded > clean,
            "dropping half the lookups should hurt: {clean:.1} vs {degraded:.1}"
        );
    }

    #[test]
    fn sequence_probabilities_are_valid() {
        let mut rng = StdRng::seed_from_u64(23);
        let model = LstmLanguageModel::new(small_config(), &mut rng);
        let tokens = vec![1usize, 2, 3, 4, 5];
        let probs = model.sequence_probabilities(&tokens, &[false; 5]);
        assert_eq!(probs.len(), 4);
        assert!(probs.iter().all(|p| *p > 0.0 && *p <= 1.0));
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(24);
        let model = LstmLanguageModel::new(config, &mut rng);
        let expected = 50 * 16                       // embeddings
            + 4 * 32 * (16 + 32) + 4 * 32            // gates
            + 50 * 32 + 50; // output projection
        assert_eq!(model.parameter_count(), expected);
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn short_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(25);
        let model = LstmLanguageModel::new(small_config(), &mut rng);
        let _ = model.sequence_probabilities(&[1], &[false]);
    }
}
