//! Model-quality metrics used by the paper's evaluation.

/// Area under the ROC curve for binary predictions.
///
/// Computed with the rank-statistic formulation (equivalent to the
/// probability that a random positive example is scored above a random
/// negative example); ties receive half credit.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or contain only one
/// class (AUC is undefined in that case).
#[must_use]
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "one label per score required");
    assert!(!scores.is_empty(), "AUC of an empty set is undefined");
    let positives = labels.iter().filter(|l| **l).count();
    let negatives = labels.len() - positives;
    assert!(
        positives > 0 && negatives > 0,
        "AUC requires both positive and negative examples"
    );

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("scores are finite")
    });

    // Assign average ranks to ties, then use the Mann–Whitney U statistic.
    let mut rank_sum_positive = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let average_rank = (i + j) as f64 / 2.0 + 1.0;
        for &index in &order[i..=j] {
            if labels[index] {
                rank_sum_positive += average_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_positive - (positives as f64 * (positives as f64 + 1.0)) / 2.0;
    u / (positives as f64 * negatives as f64)
}

/// Binary cross-entropy (log loss), averaged over examples.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn log_loss(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "one label per score required");
    assert!(!scores.is_empty(), "log loss of an empty set is undefined");
    let eps = 1e-7f64;
    let total: f64 = scores
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = (f64::from(p)).clamp(eps, 1.0 - eps);
            if y {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / scores.len() as f64
}

/// Classification accuracy at a 0.5 threshold.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn accuracy(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "one label per score required");
    assert!(!scores.is_empty(), "accuracy of an empty set is undefined");
    let correct = scores
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| (p >= 0.5) == y)
        .count();
    correct as f64 / scores.len() as f64
}

/// Perplexity from an average per-token negative log-likelihood (natural log).
#[must_use]
pub fn perplexity(mean_nll_nats: f64) -> f64 {
    mean_nll_nats.exp()
}

/// Perplexity computed directly from per-token probabilities.
///
/// # Panics
///
/// Panics if `token_probabilities` is empty.
#[must_use]
pub fn perplexity_from_probabilities(token_probabilities: &[f32]) -> f64 {
    assert!(
        !token_probabilities.is_empty(),
        "perplexity of an empty sequence is undefined"
    );
    let mean_nll = token_probabilities
        .iter()
        .map(|&p| -f64::from(p.max(1e-12)).ln())
        .sum::<f64>()
        / token_probabilities.len() as f64;
    perplexity(mean_nll)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reversed_ranking_gives_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(roc_auc(&scores, &labels).abs() < 1e-9);
    }

    #[test]
    fn constant_scores_give_auc_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_is_threshold_free() {
        // Scaling scores monotonically must not change AUC.
        let scores = [0.9f32, 0.7, 0.6, 0.3, 0.2];
        let scaled: Vec<f32> = scores.iter().map(|s| s * 0.1 + 0.01).collect();
        let labels = [true, false, true, false, false];
        assert!((roc_auc(&scores, &labels) - roc_auc(&scaled, &labels)).abs() < 1e-9);
    }

    #[test]
    fn log_loss_prefers_confident_correct_predictions() {
        let labels = [true, false];
        assert!(log_loss(&[0.9, 0.1], &labels) < log_loss(&[0.6, 0.4], &labels));
        assert!(log_loss(&[0.6, 0.4], &labels) < log_loss(&[0.4, 0.6], &labels));
    }

    #[test]
    fn accuracy_counts_threshold_hits() {
        let labels = [true, false, true, false];
        assert!((accuracy(&[0.9, 0.1, 0.4, 0.6], &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn perplexity_of_uniform_distribution_is_vocab_size() {
        let probabilities = vec![1.0 / 64.0; 100];
        assert!((perplexity_from_probabilities(&probabilities) - 64.0).abs() < 1e-3);
        assert!((perplexity(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both positive and negative")]
    fn auc_single_class_panics() {
        let _ = roc_auc(&[0.5, 0.6], &[true, true]);
    }
}
