//! Float embedding tables and their fixed-point PIR representation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fixed-point scale used when quantizing embeddings to bytes: values are
/// stored as `round(value * 2^16)` in an `i32`, giving ~1e-5 resolution over
/// the ±4 range typical of trained embeddings.
const FIXED_POINT_SCALE: f32 = 65536.0;

/// A dense embedding table: one `dimension`-wide float vector per index.
///
/// The *server* hosts the quantized byte form (via [`EmbeddingTable::to_entries`]);
/// the *client* dequantizes retrieved rows back to floats before feeding the
/// on-device model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingTable {
    dimension: usize,
    values: Vec<f32>,
}

impl EmbeddingTable {
    /// Create a table of `entries × dimension` zeros.
    #[must_use]
    pub fn zeros(entries: usize, dimension: usize) -> Self {
        Self {
            dimension,
            values: vec![0.0; entries * dimension],
        }
    }

    /// Create a table with small random entries (uniform in `[-0.5, 0.5]`).
    pub fn random<R: Rng + ?Sized>(entries: usize, dimension: usize, rng: &mut R) -> Self {
        let values = (0..entries * dimension)
            .map(|_| rng.gen_range(-0.5..=0.5))
            .collect();
        Self { dimension, values }
    }

    /// Number of entries (rows).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.values.len().checked_div(self.dimension).unwrap_or(0)
    }

    /// Embedding dimensionality.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Bytes per entry in the quantized PIR representation.
    #[must_use]
    pub fn entry_bytes(&self) -> usize {
        self.dimension * 4
    }

    /// Borrow one embedding vector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn row(&self, index: usize) -> &[f32] {
        assert!(index < self.entries(), "embedding {index} out of bounds");
        &self.values[index * self.dimension..(index + 1) * self.dimension]
    }

    /// Mutably borrow one embedding vector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn row_mut(&mut self, index: usize) -> &mut [f32] {
        assert!(index < self.entries(), "embedding {index} out of bounds");
        &mut self.values[index * self.dimension..(index + 1) * self.dimension]
    }

    /// Mean-pool a set of embeddings (the standard sparse-feature pooling in
    /// recommendation models). Missing (dropped) indices are simply skipped,
    /// which is exactly how dropped PIR queries degrade the model input.
    #[must_use]
    pub fn mean_pool(&self, indices: &[usize]) -> Vec<f32> {
        let mut pooled = vec![0.0f32; self.dimension];
        let mut count = 0usize;
        for &index in indices {
            if index >= self.entries() {
                continue;
            }
            for (acc, v) in pooled.iter_mut().zip(self.row(index)) {
                *acc += v;
            }
            count += 1;
        }
        if count > 0 {
            for value in &mut pooled {
                *value /= count as f32;
            }
        }
        pooled
    }

    /// Quantize the whole table into byte entries suitable for a PIR server.
    #[must_use]
    pub fn to_entries(&self) -> Vec<Vec<u8>> {
        (0..self.entries())
            .map(|i| self.entry_to_bytes(i))
            .collect()
    }

    /// Quantize one entry.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn entry_to_bytes(&self, index: usize) -> Vec<u8> {
        self.row(index)
            .iter()
            .flat_map(|&v| ((v * FIXED_POINT_SCALE).round() as i32).to_le_bytes())
            .collect()
    }

    /// Dequantize a retrieved byte entry back into floats.
    ///
    /// # Panics
    ///
    /// Panics if the byte length is not a multiple of 4.
    #[must_use]
    pub fn bytes_to_vector(bytes: &[u8]) -> Vec<f32> {
        assert!(
            bytes.len().is_multiple_of(4),
            "quantized entries are 4-byte aligned"
        );
        bytes
            .chunks_exact(4)
            .map(|chunk| {
                let raw = i32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                raw as f32 / FIXED_POINT_SCALE
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantization_roundtrips_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(1);
        let table = EmbeddingTable::random(32, 16, &mut rng);
        for index in 0..32 {
            let bytes = table.entry_to_bytes(index);
            assert_eq!(bytes.len(), table.entry_bytes());
            let back = EmbeddingTable::bytes_to_vector(&bytes);
            for (a, b) in table.row(index).iter().zip(&back) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn mean_pool_averages_present_rows() {
        let mut table = EmbeddingTable::zeros(4, 2);
        table.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        table.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        let pooled = table.mean_pool(&[0, 1]);
        assert_eq!(pooled, vec![2.0, 3.0]);
        // Out-of-range (dropped) indices are skipped.
        let partial = table.mean_pool(&[0, 99]);
        assert_eq!(partial, vec![1.0, 2.0]);
        // Pooling nothing yields zeros.
        assert_eq!(table.mean_pool(&[]), vec![0.0, 0.0]);
    }

    #[test]
    fn dimensions_are_consistent() {
        let table = EmbeddingTable::zeros(10, 8);
        assert_eq!(table.entries(), 10);
        assert_eq!(table.dimension(), 8);
        assert_eq!(table.entry_bytes(), 32);
        assert_eq!(table.to_entries().len(), 10);
    }

    proptest! {
        #[test]
        fn prop_quantization_error_is_bounded(values in proptest::collection::vec(-4.0f32..4.0, 1..32)) {
            let dimension = values.len();
            let mut table = EmbeddingTable::zeros(1, dimension);
            table.row_mut(0).copy_from_slice(&values);
            let back = EmbeddingTable::bytes_to_vector(&table.entry_to_bytes(0));
            for (a, b) in values.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
