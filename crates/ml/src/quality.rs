//! The model-quality ↔ dropped-queries relationship used by the co-design.
//!
//! Batch PIR and the fixed query budgets drop some embedding lookups; the
//! paper's Figures 11 and 16–20 trade system cost against the resulting model
//! quality. The *empirical* relationship comes from evaluating the trained
//! models with dropped lookups ([`crate::mlp`] / [`crate::lstm`]); this module
//! provides a calibrated parametric [`QualityModel`] so large parameter sweeps
//! (thousands of co-design points) don't need to re-run model evaluation for
//! every point, plus the Acc-eco / Acc-relaxed acceptance rules.

use serde::{Deserialize, Serialize};

/// Which quality metric an application reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityMetric {
    /// ROC-AUC: higher is better (recommendation models).
    Auc,
    /// Perplexity: lower is better (language models).
    Perplexity,
}

impl QualityMetric {
    /// Whether `candidate` is at least as good as `reference` under this
    /// metric's direction.
    #[must_use]
    pub fn at_least_as_good(self, candidate: f64, reference: f64) -> bool {
        match self {
            QualityMetric::Auc => candidate >= reference,
            QualityMetric::Perplexity => candidate <= reference,
        }
    }

    /// Relative degradation of `candidate` versus `baseline` (positive =
    /// worse), expressed as a fraction of the baseline.
    #[must_use]
    pub fn relative_degradation(self, candidate: f64, baseline: f64) -> f64 {
        match self {
            QualityMetric::Auc => (baseline - candidate) / baseline,
            QualityMetric::Perplexity => (candidate - baseline) / baseline,
        }
    }
}

/// Parametric map from drop rate to model quality.
///
/// `quality(drop) = baseline ∓ span · drop^shape` (minus for AUC, plus for
/// perplexity). `shape < 1` makes small drop rates relatively benign, which
/// is what the noise-tolerance of embedding-based models shows empirically:
/// the ML co-design leans exactly on this tolerance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QualityModel {
    /// The metric being modelled.
    pub metric: QualityMetric,
    /// Quality with no dropped lookups.
    pub baseline: f64,
    /// Total quality lost (AUC) or gained (perplexity) when *every* lookup is
    /// dropped.
    pub span: f64,
    /// Curvature exponent.
    pub shape: f64,
}

impl QualityModel {
    /// Calibrated model for the MovieLens-like recommendation task
    /// (baseline AUC 0.7845 as reported by the paper; dropping all sparse
    /// features degrades to chance).
    #[must_use]
    pub fn movielens() -> Self {
        Self {
            metric: QualityMetric::Auc,
            baseline: 0.7845,
            span: 0.7845 - 0.5,
            // Embedding-based recommenders are noise-tolerant: dropping ~10 %
            // of lookups costs roughly the 0.5 % AUC the paper's Acc-relaxed
            // target allows, while dropping everything degrades to chance.
            shape: 1.9,
        }
    }

    /// Calibrated model for the Taobao-like recommendation task (baseline AUC
    /// 0.58; sparse features are only a fraction of the inputs, so even
    /// dropping everything loses little).
    #[must_use]
    pub fn taobao() -> Self {
        Self {
            metric: QualityMetric::Auc,
            baseline: 0.58,
            span: 0.0055,
            shape: 1.0,
        }
    }

    /// Calibrated model for the WikiText-2-like language model (baseline
    /// perplexity 92; dropping all word embeddings roughly doubles it).
    #[must_use]
    pub fn wikitext2() -> Self {
        Self {
            metric: QualityMetric::Perplexity,
            baseline: 92.0,
            span: 95.0,
            // Dropping ~15 % of word-embedding lookups costs about the 5 %
            // perplexity the paper's relaxed target allows; dropping all of
            // them roughly doubles perplexity.
            shape: 1.6,
        }
    }

    /// Build a model from an empirically measured `(drop_rate, quality)`
    /// sweep by least-squares fitting the span with a fixed shape.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are provided.
    #[must_use]
    pub fn fit(metric: QualityMetric, baseline: f64, points: &[(f64, f64)], shape: f64) -> Self {
        assert!(points.len() >= 2, "need at least two calibration points");
        // Least squares for span in quality = baseline ± span * drop^shape.
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        for &(drop, quality) in points {
            let basis = drop.powf(shape);
            let delta = match metric {
                QualityMetric::Auc => baseline - quality,
                QualityMetric::Perplexity => quality - baseline,
            };
            numerator += basis * delta;
            denominator += basis * basis;
        }
        let span = if denominator > 0.0 {
            (numerator / denominator).max(0.0)
        } else {
            0.0
        };
        Self {
            metric,
            baseline,
            span,
            shape,
        }
    }

    /// Predicted quality at a given drop rate.
    ///
    /// # Panics
    ///
    /// Panics if `drop_rate` is outside `[0, 1]`.
    #[must_use]
    pub fn quality_at(&self, drop_rate: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&drop_rate),
            "drop rate must be in [0, 1]"
        );
        let delta = self.span * drop_rate.powf(self.shape);
        match self.metric {
            QualityMetric::Auc => self.baseline - delta,
            QualityMetric::Perplexity => self.baseline + delta,
        }
    }

    /// The Acc-eco acceptance rule: the configuration must preserve the full
    /// baseline quality (up to a hair of numerical slack).
    #[must_use]
    pub fn accepts_eco(&self, drop_rate: f64) -> bool {
        self.metric
            .relative_degradation(self.quality_at(drop_rate), self.baseline)
            <= 1e-4
    }

    /// The Acc-relaxed acceptance rule: relative degradation of at most
    /// `tolerance` (the paper uses 0.5 % for the recommendation tasks and 5 %
    /// for the language model).
    #[must_use]
    pub fn accepts_relaxed(&self, drop_rate: f64, tolerance: f64) -> bool {
        self.metric
            .relative_degradation(self.quality_at(drop_rate), self.baseline)
            <= tolerance
    }

    /// Largest drop rate whose predicted degradation stays within
    /// `tolerance`, found by bisection.
    #[must_use]
    pub fn max_drop_rate_within(&self, tolerance: f64) -> f64 {
        let (mut low, mut high) = (0.0f64, 1.0f64);
        if self.accepts_relaxed(1.0, tolerance) {
            return 1.0;
        }
        for _ in 0..60 {
            let mid = (low + high) / 2.0;
            if self.accepts_relaxed(mid, tolerance) {
                low = mid;
            } else {
                high = mid;
            }
        }
        low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_degrades_monotonically() {
        for model in [
            QualityModel::movielens(),
            QualityModel::taobao(),
            QualityModel::wikitext2(),
        ] {
            let q0 = model.quality_at(0.0);
            let q_half = model.quality_at(0.5);
            let q1 = model.quality_at(1.0);
            assert!((q0 - model.baseline).abs() < 1e-12);
            assert!(
                model.metric.at_least_as_good(q0, q_half),
                "quality should not improve with drops"
            );
            assert!(model.metric.at_least_as_good(q_half, q1));
        }
    }

    #[test]
    fn acceptance_rules_match_the_paper() {
        let movielens = QualityModel::movielens();
        assert!(movielens.accepts_eco(0.0));
        assert!(!movielens.accepts_eco(0.2));
        // 0.5 % AUC tolerance admits a small but nonzero drop rate.
        let max_drop = movielens.max_drop_rate_within(0.005);
        assert!(max_drop > 0.0 && max_drop < 0.2, "max drop {max_drop}");

        let wikitext = QualityModel::wikitext2();
        let lm_drop = wikitext.max_drop_rate_within(0.05);
        assert!(lm_drop > 0.0 && lm_drop < 0.3, "lm drop {lm_drop}");

        // Taobao barely cares about drops (sparse features are a small part
        // of its inputs), so even large drop rates stay within 0.5 %.
        let taobao = QualityModel::taobao();
        assert!(taobao.accepts_relaxed(0.5, 0.005));
    }

    #[test]
    fn fit_recovers_span_from_synthetic_points() {
        let truth = QualityModel {
            metric: QualityMetric::Auc,
            baseline: 0.8,
            span: 0.2,
            shape: 1.0,
        };
        let points: Vec<(f64, f64)> = [0.1, 0.3, 0.6, 0.9]
            .iter()
            .map(|&d| (d, truth.quality_at(d)))
            .collect();
        let fitted = QualityModel::fit(QualityMetric::Auc, 0.8, &points, 1.0);
        assert!((fitted.span - 0.2).abs() < 1e-9);
        assert!((fitted.quality_at(0.5) - truth.quality_at(0.5)).abs() < 1e-9);
    }

    #[test]
    fn metric_direction_is_respected() {
        assert!(QualityMetric::Auc.at_least_as_good(0.8, 0.7));
        assert!(!QualityMetric::Auc.at_least_as_good(0.6, 0.7));
        assert!(QualityMetric::Perplexity.at_least_as_good(80.0, 90.0));
        assert!(!QualityMetric::Perplexity.at_least_as_good(100.0, 90.0));
        assert!(QualityMetric::Perplexity.relative_degradation(101.0, 100.0) > 0.0);
        assert!(QualityMetric::Auc.relative_degradation(0.79, 0.80) > 0.0);
    }

    #[test]
    #[should_panic(expected = "drop rate must be in [0, 1]")]
    fn out_of_range_drop_rate_panics() {
        let _ = QualityModel::movielens().quality_at(1.5);
    }
}
