//! The embedding-table catalog from the paper's Table 1.

use serde::{Deserialize, Serialize};

/// One row of Table 1: a public dataset/model and its embedding-table shape.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Application name as printed in the paper.
    pub application: &'static str,
    /// Approximate number of embedding entries.
    pub entries: u64,
    /// Approximate entry size in bytes.
    pub entry_bytes: u64,
}

impl CatalogEntry {
    /// Approximate total table size in bytes.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.entries * self.entry_bytes
    }

    /// Human-readable table size (GB / MB) as the paper prints it.
    #[must_use]
    pub fn table_size_human(&self) -> String {
        let bytes = self.table_bytes() as f64;
        if bytes >= 1e9 {
            format!("{:.1} GB", bytes / 1e9)
        } else if bytes >= 1e6 {
            format!("{:.0} MB", bytes / 1e6)
        } else {
            format!("{:.0} KB", bytes / 1e3)
        }
    }

    /// Whether the table plausibly fits on a client device (the paper's
    /// threshold discussion uses the ~200 MB extreme app size).
    #[must_use]
    pub fn fits_on_device(&self) -> bool {
        self.table_bytes() <= 200 * 1_000_000
    }
}

/// The catalog of public datasets/models the paper lists in Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DatasetCatalog;

impl DatasetCatalog {
    /// Table 1, in the paper's row order.
    #[must_use]
    pub fn table1() -> Vec<CatalogEntry> {
        vec![
            CatalogEntry {
                application: "Criteo 1 TB Rec.",
                entries: 4_000_000_000,
                entry_bytes: 128,
            },
            CatalogEntry {
                application: "Criteo Rec.",
                entries: 45_000_000,
                entry_bytes: 128,
            },
            CatalogEntry {
                application: "FastText Emb. (Language Model)",
                entries: 2_000_000,
                entry_bytes: 1024,
            },
            CatalogEntry {
                application: "Taobao Rec.",
                entries: 900_000,
                entry_bytes: 128,
            },
            CatalogEntry {
                application: "WikiText2 (Language Model)",
                entries: 131_000,
                entry_bytes: 512,
            },
            CatalogEntry {
                application: "Movielens-20M Rec.",
                entries: 27_000,
                entry_bytes: 128,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table1_shape() {
        let table1 = DatasetCatalog::table1();
        assert_eq!(table1.len(), 6);
        // Ordered from largest to smallest table, as in the paper.
        for pair in table1.windows(2) {
            assert!(pair[0].table_bytes() >= pair[1].table_bytes());
        }
        // Criteo 1TB is hundreds of GB; MovieLens is a few MB.
        assert!(table1[0].table_bytes() > 400_000_000_000);
        assert!(table1[5].table_bytes() < 10_000_000);
    }

    #[test]
    fn only_the_smallest_tables_fit_on_device() {
        let table1 = DatasetCatalog::table1();
        let fitting: Vec<&str> = table1
            .iter()
            .filter(|e| e.fits_on_device())
            .map(|e| e.application)
            .collect();
        assert_eq!(
            fitting,
            vec![
                "Taobao Rec.",
                "WikiText2 (Language Model)",
                "Movielens-20M Rec."
            ]
        );
    }

    #[test]
    fn human_sizes_render() {
        let table1 = DatasetCatalog::table1();
        assert!(table1[0].table_size_human().ends_with("GB"));
        assert!(table1[5].table_size_human().ends_with("MB"));
    }
}
