//! MovieLens-20M-like recommendation workload.
//!
//! Statistics reproduced from the paper: a user-history table of ~27,000
//! entries of 128 bytes (32-dimensional embeddings), ~72 lookups per
//! inference (the user's rated-movie history), strong popularity skew and
//! genre-style co-occurrence. Baseline model quality: AUC 0.7845.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::zipf::ZipfSampler;
use crate::datasets::{split_workload, DatasetKind, DatasetScale, SyntheticDataset};
use crate::quality::QualityModel;

const PAPER_ENTRIES: u64 = 27_000;
const EMBEDDING_DIM: usize = 32;
const AVG_QUERIES_PER_INFERENCE: f64 = 72.0;
/// Number of synthetic "genres" used to induce co-occurrence.
const CLUSTERS: u64 = 20;

pub(super) fn generate(scale: DatasetScale, inferences: usize, seed: u64) -> SyntheticDataset {
    let table_entries = (PAPER_ENTRIES / scale.divisor()).max(256);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_7669_656c_656e);
    let popularity = ZipfSampler::new(table_entries, 1.05);
    let cluster_of = |index: u64| index % CLUSTERS;

    let sessions: Vec<Vec<u64>> = (0..inferences)
        .map(|_| {
            // A user watches mostly within a couple of favourite genres.
            let favourite_a = cluster_of(popularity.sample(&mut rng));
            let favourite_b = cluster_of(popularity.sample(&mut rng));
            let length = sample_session_length(&mut rng);
            (0..length)
                .map(|_| {
                    let candidate = popularity.sample(&mut rng);
                    if rng.gen_bool(0.7) {
                        // Snap the candidate into one of the favourite genres,
                        // preserving its popularity rank within the cluster.
                        let target_cluster = if rng.gen_bool(0.5) {
                            favourite_a
                        } else {
                            favourite_b
                        };
                        let base = candidate - (candidate % CLUSTERS);
                        (base + target_cluster).min(table_entries - 1)
                    } else {
                        candidate
                    }
                })
                .collect()
        })
        .collect();

    let (train_workload, test_workload) = split_workload(table_entries, sessions);
    SyntheticDataset {
        kind: DatasetKind::MovieLens20M,
        table_entries,
        embedding_dim: EMBEDDING_DIM,
        entry_bytes: EMBEDDING_DIM * 4,
        train_workload,
        test_workload,
        quality: QualityModel::movielens(),
        relaxed_tolerance: DatasetKind::MovieLens20M.relaxed_tolerance(),
    }
}

/// Session lengths concentrate around the paper's reported 72 lookups.
fn sample_session_length(rng: &mut StdRng) -> usize {
    let jitter: f64 = rng.gen_range(-0.35..0.35);
    ((AVG_QUERIES_PER_INFERENCE * (1.0 + jitter)).round() as usize).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_exhibit_cluster_structure() {
        let dataset = generate(DatasetScale::Small, 100, 9);
        // Count how concentrated each session is on its two most common clusters.
        let mut concentrated = 0usize;
        for session in &dataset.train_workload.sessions {
            let mut counts = vec![0usize; CLUSTERS as usize];
            for &index in session {
                counts[(index % CLUSTERS) as usize] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            if counts[0] + counts[1] > session.len() / 2 {
                concentrated += 1;
            }
        }
        assert!(
            concentrated * 10 > dataset.train_workload.len() * 5,
            "most sessions should concentrate on two clusters ({concentrated})"
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(DatasetScale::Small, 20, 42);
        let b = generate(DatasetScale::Small, 20, 42);
        assert_eq!(a, b);
        let c = generate(DatasetScale::Small, 20, 43);
        assert_ne!(a.train_workload, c.train_workload);
    }
}
