//! Synthetic workload generators standing in for the paper's datasets.
//!
//! The evaluation uses MovieLens-20M, the Taobao ad-click log and WikiText-2.
//! Those datasets are not redistributable here, so each is replaced by a
//! generator that reproduces the statistics the system actually depends on —
//! table size, entry size, queries per inference, power-law access skew and
//! co-occurrence structure — as documented in `DESIGN.md`. The catalog
//! (Table 1) and the production recommendation profile (Table 2) are kept as
//! data.

pub mod catalog;
mod movielens;
pub mod production;
mod taobao;
mod wikitext;
pub mod zipf;

pub use catalog::{CatalogEntry, DatasetCatalog};
pub use production::{ProductionProfile, ProductionTableStats};
pub use wikitext::sessions_as_token_sequences;
pub use zipf::ZipfSampler;

use serde::{Deserialize, Serialize};

use crate::quality::QualityModel;
use crate::workload::AccessWorkload;

/// The applications evaluated by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// MovieLens-20M MLP recommendation (user history table, ~27 K entries).
    MovieLens20M,
    /// Taobao ad click/display MLP recommendation (~900 K entries).
    TaobaoAds,
    /// WikiText-2 LSTM language model (~131 K word vocabulary).
    WikiText2,
}

impl DatasetKind {
    /// All evaluated applications, in the order the paper's figures use.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::WikiText2,
        DatasetKind::MovieLens20M,
        DatasetKind::TaobaoAds,
    ];

    /// Display name matching the paper's figures.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DatasetKind::MovieLens20M => "MovieLens",
            DatasetKind::TaobaoAds => "Taobao",
            DatasetKind::WikiText2 => "Wikitext2",
        }
    }

    /// The Acc-relaxed tolerance the paper allows for this application
    /// (0.5 % for the recommendation tasks, 5 % for the language model).
    #[must_use]
    pub const fn relaxed_tolerance(self) -> f64 {
        match self {
            DatasetKind::MovieLens20M | DatasetKind::TaobaoAds => 0.005,
            DatasetKind::WikiText2 => 0.05,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How large a synthetic instance to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetScale {
    /// The paper's table sizes (27 K / 900 K / 131 K entries).
    Paper,
    /// Tables scaled down 32× for fast tests and examples; access statistics
    /// (queries per inference, skew) are preserved.
    Small,
}

impl DatasetScale {
    pub(crate) const fn divisor(self) -> u64 {
        match self {
            DatasetScale::Paper => 1,
            DatasetScale::Small => 32,
        }
    }
}

/// A generated synthetic instance of one application's embedding workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyntheticDataset {
    /// Which application this instance mimics.
    pub kind: DatasetKind,
    /// Number of embedding-table entries.
    pub table_entries: u64,
    /// Embedding dimensionality (f32 lanes per entry).
    pub embedding_dim: usize,
    /// Entry size in bytes as hosted on the PIR servers.
    pub entry_bytes: usize,
    /// Training-split access workload (used to fit co-design parameters).
    pub train_workload: AccessWorkload,
    /// Test-split access workload (used to report results).
    pub test_workload: AccessWorkload,
    /// Calibrated quality model (baseline matches the paper's reported value).
    pub quality: QualityModel,
    /// The Acc-relaxed tolerance for this application.
    pub relaxed_tolerance: f64,
}

impl SyntheticDataset {
    /// Generate a synthetic instance with `inferences` total sessions.
    ///
    /// # Panics
    ///
    /// Panics if `inferences < 4` (too few to split into train and test).
    #[must_use]
    pub fn generate(kind: DatasetKind, scale: DatasetScale, inferences: usize, seed: u64) -> Self {
        assert!(inferences >= 4, "need at least four inferences to split");
        match kind {
            DatasetKind::MovieLens20M => movielens::generate(scale, inferences, seed),
            DatasetKind::TaobaoAds => taobao::generate(scale, inferences, seed),
            DatasetKind::WikiText2 => wikitext::generate(scale, inferences, seed),
        }
    }

    /// Average queries per inference over the whole workload.
    #[must_use]
    pub fn avg_queries_per_inference(&self) -> f64 {
        let train = self.train_workload.avg_queries_per_inference();
        let test = self.test_workload.avg_queries_per_inference();
        let total = self.train_workload.len() + self.test_workload.len();
        if total == 0 {
            return 0.0;
        }
        (train * self.train_workload.len() as f64 + test * self.test_workload.len() as f64)
            / total as f64
    }

    /// Size of the full embedding table in bytes.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.table_entries * self.entry_bytes as u64
    }
}

pub(crate) fn split_workload(
    table_entries: u64,
    sessions: Vec<Vec<u64>>,
) -> (AccessWorkload, AccessWorkload) {
    AccessWorkload::new(table_entries, sessions).split(0.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_with_paper_statistics() {
        for kind in DatasetKind::ALL {
            let dataset = SyntheticDataset::generate(kind, DatasetScale::Small, 64, 1);
            assert_eq!(dataset.kind, kind);
            assert!(dataset.table_entries > 0);
            assert!(!dataset.train_workload.is_empty());
            assert!(!dataset.test_workload.is_empty());
            assert!(dataset.avg_queries_per_inference() > 0.0);
            assert!(dataset.relaxed_tolerance > 0.0);
        }
    }

    #[test]
    fn paper_scale_matches_table1_sizes() {
        let movielens =
            SyntheticDataset::generate(DatasetKind::MovieLens20M, DatasetScale::Paper, 8, 2);
        assert_eq!(movielens.table_entries, 27_000);
        assert_eq!(movielens.entry_bytes, 128);

        let taobao = SyntheticDataset::generate(DatasetKind::TaobaoAds, DatasetScale::Paper, 8, 2);
        assert_eq!(taobao.table_entries, 900_000);
        assert_eq!(taobao.entry_bytes, 128);

        let wikitext =
            SyntheticDataset::generate(DatasetKind::WikiText2, DatasetScale::Paper, 8, 2);
        assert_eq!(wikitext.table_entries, 131_000);
        assert_eq!(wikitext.entry_bytes, 512);
    }

    #[test]
    fn queries_per_inference_match_the_paper() {
        let movielens =
            SyntheticDataset::generate(DatasetKind::MovieLens20M, DatasetScale::Small, 200, 3);
        // The paper reports ~72 lookups per MovieLens inference.
        let q = movielens.avg_queries_per_inference();
        assert!((50.0..=90.0).contains(&q), "movielens q/inf {q}");

        let taobao =
            SyntheticDataset::generate(DatasetKind::TaobaoAds, DatasetScale::Small, 200, 3);
        // The paper reports ~2.68 lookups per Taobao inference.
        let q = taobao.avg_queries_per_inference();
        assert!((1.5..=4.5).contains(&q), "taobao q/inf {q}");

        let wikitext =
            SyntheticDataset::generate(DatasetKind::WikiText2, DatasetScale::Small, 200, 3);
        let q = wikitext.avg_queries_per_inference();
        assert!((10.0..=40.0).contains(&q), "wikitext q/inf {q}");
    }

    #[test]
    fn access_patterns_are_skewed() {
        let dataset =
            SyntheticDataset::generate(DatasetKind::TaobaoAds, DatasetScale::Small, 300, 4);
        let top_tenth = (dataset.table_entries / 10) as usize;
        let coverage = dataset.train_workload.coverage_of_top(top_tenth);
        assert!(
            coverage > 0.4,
            "top 10% of entries should cover much more than 10% of accesses, got {coverage:.2}"
        );
    }

    #[test]
    fn names_and_tolerances() {
        assert_eq!(DatasetKind::MovieLens20M.to_string(), "MovieLens");
        assert_eq!(DatasetKind::WikiText2.relaxed_tolerance(), 0.05);
        assert_eq!(DatasetKind::TaobaoAds.relaxed_tolerance(), 0.005);
    }
}
