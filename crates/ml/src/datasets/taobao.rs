//! Taobao ad click/display-like recommendation workload.
//!
//! Statistics reproduced from the paper: ~900,000 table entries of 128 bytes,
//! and only ~2.68 embedding lookups per inference (sparse categorical
//! features are a small fraction of the model's inputs, which is also why
//! dropped lookups barely move its AUC of 0.58).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::zipf::ZipfSampler;
use crate::datasets::{split_workload, DatasetKind, DatasetScale, SyntheticDataset};
use crate::quality::QualityModel;

const PAPER_ENTRIES: u64 = 900_000;
const EMBEDDING_DIM: usize = 32;

pub(super) fn generate(scale: DatasetScale, inferences: usize, seed: u64) -> SyntheticDataset {
    let table_entries = (PAPER_ENTRIES / scale.divisor()).max(1024);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7461_6f62_616f);
    // Ad/item popularity is extremely skewed.
    let popularity = ZipfSampler::new(table_entries, 1.2);

    let sessions: Vec<Vec<u64>> = (0..inferences)
        .map(|_| {
            // ~2.68 lookups per inference: 1–5 with a mode at 2–3.
            let length = match rng.gen_range(0..100) {
                0..=19 => 1,
                20..=59 => 2,
                60..=84 => 3,
                85..=94 => 4,
                _ => 5,
            };
            let mut session: Vec<u64> = Vec::with_capacity(length);
            for _ in 0..length {
                let index = popularity.sample(&mut rng);
                // Mild co-occurrence: a second lookup is often an adjacent item
                // (same advertiser/campaign).
                if !session.is_empty() && rng.gen_bool(0.3) {
                    let anchor = session[0];
                    session.push((anchor + rng.gen_range(1..4)).min(table_entries - 1));
                } else {
                    session.push(index);
                }
            }
            session
        })
        .collect();

    let (train_workload, test_workload) = split_workload(table_entries, sessions);
    SyntheticDataset {
        kind: DatasetKind::TaobaoAds,
        table_entries,
        embedding_dim: EMBEDDING_DIM,
        entry_bytes: EMBEDDING_DIM * 4,
        train_workload,
        test_workload,
        quality: QualityModel::taobao(),
        relaxed_tolerance: DatasetKind::TaobaoAds.relaxed_tolerance(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_queries_per_inference() {
        let dataset = generate(DatasetScale::Small, 500, 17);
        let q = dataset.train_workload.avg_queries_per_inference();
        assert!((2.0..=3.4).contains(&q), "expected ~2.68 lookups, got {q}");
    }

    #[test]
    fn popularity_is_heavily_skewed() {
        let dataset = generate(DatasetScale::Small, 500, 18);
        let coverage = dataset
            .train_workload
            .coverage_of_top((dataset.table_entries / 20) as usize);
        assert!(
            coverage > 0.5,
            "top 5% should cover most accesses, got {coverage:.2}"
        );
    }
}
