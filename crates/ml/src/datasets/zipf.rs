//! Zipf-distributed index sampling.
//!
//! Embedding-table accesses in recommendation and language workloads follow a
//! power law (the paper cites Zipf's law when motivating the hot-table
//! split); this sampler produces indices with `P(rank r) ∝ 1 / r^s`.

use rand::Rng;

/// A sampler over `0..n` with Zipf(`exponent`) probabilities, index 0 being
/// the most popular.
#[derive(Clone, Debug, PartialEq)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative.
    #[must_use]
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(exponent);
            cumulative.push(total);
        }
        for value in &mut cumulative {
            *value /= total;
        }
        Self { cumulative }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the domain is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("probabilities are finite"))
        {
            Ok(index) | Err(index) => index.min(self.cumulative.len() - 1) as u64,
        }
    }

    /// Probability of sampling `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn probability(&self, index: u64) -> f64 {
        let index = index as usize;
        assert!(index < self.cumulative.len(), "index out of range");
        if index == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[index] - self.cumulative[index - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let sampler = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|i| sampler.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..100 {
            assert!(sampler.probability(i) <= sampler.probability(i - 1) + 1e-12);
        }
    }

    #[test]
    fn samples_follow_the_skew() {
        let sampler = ZipfSampler::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        let top_100: u64 = counts[..100].iter().sum();
        assert!(
            top_100 > 10_000,
            "top 10% of a Zipf(1.1) should draw most samples, got {top_100}"
        );
        assert!(counts.iter().all(|&c| c <= 20_000));
    }

    #[test]
    fn uniform_when_exponent_is_zero() {
        let sampler = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((sampler.probability(i) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_domain_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
