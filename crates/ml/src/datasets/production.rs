//! The production recommendation-model profile from the paper's Table 2 and
//! §2.3.
//!
//! The paper studies a real-world model whose top device-only sparse features
//! have multi-gigabyte embedding tables, 144-byte entries, tens of lookups
//! per inference and strong temporal locality (only 2.44 % of lookups miss a
//! client-side cache of recently fetched entries). The real model and traces
//! are proprietary; this module keeps the published statistics as data and
//! generates a synthetic workload with the same shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::datasets::zipf::ZipfSampler;
use crate::workload::AccessWorkload;

/// One row of Table 2: a device-only sparse feature's embedding table.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProductionTableStats {
    /// Number of embedding entries.
    pub entries: u64,
    /// Average embedding lookups per inference.
    pub avg_queries_per_inference: f64,
    /// Entry size in bytes.
    pub entry_bytes: u64,
}

impl ProductionTableStats {
    /// Total table size in bytes.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.entries * self.entry_bytes
    }
}

/// The production profile: Table 2 plus the §2.3 locality statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProductionProfile;

impl ProductionProfile {
    /// Entry size shared by all of the model's tables.
    pub const ENTRY_BYTES: u64 = 144;
    /// Fraction of lookups that miss the on-device cache of recently fetched
    /// entries and therefore need a PIR query (§2.3: 2.44 %).
    pub const CACHE_MISS_RATE: f64 = 0.0244;

    /// Table 2, in the paper's row order (top-5 device-only sparse features).
    #[must_use]
    pub fn table2() -> Vec<ProductionTableStats> {
        let rows = [
            (7_614_589u64, 13.9f64),
            (20_000_000, 47.3),
            (20_000_000, 25.7),
            (2_989_943, 3.2),
            (20_000_000, 14.9),
        ];
        rows.iter()
            .map(|&(entries, avg)| ProductionTableStats {
                entries,
                avg_queries_per_inference: avg,
                entry_bytes: Self::ENTRY_BYTES,
            })
            .collect()
    }

    /// Generate a synthetic access workload with the shape of Table 2's first
    /// table, scaled down by `scale_divisor` so it can be hosted by the
    /// simulated servers. Lookups are Zipf-skewed and thinned by the
    /// cache-miss rate (only misses need PIR).
    ///
    /// # Panics
    ///
    /// Panics if `scale_divisor` is zero or `inferences` is zero.
    #[must_use]
    pub fn workload(inferences: usize, scale_divisor: u64, seed: u64) -> AccessWorkload {
        assert!(scale_divisor > 0, "scale divisor must be positive");
        assert!(inferences > 0, "need at least one inference");
        let stats = Self::table2()[0];
        let entries = (stats.entries / scale_divisor).max(1024);
        let sampler = ZipfSampler::new(entries, 1.1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7072_6f64);

        let sessions = (0..inferences)
            .map(|_| {
                let lookups =
                    (stats.avg_queries_per_inference * rng.gen_range(0.5..1.5)).round() as usize;
                let mut session = Vec::new();
                for _ in 0..lookups {
                    if rng.gen_bool(Self::CACHE_MISS_RATE * 10.0) {
                        session.push(sampler.sample(&mut rng));
                    }
                }
                session
            })
            .collect();
        AccessWorkload::new(entries, sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let rows = ProductionProfile::table2();
        assert_eq!(rows.len(), 5);
        // Largest tables are the 20M-entry ones at 2.68 GB.
        let largest = rows
            .iter()
            .map(ProductionTableStats::table_bytes)
            .max()
            .unwrap();
        assert_eq!(largest, 20_000_000 * 144);
        assert!((rows[1].avg_queries_per_inference - 47.3).abs() < 1e-9);
        // All are far too big for a client device.
        assert!(rows.iter().all(|r| r.table_bytes() > 400_000_000));
    }

    #[test]
    fn workload_reflects_cache_thinning() {
        let workload = ProductionProfile::workload(200, 64, 5);
        let q = workload.avg_queries_per_inference();
        // ~13.9 raw lookups thinned to a handful of PIR queries per inference.
        assert!(q < 13.9, "thinned lookups {q} should be below the raw rate");
        assert!(q > 0.5);
        assert!(!workload.is_empty());
    }

    #[test]
    #[should_panic(expected = "scale divisor")]
    fn zero_scale_panics() {
        let _ = ProductionProfile::workload(10, 0, 1);
    }
}
