//! Hot-reload consistency: an in-flight mix of old/new reads must stay
//! consistent.
//!
//! In two-server PIR this is sharper than ordinary staleness: if the two
//! parties answered the *same* query from *different* table versions, the
//! combined shares would reconstruct garbage (the difference of versions
//! times a random mask leaks into the sum) — not an old row, not a new row,
//! garbage. The runtime routes updates through both dispatch queues as
//! atomic barrier pairs, so every query is answered by both parties from
//! the same version. This test hammers that property.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pir_prf::PrfKind;
use pir_protocol::PirTable;
use pir_serve::{PirServeRuntime, ServeConfig, TableConfig};

const ENTRY_BYTES: usize = 16;
const ENTRIES: u64 = 64;

/// Every row of version `v` is filled with the byte `v`, so a reconstructed
/// row is valid iff all its bytes agree — any mixed-version reconstruction
/// produces bytes that are neither.
fn versioned_row(version: u8) -> Vec<u8> {
    vec![version; ENTRY_BYTES]
}

#[test]
fn inflight_queries_see_exactly_one_table_version() {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .per_tenant_quota(4096)
            .queue_capacity(4096)
            .seed(23)
            .build()
            .unwrap(),
    );
    // Several replicas per party and small batches maximize interleaving
    // between formation, dispatch and the update barriers.
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .replicas(2)
        .max_batch(4)
        .max_wait(Duration::from_micros(200))
        .build()
        .unwrap();
    let table = PirTable::generate(ENTRIES, ENTRY_BYTES, |_, _| 0);
    runtime.register_table("emb", table, config).unwrap();
    let runtime = Arc::new(runtime);

    let stop = Arc::new(AtomicBool::new(false));
    let target_index = 7u64;

    // Reader threads: query the updated row (and a control row) as fast as
    // they can, asserting every reconstruction is internally consistent.
    let mut readers = Vec::new();
    for reader in 0..4u64 {
        let runtime = Arc::clone(&runtime);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let handle = runtime.handle();
            let tenant = format!("reader-{reader}");
            let mut observed_versions = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let row = handle
                    .query("emb", &tenant, target_index)
                    .unwrap()
                    .wait()
                    .unwrap();
                let version = row[0];
                assert!(
                    row.iter().all(|&b| b == version),
                    "mixed-version reconstruction: {row:02x?}"
                );
                observed_versions.push(version);

                // The control row is never updated and must stay zero.
                let control = handle.query("emb", &tenant, 1).unwrap().wait().unwrap();
                assert_eq!(control, versioned_row(0), "untouched row changed");
            }
            observed_versions
        }));
    }

    // Updater: bump the row's version repeatedly while reads are in flight.
    const VERSIONS: u8 = 20;
    for version in 1..=VERSIONS {
        runtime
            .update_entry("emb", target_index, &versioned_row(version))
            .unwrap();
        // A short pause lets a few reads land on each version.
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);

    let mut all_versions = Vec::new();
    for reader in readers {
        all_versions.extend(reader.join().unwrap());
    }
    // Every observation was a valid version (the per-row consistency was
    // already asserted inside the readers)...
    assert!(all_versions.iter().all(|&v| v <= VERSIONS));
    // ...observations never go backwards in aggregate: once the final
    // version is out, a fresh query must see it.
    let final_row = runtime
        .handle()
        .query("emb", "final", target_index)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(final_row, versioned_row(VERSIONS));
    assert!(!all_versions.is_empty());
    runtime.shutdown();
}

#[test]
fn updates_during_shutdown_do_not_hang() {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(29).build().unwrap());
    let table = PirTable::generate(32, 8, |_, _| 0);
    runtime
        .register_table("emb", table, TableConfig::default())
        .unwrap();
    runtime.update_entry("emb", 3, &[9; 8]).unwrap();
    runtime.shutdown();
    // After shutdown the queues are closed: typed shed, no deadlock.
    assert!(runtime.update_entry("emb", 3, &[1; 8]).is_err());
}

#[test]
fn sharded_replicas_hot_reload_consistently() {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(31).build().unwrap());
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .shards(4)
        .max_batch(8)
        .max_wait(Duration::from_micros(500))
        .build()
        .unwrap();
    let table = PirTable::generate(256, 8, |row, _| row as u8);
    runtime.register_table("emb", table, config).unwrap();
    let handle = runtime.handle();

    // Update rows living in different device shards' subtrees.
    for index in [0u64, 77, 128, 255] {
        runtime.update_entry("emb", index, &[0xEE; 8]).unwrap();
        let row = handle.query("emb", "t", index).unwrap().wait().unwrap();
        assert_eq!(row, vec![0xEE; 8], "index {index}");
    }
    let untouched = handle.query("emb", "t", 100).unwrap().wait().unwrap();
    assert_eq!(untouched[0], 100);
    runtime.shutdown();
}
