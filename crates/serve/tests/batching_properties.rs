//! Property tests of the dynamic batch former, as required by the serving
//! runtime's contract:
//!
//! (a) every admitted query is answered exactly once,
//! (b) no device batch exceeds the configured maximum size,
//! (c) reconstruction still yields the correct row under batching.

use std::time::Duration;

use pir_protocol::PirTable;
use pir_serve::{PirServeRuntime, ServeConfig, ServeError, TableConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(31).wrapping_add(offset as u8)
}

fn expected_row(row: u64, entry_bytes: usize) -> Vec<u8> {
    (0..entry_bytes).map(|offset| fill(row, offset)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batching_preserves_exactly_once_and_correctness(
        entries in 16u64..256,
        entry_bytes in 4usize..24,
        max_batch in 1usize..24,
        query_count in 8usize..48,
        seed in any::<u64>(),
    ) {
        let runtime = PirServeRuntime::new(
            ServeConfig::builder().seed(seed).build().expect("valid config"),
        );
        let table = PirTable::generate(entries, entry_bytes, fill);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(max_batch)
            .max_wait(Duration::from_millis(1))
            .build()
            .expect("valid table config");
        runtime.register_table("t", table, config).expect("register");
        let handle = runtime.handle();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xb47c4_u64);
        let mut pending = Vec::new();
        let mut indices = Vec::new();
        for i in 0..query_count {
            let index = rng.gen_range(0..entries);
            let tenant = format!("tenant-{}", i % 3);
            indices.push(index);
            pending.push(handle.query("t", &tenant, index).expect("admitted"));
        }

        // (c) every reconstruction is the correct row, under whatever batch
        // shapes the former happened to pick.
        for (index, query) in indices.into_iter().zip(pending) {
            let row = query.wait().expect("answered");
            prop_assert_eq!(row, expected_row(index, entry_bytes));
        }

        let stats = runtime.stats();
        let table_stats = stats.table("t").expect("stats for t");
        // (a) exactly once: all admitted queries answered, none shed/failed,
        // and each query crossed each of the two servers exactly once.
        prop_assert_eq!(table_stats.submitted, query_count as u64);
        prop_assert_eq!(table_stats.answered, query_count as u64);
        prop_assert_eq!(table_stats.shed, 0);
        prop_assert_eq!(table_stats.failed, 0);
        prop_assert_eq!(table_stats.batched_queries, 2 * query_count as u64);
        // (b) the former never exceeded the configured batch bound.
        prop_assert!(
            table_stats.max_batch <= max_batch as u64,
            "observed batch {} > configured {}",
            table_stats.max_batch,
            max_batch
        );
        runtime.shutdown();
    }

    #[test]
    fn replica_dispatch_answers_every_admitted_query_exactly_once(
        replicas in 1usize..4,
        max_batch in 1usize..16,
        query_count in 8usize..40,
        seed in any::<u64>(),
    ) {
        let entries = 128u64;
        let entry_bytes = 8usize;
        let runtime = PirServeRuntime::new(
            ServeConfig::builder().seed(seed).build().expect("valid config"),
        );
        let table = PirTable::generate(entries, entry_bytes, fill);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .replicas(replicas)
            .max_batch(max_batch)
            .max_wait(Duration::from_millis(1))
            .build()
            .expect("valid table config");
        runtime.register_table("t", table, config).expect("register");
        let handle = runtime.handle();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ce_u64);
        let mut pending = Vec::new();
        for i in 0..query_count {
            let index = rng.gen_range(0..entries);
            pending.push((index, handle.query("t", &format!("tenant-{}", i % 3), index).expect("admitted")));
        }
        for (index, query) in pending {
            prop_assert_eq!(query.wait().expect("answered"), expected_row(index, entry_bytes));
        }

        let stats = runtime.stats();
        let snapshot = stats.table("t").expect("stats for t");
        // Exactly once, regardless of which replica served which batch:
        // every query answered, and each of its two projections crossed
        // exactly one replica's device.
        prop_assert_eq!(snapshot.submitted, query_count as u64);
        prop_assert_eq!(snapshot.answered, query_count as u64);
        prop_assert_eq!(snapshot.failed, 0);
        prop_assert_eq!(snapshot.batched_queries, 2 * query_count as u64);
        prop_assert_eq!(snapshot.replicas.len(), 2 * replicas);
        let per_replica: u64 = snapshot.replicas.iter().map(|r| r.queries).sum();
        prop_assert_eq!(per_replica, 2 * query_count as u64);
        for party in 0..2 {
            let party_total: u64 = snapshot
                .replicas
                .iter()
                .filter(|r| r.party == party)
                .map(|r| r.queries)
                .sum();
            prop_assert_eq!(party_total, query_count as u64);
        }
        runtime.shutdown();
    }
}

#[test]
fn non_power_of_two_replicas_and_shards_reconstruct() {
    // 3 replicas per party, each sharded across 3 devices (4 subtrees, one
    // device owning two) — the awkwardest shape on both axes.
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(23).build().unwrap());
    let entries = 512u64;
    let entry_bytes = 12usize;
    let table = PirTable::generate(entries, entry_bytes, fill);
    let config = TableConfig::builder()
        .prf_kind(pir_prf::PrfKind::SipHash)
        .shards(3)
        .replicas(3)
        .max_batch(8)
        .max_wait(Duration::from_millis(1))
        .build()
        .unwrap();
    runtime.register_table("odd", table, config).unwrap();
    let handle = runtime.handle();

    let mut rng = StdRng::seed_from_u64(24);
    let pending: Vec<_> = (0..30)
        .map(|_| {
            let index = rng.gen_range(0..entries);
            (index, handle.query("odd", "tenant", index).unwrap())
        })
        .collect();
    for (index, query) in pending {
        assert_eq!(query.wait().unwrap(), expected_row(index, entry_bytes));
    }
    let stats = runtime.stats();
    let snapshot = stats.table("odd").unwrap();
    assert_eq!(snapshot.answered, 30);
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.replicas.len(), 6);
}

#[test]
fn concurrent_submitters_still_get_exactly_once_answers() {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(99).build().unwrap());
    let entries = 512u64;
    let entry_bytes = 16usize;
    let table = PirTable::generate(entries, entry_bytes, fill);
    let config = TableConfig::builder()
        .prf_kind(pir_prf::PrfKind::SipHash)
        .max_batch(32)
        .max_wait(Duration::from_millis(2))
        .build()
        .unwrap();
    runtime.register_table("t", table, config).unwrap();

    let threads = 8;
    let per_thread = 25;
    let mut joins = Vec::new();
    for t in 0..threads {
        let handle = runtime.handle();
        joins.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            for _ in 0..per_thread {
                let index = rng.gen_range(0..entries);
                let row = handle
                    .query("t", &format!("tenant-{t}"), index)
                    .expect("admitted")
                    .wait()
                    .expect("answered");
                assert_eq!(row, expected_row(index, entry_bytes));
            }
        }));
    }
    for join in joins {
        join.join().unwrap();
    }

    let stats = runtime.stats();
    let table_stats = stats.table("t").unwrap();
    assert_eq!(table_stats.answered, threads * per_thread);
    assert_eq!(table_stats.failed, 0);
    assert_eq!(table_stats.batched_queries, 2 * threads * per_thread);
    assert!(table_stats.max_batch <= 32);
}

#[test]
fn sharded_tables_serve_correct_rows_under_batching() {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(5).build().unwrap());
    let entries = 1024u64;
    let entry_bytes = 12usize;
    let table = PirTable::generate(entries, entry_bytes, fill);
    let config = TableConfig::builder()
        .prf_kind(pir_prf::PrfKind::SipHash)
        .shards(4)
        .max_batch(16)
        .max_wait(Duration::from_millis(1))
        .build()
        .unwrap();
    runtime.register_table("big", table, config).unwrap();
    let handle = runtime.handle();

    let mut rng = StdRng::seed_from_u64(6);
    let pending: Vec<_> = (0..40)
        .map(|_| {
            let index = rng.gen_range(0..entries);
            (index, handle.query("big", "tenant", index).unwrap())
        })
        .collect();
    for (index, query) in pending {
        assert_eq!(query.wait().unwrap(), expected_row(index, entry_bytes));
    }
}

#[test]
fn shed_queries_are_not_answered_and_not_counted_as_answered() {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .per_tenant_quota(4)
            .seed(8)
            .build()
            .unwrap(),
    );
    let table = PirTable::generate(64, 8, fill);
    let config = TableConfig::builder()
        .prf_kind(pir_prf::PrfKind::SipHash)
        .max_batch(64)
        .max_wait(Duration::from_millis(100))
        .build()
        .unwrap();
    runtime.register_table("t", table, config).unwrap();
    let handle = runtime.handle();

    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for index in 0..12u64 {
        match handle.query("t", "one-tenant", index % 64) {
            Ok(pending) => admitted.push(pending),
            Err(err) => {
                assert!(err.is_shed(), "unexpected error {err}");
                assert!(matches!(err, ServeError::QuotaExceeded { .. }));
                shed += 1;
            }
        }
    }
    assert!(shed > 0, "quota of 4 must shed some of 12 rapid queries");
    let admitted_count = admitted.len() as u64;
    for pending in admitted {
        assert!(pending.wait().is_ok());
    }
    let stats = runtime.stats();
    let table_stats = stats.table("t").unwrap();
    assert_eq!(table_stats.answered, admitted_count);
    assert_eq!(table_stats.shed, shed);
}
