//! End-to-end tests of the wire boundary: a [`PirSession`] client talking
//! to [`WireFrontend`] servers over real transports, plus the
//! trust-boundary property the redesign exists for.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use pir_prf::PrfKind;
use pir_protocol::{PirTable, ServerQuery, SERVER_QUERY_PREFIX_BYTES};
use pir_serve::{PirServeRuntime, ServeConfig, TableConfig, WireFrontend};
use pir_wire::{
    decode_message, loopback_pair, PirSession, PirTransport, TcpTransport, WireError, WireMessage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_table() -> PirTable {
    PirTable::generate(512, 24, |row, offset| {
        (row as u8).wrapping_mul(13).wrapping_add(offset as u8)
    })
}

fn test_runtime(seed: u64) -> PirServeRuntime {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(seed).build().unwrap());
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .max_batch(16)
        .max_wait(Duration::from_millis(1))
        .build()
        .unwrap();
    runtime.register_table("emb", test_table(), config).unwrap();
    runtime
}

/// Spawn a thread servicing `frontend` over the server end of a loopback
/// pair, returning the client end.
fn serve_loopback(
    runtime: &Arc<PirServeRuntime>,
    party: u8,
) -> (Box<dyn PirTransport>, std::thread::JoinHandle<()>) {
    serve_loopback_capped(runtime, party, pir_wire::MAX_SUPPORTED_VERSION)
}

/// Like [`serve_loopback`], with the frontend's protocol version capped —
/// `cap = 1` stands up a "v1-only server" for fallback tests.
fn serve_loopback_capped(
    runtime: &Arc<PirServeRuntime>,
    party: u8,
    cap: u16,
) -> (Box<dyn PirTransport>, std::thread::JoinHandle<()>) {
    let (client_end, server_end) = loopback_pair();
    let frontend = WireFrontend::with_max_version(runtime.handle(), party, cap);
    let worker = std::thread::spawn(move || {
        frontend.serve(Box::new(server_end)).unwrap();
    });
    (Box::new(client_end), worker)
}

#[test]
fn session_reconstructs_rows_over_loopback_transports() {
    let runtime = Arc::new(test_runtime(31));
    let (t0, w0) = serve_loopback(&runtime, 0);
    let (t1, w1) = serve_loopback(&runtime, 1);

    let mut session = PirSession::connect(t0, t1, "tenant-wire").unwrap();
    assert_eq!(session.table_names(), vec!["emb".to_string()]);
    let schema = session.schema("emb").unwrap();
    assert_eq!(schema.entries, 512);
    assert_eq!(schema.entry_bytes, 24);

    let table = test_table();
    let mut rng = StdRng::seed_from_u64(1);
    for index in [0u64, 7, 255, 511] {
        let row = session.query("emb", index, &mut rng).unwrap();
        assert_eq!(row, table.entry(index), "index {index}");
    }

    // Local validation errors never touch the wire.
    assert!(matches!(
        session.query("emb", 512, &mut rng),
        Err(WireError::InvalidRequest(_))
    ));
    assert!(matches!(
        session.query("ghost", 0, &mut rng),
        Err(WireError::InvalidRequest(_))
    ));

    // Upload accounting is wire-true: each query frame is the envelope
    // header plus table/tenant routing strings plus exactly
    // `ServerQuery::size_bytes()` payload bytes.
    let stats = session.conn_stats();
    assert_eq!(stats[0].bytes_sent, stats[1].bytes_sent);
    assert!(stats[0].bytes_received > 0);

    drop(session); // closes both loopback ends; the serve loops exit
    w0.join().unwrap();
    w1.join().unwrap();

    let snapshot = runtime.stats();
    let table_stats = snapshot.table("emb").unwrap();
    // Wire-path telemetry counts per-party projections: 4 queries × 2.
    assert_eq!(table_stats.answered, 8);
    assert_eq!(table_stats.submitted, 8);
}

#[test]
fn session_reconstructs_rows_over_two_tcp_servers() {
    // The deployment shape: two independent server processes (threads
    // here), each with its own runtime, table replica and listener — the
    // client is the only place the two shares meet.
    let mut addrs = Vec::new();
    let mut accept_threads = Vec::new();
    for party in 0..2u8 {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        accept_threads.push(std::thread::spawn(move || {
            let runtime = test_runtime(100 + u64::from(party));
            let frontend = WireFrontend::new(runtime.handle(), party);
            let (stream, _) = listener.accept().unwrap();
            let transport = TcpTransport::from_stream(stream).unwrap();
            frontend.serve(Box::new(transport)).unwrap();
            runtime.shutdown();
        }));
    }

    let t0 = Box::new(TcpTransport::connect(addrs[0]).unwrap());
    let t1 = Box::new(TcpTransport::connect(addrs[1]).unwrap());
    let mut session = PirSession::connect(t0, t1, "tcp-tenant").unwrap();

    let table = test_table();
    let mut rng = StdRng::seed_from_u64(2);
    for index in [3u64, 128, 509] {
        let row = session.query("emb", index, &mut rng).unwrap();
        assert_eq!(row, table.entry(index), "index {index}");
    }

    drop(session);
    for thread in accept_threads {
        thread.join().unwrap();
    }
}

/// A transport wrapper recording every frame sent through it.
struct RecordingTransport {
    inner: Box<dyn PirTransport>,
    sent: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl PirTransport for RecordingTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), WireError> {
        self.sent.lock().push(frame.to_vec());
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        self.inner.recv()
    }

    fn split(self: Box<Self>) -> pir_wire::SplitTransport {
        // Client-side audit wrapper; sessions never split their transports.
        pir_wire::SplitTransport::Whole(self)
    }
}

#[test]
fn no_connection_ever_carries_both_dpf_keys() {
    let runtime = Arc::new(test_runtime(77));
    let (t0, w0) = serve_loopback(&runtime, 0);
    let (t1, w1) = serve_loopback(&runtime, 1);

    let sent0 = Arc::new(Mutex::new(Vec::new()));
    let sent1 = Arc::new(Mutex::new(Vec::new()));
    let r0 = Box::new(RecordingTransport {
        inner: t0,
        sent: Arc::clone(&sent0),
    });
    let r1 = Box::new(RecordingTransport {
        inner: t1,
        sent: Arc::clone(&sent1),
    });

    let mut session = PirSession::connect(r0, r1, "audit").unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for index in [1u64, 99, 300] {
        session.query("emb", index, &mut rng).unwrap();
    }
    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();

    let extract_queries = |frames: &[Vec<u8>]| -> Vec<ServerQuery> {
        frames
            .iter()
            .filter_map(|frame| match decode_message(frame) {
                Ok(WireMessage::Query(query)) => Some(query.query),
                _ => None,
            })
            .collect()
    };
    let queries0 = extract_queries(&sent0.lock());
    let queries1 = extract_queries(&sent1.lock());
    assert_eq!(queries0.len(), 3);
    assert_eq!(queries1.len(), 3);

    let contains = |hay: &[u8], needle: &[u8]| hay.windows(needle.len()).any(|w| w == needle);
    for (q0, q1) in queries0.iter().zip(&queries1) {
        // Every frame carries a key for its own party only...
        assert_eq!(q0.key.party, 0);
        assert_eq!(q1.key.party, 1);
        assert_eq!(q0.query_id, q1.query_id);
        // ...and the sibling's key material never appears anywhere in the
        // bytes of the other connection, not even incidentally.
        let seed0 = q0.key.root_seed.to_le_bytes();
        let seed1 = q1.key.root_seed.to_le_bytes();
        assert_ne!(seed0, seed1);
        for frame in sent0.lock().iter() {
            assert!(!contains(frame, &seed1), "party 1 seed leaked to server 0");
        }
        for frame in sent1.lock().iter() {
            assert!(!contains(frame, &seed0), "party 0 seed leaked to server 1");
        }
    }

    // Size accounting: the encoded record inside the frame is exactly
    // `size_bytes()` — estimate == encoded, wire-true.
    for query in queries0.iter().chain(&queries1) {
        let mut writer = pir_wire::codec::WireWriter::new();
        pir_wire::codec::encode_server_query(query, &mut writer);
        assert_eq!(writer.len(), query.size_bytes());
        assert_eq!(
            query.size_bytes(),
            SERVER_QUERY_PREFIX_BYTES + query.key.size_bytes()
        );
    }
}

#[test]
fn wire_update_entry_hot_reloads_both_servers() {
    let runtime = Arc::new(test_runtime(55));
    let (t0, w0) = serve_loopback(&runtime, 0);
    let (t1, w1) = serve_loopback(&runtime, 1);
    let mut session = PirSession::connect(t0, t1, "admin").unwrap();
    let mut rng = StdRng::seed_from_u64(4);

    let table = test_table();
    assert_eq!(session.query("emb", 42, &mut rng).unwrap(), table.entry(42));

    let fresh = vec![0x5A; 24];
    session.update_entry("emb", 42, &fresh).unwrap();
    assert_eq!(session.query("emb", 42, &mut rng).unwrap(), fresh);
    // Neighbours untouched.
    assert_eq!(session.query("emb", 43, &mut rng).unwrap(), table.entry(43));

    // Width and range violations are typed, local, and never corrupt state.
    assert!(matches!(
        session.update_entry("emb", 1, &[0; 3]),
        Err(WireError::InvalidRequest(_))
    ));
    assert!(matches!(
        session.update_entry("emb", 512, &fresh),
        Err(WireError::InvalidRequest(_))
    ));

    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();
}

#[test]
fn one_sided_errors_do_not_desynchronize_the_session() {
    // Two independent runtimes (the real deployment topology); after the
    // handshake, server 0 shuts down while server 1 keeps answering. Every
    // query now fails one-sided: party 0 sheds, party 1 returns a real
    // share. The session must drain both replies and stay in lockstep —
    // before the drain fix, the second call would pop party 1's stale
    // share and the session was poisoned forever.
    let runtime0 = Arc::new(test_runtime(61));
    let runtime1 = Arc::new(test_runtime(62));
    let (t0, w0) = serve_loopback(&runtime0, 0);
    let (t1, w1) = serve_loopback(&runtime1, 1);
    let mut session = PirSession::connect(t0, t1, "lockstep").unwrap();
    let mut rng = StdRng::seed_from_u64(6);

    assert!(session.query("emb", 5, &mut rng).is_ok());
    runtime0.shutdown();

    for attempt in 0..3 {
        let err = session.query("emb", 9, &mut rng).unwrap_err();
        assert!(
            err.is_shed(),
            "attempt {attempt}: expected a clean shed, got {err}"
        );
    }
    // One-sided update failures drain the other party's ack the same way.
    let err = session.update_entry("emb", 3, &[7u8; 24]).unwrap_err();
    assert!(err.is_shed(), "expected shed update, got {err}");
    let err = session.query("emb", 9, &mut rng).unwrap_err();
    assert!(
        err.is_shed(),
        "post-update queries still in lockstep: {err}"
    );

    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();
}

#[test]
fn pipelined_session_reconstructs_across_two_tables() {
    // Two tables of very different sizes share one v2 session: the pipeline
    // keeps a window of queries in flight across both, and every completion
    // must still reconstruct exactly. Interleaving a slow table with a fast
    // one is also how out-of-order completions arise in practice.
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(91).build().unwrap());
    let slow = PirTable::generate(1 << 12, 32, |row, offset| {
        (row as u8).wrapping_mul(7).wrapping_add(offset as u8)
    });
    let fast = PirTable::generate(64, 8, |row, offset| {
        (row as u8).wrapping_mul(3).wrapping_add(offset as u8)
    });
    for (name, table) in [("slow", slow.clone()), ("fast", fast.clone())] {
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        runtime.register_table(name, table, config).unwrap();
    }
    let runtime = Arc::new(runtime);
    let (t0, w0) = serve_loopback(&runtime, 0);
    let (t1, w1) = serve_loopback(&runtime, 1);
    let mut session = PirSession::connect_with_window(t0, t1, "pipelined", 8).unwrap();
    assert_eq!(session.negotiated_version(), pir_wire::PROTOCOL_V2);
    assert_eq!(session.window(), 8);

    let mut rng = StdRng::seed_from_u64(10);
    let mut expected = std::collections::HashMap::new();
    for i in 0..24u64 {
        let (name, reference, entries) = if i % 3 == 0 {
            ("slow", &slow, 1 << 12)
        } else {
            ("fast", &fast, 64)
        };
        let index = (i * 37) % entries;
        let id = session.submit(name, index, &mut rng).unwrap();
        expected.insert(id, reference.entry(index));
    }
    while session.in_flight() + session.ready() > 0 {
        let done = session.poll().unwrap();
        let want = expected.remove(&done.query_id).expect("known id");
        assert_eq!(done.outcome.unwrap(), want, "query {}", done.query_id);
    }
    assert!(expected.is_empty(), "every submission completed");
    let stats = session.pipeline_stats();
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.version_skew_failures, 0);

    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();
}

#[test]
fn v2_client_against_v1_only_servers_falls_back_to_lockstep() {
    let runtime = Arc::new(test_runtime(83));
    let (t0, w0) = serve_loopback_capped(&runtime, 0, 1);
    let (t1, w1) = serve_loopback_capped(&runtime, 1, 1);
    // The client asks for a deep pipeline; the v1 servers cannot provide
    // one, and the session must clamp instead of failing.
    let mut session = PirSession::connect_with_window(t0, t1, "legacy", 16).unwrap();
    assert_eq!(session.negotiated_version(), pir_wire::PROTOCOL_V1);
    assert_eq!(session.window(), 1, "v1 fallback is lockstep");

    let table = test_table();
    let mut rng = StdRng::seed_from_u64(11);
    for index in [1u64, 200, 400] {
        assert_eq!(
            session.query("emb", index, &mut rng).unwrap(),
            table.entry(index)
        );
    }
    // submit/poll still work — they just behave lockstep.
    let id = session.submit("emb", 42, &mut rng).unwrap();
    let done = session.poll().unwrap();
    assert_eq!(done.query_id, id);
    assert_eq!(done.outcome.unwrap(), table.entry(42));
    assert!(!done.retried);

    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();
}

#[test]
fn mixed_version_frontends_reject_nothing_a_v1_client_needs() {
    // One party still v1-capped, the other already v2: negotiation takes
    // the min and the session works — the staged-rollout scenario.
    let runtime = Arc::new(test_runtime(97));
    let (t0, w0) = serve_loopback_capped(&runtime, 0, 1);
    let (t1, w1) = serve_loopback(&runtime, 1);
    let mut session = PirSession::connect(t0, t1, "staged").unwrap();
    assert_eq!(session.negotiated_version(), pir_wire::PROTOCOL_V1);
    let table = test_table();
    let mut rng = StdRng::seed_from_u64(13);
    assert_eq!(session.query("emb", 77, &mut rng).unwrap(), table.entry(77));
    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();
}

#[test]
fn update_entry_requires_a_drained_pipeline() {
    let runtime = Arc::new(test_runtime(71));
    let (t0, w0) = serve_loopback(&runtime, 0);
    let (t1, w1) = serve_loopback(&runtime, 1);
    let mut session = PirSession::connect_with_window(t0, t1, "admin", 4).unwrap();
    let mut rng = StdRng::seed_from_u64(14);
    session.submit("emb", 1, &mut rng).unwrap();
    let err = session.update_entry("emb", 1, &[0u8; 24]).unwrap_err();
    assert!(matches!(err, WireError::InvalidRequest(_)));
    // Drain, then the update goes through.
    let done = session.poll().unwrap();
    assert!(done.outcome.is_ok());
    session.update_entry("emb", 1, &[9u8; 24]).unwrap();
    assert_eq!(session.query("emb", 1, &mut rng).unwrap(), vec![9u8; 24]);
    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();
}

#[test]
fn quota_exhaustion_is_a_shed_wire_error() {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .per_tenant_quota(1)
            .seed(9)
            .build()
            .unwrap(),
    );
    // A slow batch former so the first query holds its quota slot while the
    // second arrives.
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .max_batch(64)
        .max_wait(Duration::from_millis(200))
        .build()
        .unwrap();
    runtime.register_table("emb", test_table(), config).unwrap();
    let runtime = Arc::new(runtime);

    // Saturate the quota with an embedded query that stays in flight.
    let handle = runtime.handle();
    let parked = handle.query("emb", "greedy", 1).unwrap();

    let (t0, w0) = serve_loopback(&runtime, 0);
    let (t1, w1) = serve_loopback(&runtime, 1);
    let mut session = PirSession::connect(t0, t1, "greedy").unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let err = session.query("emb", 2, &mut rng).unwrap_err();
    assert!(err.is_shed(), "expected shed, got {err}");

    drop(parked);
    drop(session);
    w0.join().unwrap();
    w1.join().unwrap();
}
