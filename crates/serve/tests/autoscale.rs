//! Integration tests of queue-depth autoscaling: a table with an elastic
//! replica range grows its active pool under sustained backlog and shrinks
//! back once the queue drains.

use std::time::{Duration, Instant};

use pir_prf::PrfKind;
use pir_protocol::PirTable;
use pir_serve::{AutoscalePolicy, PirServeRuntime, ServeConfig, StatsSnapshot, TableConfig};

/// Poll `stats()` until `predicate` holds or `timeout` elapses; returns the
/// last snapshot either way. The autoscaler is a real-time controller, so
/// these tests assert *eventual* behavior under generous deadlines instead
/// of exact tick counts.
fn wait_for(
    runtime: &PirServeRuntime,
    timeout: Duration,
    predicate: impl Fn(&StatsSnapshot) -> bool,
) -> StatsSnapshot {
    let deadline = Instant::now() + timeout;
    loop {
        let snapshot = runtime.stats();
        if predicate(&snapshot) || Instant::now() >= deadline {
            return snapshot;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn sustained_backlog_scales_up_and_idle_scales_down() {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .queue_capacity(8192)
            .per_tenant_quota(8192)
            .seed(5)
            .build()
            .unwrap(),
    );
    let table = PirTable::generate(1 << 13, 16, |row, offset| {
        (row as u8).wrapping_mul(11).wrapping_add(offset as u8)
    });
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .replica_range(1, 3)
        .autoscale(AutoscalePolicy {
            high_depth: 8,
            low_depth: 1,
            sustain_ticks: 2,
            tick: Duration::from_millis(1),
        })
        .max_batch(2)
        .max_wait(Duration::from_micros(200))
        .build()
        .unwrap();
    runtime.register_table("elastic", table, config).unwrap();
    let handle = runtime.handle();

    // Starts at the range floor.
    let snapshot = runtime.stats();
    assert_eq!(snapshot.table("elastic").unwrap().active_replicas, [1, 1]);

    // A burst far above high_depth, submitted before any await: the queue
    // backlog must trip the controller.
    let pending: Vec<_> = (0..192u64)
        .map(|i| {
            handle
                .query("elastic", "burst", (i * 31) % (1 << 13))
                .unwrap()
        })
        .collect();
    let snapshot = wait_for(&runtime, Duration::from_secs(20), |s| {
        s.table("elastic").unwrap().scale_up_events > 0
    });
    let stats = snapshot.table("elastic").unwrap();
    assert!(
        stats.scale_up_events > 0,
        "sustained backlog must activate a replica (depths {:?})",
        stats.queue_depths
    );
    assert!(stats.active_replicas.iter().any(|&a| a > 1));
    assert!(stats.active_replicas.iter().all(|&a| a <= 3));

    // Every query still answers exactly once, across however many replicas
    // ended up active.
    for query in pending {
        assert!(query.wait().is_ok());
    }

    // Once drained, sustained idleness parks the extra replicas again.
    let snapshot = wait_for(&runtime, Duration::from_secs(20), |s| {
        let t = s.table("elastic").unwrap();
        t.scale_down_events > 0 && t.active_replicas == [1, 1]
    });
    let stats = snapshot.table("elastic").unwrap();
    assert!(stats.scale_down_events > 0, "idle pool must shrink");
    assert_eq!(stats.active_replicas, [1, 1], "back to the range floor");
    assert_eq!(stats.answered, 192);

    // The snapshot's per-replica active flags agree with the counts.
    for replica in &stats.replicas {
        assert_eq!(
            replica.active,
            replica.replica < stats.active_replicas[replica.party]
        );
    }
    runtime.shutdown();
}

#[test]
fn fixed_ranges_never_autoscale() {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(6).build().unwrap());
    let table = PirTable::generate(256, 8, |row, _| row as u8);
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .replicas(2)
        .max_batch(4)
        .max_wait(Duration::from_millis(1))
        .build()
        .unwrap();
    runtime.register_table("fixed", table, config).unwrap();
    let handle = runtime.handle();
    let pending: Vec<_> = (0..64u64)
        .map(|i| handle.query("fixed", "t", i % 256).unwrap())
        .collect();
    for query in pending {
        assert!(query.wait().is_ok());
    }
    let snapshot = runtime.stats();
    let stats = snapshot.table("fixed").unwrap();
    assert_eq!(stats.scale_up_events, 0);
    assert_eq!(stats.scale_down_events, 0);
    assert_eq!(stats.active_replicas, [2, 2]);
    assert_eq!(stats.answered, 64);
    runtime.shutdown();
}

#[test]
fn parked_replicas_receive_hot_reloads() {
    // A reload applied while a replica is parked must be visible the moment
    // it activates — apply_update walks the whole pool, not just the active
    // prefix. Force activation by scaling via backlog after the update.
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .queue_capacity(8192)
            .per_tenant_quota(8192)
            .seed(7)
            .build()
            .unwrap(),
    );
    let table = PirTable::generate(512, 8, |row, _| row as u8);
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .replica_range(1, 2)
        .autoscale(AutoscalePolicy {
            high_depth: 4,
            low_depth: 1,
            sustain_ticks: 2,
            tick: Duration::from_millis(1),
        })
        .max_batch(2)
        .max_wait(Duration::from_micros(200))
        .build()
        .unwrap();
    runtime.register_table("reloaded", table, config).unwrap();
    let handle = runtime.handle();

    // Update row 3 while replica 1 is parked.
    handle.update_entry("reloaded", 3, &[0xEE; 8]).unwrap();

    // Burst to activate the second replica, then read row 3 repeatedly:
    // whichever replica answers, the value must be the reloaded one.
    let burst: Vec<_> = (0..128u64)
        .map(|i| handle.query("reloaded", "b", i % 512).unwrap())
        .collect();
    let reads: Vec<_> = (0..16)
        .map(|_| handle.query("reloaded", "r", 3).unwrap())
        .collect();
    for read in reads {
        assert_eq!(read.wait().unwrap(), vec![0xEE; 8]);
    }
    for query in burst {
        assert!(query.wait().is_ok());
    }
    runtime.shutdown();
}
