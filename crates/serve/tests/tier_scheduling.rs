//! SLO-tier scheduling contract:
//!
//! (a) background tenants are never starved — under sustained urgent load
//!     every background query resolves (answered, or shed with a typed
//!     reason) within a bounded time,
//! (b) deadline-aware formation closes batches at the urgent deadline and
//!     fills the residue with background work,
//! (c) displacement under a full queue evicts background entries in favor
//!     of urgent arrivals, never the other way around,
//! (d) the client-side hot-entry cache returns rows bit-identical to wire
//!     answers, across a hot reload (generation bump invalidates).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use pir_protocol::{HotEntryCache, PirTable};
use pir_serve::{PirServeRuntime, ServeConfig, ServeError, TableConfig};
use proptest::prelude::*;

fn fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(29).wrapping_add(offset as u8)
}

fn expected_row(row: u64, entry_bytes: usize) -> Vec<u8> {
    (0..entry_bytes).map(|offset| fill(row, offset)).collect()
}

fn tiered_runtime(queue_capacity: usize, max_batch: usize) -> PirServeRuntime {
    let runtime = PirServeRuntime::new(
        ServeConfig::builder()
            .queue_capacity(queue_capacity)
            .per_tenant_quota(4096)
            .seed(11)
            .build()
            .expect("valid serve config"),
    );
    let table = PirTable::generate(128, 8, fill);
    let config = TableConfig::builder()
        .prf_kind(pir_prf::PrfKind::SipHash)
        .max_batch(max_batch)
        .max_wait(Duration::from_millis(2))
        .tier("urgent", Duration::from_millis(2), 0)
        .tier("background", Duration::from_millis(25), 2)
        .assign_tenant("vip", "urgent")
        .default_tier("background")
        .build()
        .expect("valid table config");
    runtime
        .register_table("t", table, config)
        .expect("register");
    runtime
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) No starvation: with an urgent tenant closing batches as fast as
    /// its 2 ms deadline allows, every background query still resolves —
    /// answered or shed with a typed reason — within a bound that is a
    /// small multiple of the background deadline, never an unbounded wait.
    #[test]
    fn background_tenants_are_never_starved(
        urgent_batches in 4usize..12,
        background_queries in 1usize..8,
        seed in any::<u64>(),
    ) {
        let runtime = tiered_runtime(4096, 8);

        // Sustained urgent pressure on a worker thread: bursts of queries
        // that keep closing 2 ms batches for the whole test window.
        let urgent_handle = runtime.handle();
        let pressure = std::thread::spawn(move || {
            let mut answered = 0u64;
            for _ in 0..urgent_batches {
                let pending: Vec<_> = (0..8)
                    .filter_map(|i| urgent_handle.query("t", "vip", (seed.wrapping_add(i)) % 128).ok())
                    .collect();
                for query in pending {
                    if query.wait().is_ok() {
                        answered += 1;
                    }
                }
            }
            answered
        });

        // Background queries submitted mid-pressure must each resolve within
        // a bounded window. The mpsc timeout makes "starved forever" a test
        // failure rather than a hang.
        let bound = Duration::from_millis(2000);
        for i in 0..background_queries {
            let index = (seed.wrapping_mul(3).wrapping_add(i as u64 * 7)) % 128;
            let (tx, rx) = mpsc::channel();
            let background_handle = runtime.handle();
            std::thread::spawn(move || {
                let outcome = match background_handle.query("t", "worker", index) {
                    Ok(pending) => pending.wait(),
                    Err(err) => Err(err),
                };
                let _ = tx.send(outcome);
            });
            let outcome = rx
                .recv_timeout(bound)
                .expect("background query must resolve within the bound, not starve");
            match outcome {
                Ok(row) => prop_assert_eq!(row, expected_row(index, 8)),
                // A shed is an acceptable resolution — but only a *typed*
                // backpressure shed, not an opaque failure.
                Err(err) => prop_assert!(err.is_shed(), "non-shed failure: {}", err),
            }
        }

        let urgent_answered = pressure.join().expect("pressure thread");
        prop_assert!(urgent_answered > 0, "urgent load must have run concurrently");
        runtime.shutdown();
    }
}

/// (b) Deadline-aware formation: a background-only queue waits out the long
/// deadline, but an urgent arrival closes the shared batch at the *urgent*
/// deadline and the background query rides along in the residue — so both
/// complete far sooner than the 25 ms background deadline.
#[test]
fn urgent_arrivals_close_batches_early_with_background_residue() {
    let runtime = tiered_runtime(4096, 32);
    let handle = runtime.handle();
    let started = Instant::now();
    let background = handle.query("t", "worker", 3).expect("admitted");
    let urgent = handle.query("t", "vip", 5).expect("admitted");
    assert_eq!(urgent.wait().expect("urgent answered"), expected_row(5, 8));
    assert_eq!(
        background.wait().expect("background answered"),
        expected_row(3, 8)
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(20),
        "urgent deadline must close the batch well before the 25 ms \
         background deadline (took {elapsed:?})"
    );
    runtime.shutdown();
}

/// (c) Displacement: when the queue is at capacity, an urgent arrival evicts
/// a queued background entry (typed [`ServeError::Displaced`], counted as a
/// shed), and a background arrival into a queue of urgent work is refused
/// with queue-full — priority never displaces upward.
#[test]
fn full_queues_displace_background_in_favor_of_urgent() {
    // Capacity 2 with a huge max_batch/max_wait would race the batch former;
    // instead saturate with background work faster than 25 ms batches drain.
    let runtime = tiered_runtime(2, 64);
    let handle = runtime.handle();
    let mut background = Vec::new();
    let mut displaced_submissions = 0;
    let mut urgent = Vec::new();
    // Interleave: keep the queue brimming with background entries, then push
    // urgent arrivals that must displace them.
    for wave in 0..50 {
        for i in 0..2 {
            if let Ok(pending) = handle.query("t", "worker", (wave * 2 + i) % 128) {
                background.push(pending);
            }
        }
        match handle.query("t", "vip", wave % 128) {
            Ok(pending) => urgent.push(pending),
            Err(err) => {
                // Urgent can still see QueueFull when the queue is all
                // urgent; it must never see Displaced (nothing outranks it).
                assert!(
                    err.is_shed(),
                    "urgent admission failure must be typed: {err}"
                );
                assert!(
                    !matches!(err, ServeError::Displaced { .. }),
                    "urgent entries must not be displaced"
                );
            }
        }
    }
    let mut background_displaced = 0;
    let mut background_answered = 0;
    for pending in background {
        match pending.wait() {
            Ok(row) => {
                assert_eq!(row.len(), 8);
                background_answered += 1;
            }
            Err(ServeError::Displaced { table, tier }) => {
                assert_eq!(table, "t");
                assert_eq!(tier, "background");
                background_displaced += 1;
            }
            Err(err) => assert!(err.is_shed(), "typed shed expected: {err}"),
        }
    }
    for pending in urgent {
        match pending.wait() {
            Ok(row) => assert_eq!(row.len(), 8),
            Err(err) => {
                displaced_submissions += 1;
                assert!(
                    !matches!(err, ServeError::Displaced { .. }),
                    "urgent waiters must never resolve as displaced: {err}"
                );
            }
        }
    }
    assert!(
        background_displaced > 0,
        "urgent arrivals into a full queue must displace background entries \
         (answered {background_answered}, urgent-failed {displaced_submissions})"
    );
    let stats = runtime.stats();
    let table = stats.tables.iter().find(|t| t.table == "t").expect("stats");
    assert_eq!(
        table.displaced,
        background_displaced as u64 + {
            // Displacement is also visible in the per-tier ledger, attributed to
            // the background class only.
            let background_tier = table
                .tiers
                .iter()
                .find(|t| t.tier == "background")
                .expect("tier");
            assert_eq!(background_tier.displaced, table.displaced);
            let urgent_tier = table
                .tiers
                .iter()
                .find(|t| t.tier == "urgent")
                .expect("tier");
            assert_eq!(urgent_tier.displaced, 0);
            0
        }
    );
    runtime.shutdown();
}

/// (d) Hot-entry cache: hits are bit-identical to wire answers, and a hot
/// reload's generation bump invalidates the cache so the *new* row is
/// fetched and cached — never the stale one.
#[test]
fn cache_hits_are_bit_identical_across_hot_reload() {
    let runtime = tiered_runtime(4096, 8);
    let handle = runtime.handle();
    let mut cache = HotEntryCache::new(16);

    // Warm the cache from real wire answers.
    let index = 7u64;
    let (row, generation) = handle
        .query("t", "worker", index)
        .expect("admitted")
        .wait_versioned()
        .expect("answered");
    assert_eq!(row, expected_row(index, 8));
    cache.admit(index, generation, row.clone());
    let hit = cache.lookup(index, generation).expect("cache hit");
    assert_eq!(
        hit, row,
        "cache hit must be bit-identical to the wire answer"
    );

    // Hot reload the row: the next answer carries a bumped generation.
    let new_row = vec![0xAB; 8];
    handle.update_entry("t", index, &new_row).expect("reload");
    let (fresh, new_generation) = handle
        .query("t", "worker", index)
        .expect("admitted")
        .wait_versioned()
        .expect("answered");
    assert_eq!(fresh, new_row, "post-reload answer serves the new bytes");
    assert!(new_generation > generation, "reload bumps the generation");

    // The bump invalidates: the stale row is unreachable, and after
    // re-admission the hit is bit-identical to the *new* wire answer.
    assert!(
        cache.lookup(index, new_generation).is_none(),
        "generation bump must invalidate the cached row"
    );
    assert_eq!(cache.stats().invalidations, 1);
    cache.admit(index, new_generation, fresh.clone());
    assert_eq!(
        cache.lookup(index, new_generation).expect("hit"),
        fresh,
        "post-reload hit must be bit-identical to the post-reload answer"
    );
    // A straggler admit stamped with the old generation must be rejected.
    assert!(!cache.admit(index, generation, row));
    assert_eq!(cache.stats().stale_rejected, 1);
    runtime.shutdown();
}
