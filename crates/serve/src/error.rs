//! Typed errors of the serving runtime.

use std::fmt;
use std::time::Duration;

use pir_protocol::PirError;

/// Errors surfaced by the serving runtime to its clients.
///
/// Admission failures ([`ServeError::QueueFull`], [`ServeError::QuotaExceeded`])
/// are *load-shedding signals*, not bugs: a well-behaved client backs off and
/// retries. The remaining variants indicate misuse (unknown table names,
/// invalid configs) or an underlying protocol failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// No table with this name is registered.
    UnknownTable(String),
    /// A table with this name is already registered.
    TableExists(String),
    /// The per-(table, server) admission queue is at capacity; the query was
    /// shed before key generation.
    QueueFull {
        /// The table whose queue rejected the query.
        table: String,
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// The tenant has reached its in-flight query quota.
    QuotaExceeded {
        /// The tenant that was rejected.
        tenant: String,
        /// Queries the tenant currently has in flight.
        in_flight: usize,
        /// The tenant's quota.
        quota: usize,
    },
    /// The requested index is outside the table.
    IndexOutOfRange {
        /// Requested index.
        index: u64,
        /// Number of entries in the table.
        entries: u64,
    },
    /// The query was admitted but then evicted from a full dispatch queue
    /// by a higher-priority arrival (SLO tier displacement). A shed signal
    /// like [`ServeError::QueueFull`]: the background tier absorbs the
    /// overload so urgent tenants keep their deadline.
    Displaced {
        /// The table whose queue displaced the query.
        table: String,
        /// Name of the displaced query's SLO tier.
        tier: String,
    },
    /// The runtime is shutting down; no new queries are admitted and queued
    /// queries may be drained with this error.
    ShuttingDown,
    /// A configuration was rejected at build time.
    InvalidConfig(String),
    /// An SLO tier set declared a *more urgent* class (lower priority
    /// number) with a *longer* deadline than a less urgent one — deadlines
    /// must be non-decreasing with priority, or the deadline-aware batch
    /// ranking would invert the tiers' meaning.
    TierInversion {
        /// The class whose deadline regressed.
        tier: String,
        /// Its declared deadline.
        deadline: Duration,
        /// The more urgent class it undercuts.
        previous_tier: String,
        /// That class's deadline.
        previous_deadline: Duration,
    },
    /// The underlying PIR protocol layer failed (indicates a bug or a
    /// misconfigured deployment rather than load).
    Protocol(PirError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTable(name) => write!(f, "unknown table '{name}'"),
            Self::TableExists(name) => write!(f, "table '{name}' is already registered"),
            Self::QueueFull { table, depth } => {
                write!(
                    f,
                    "queue for table '{table}' is full ({depth} queued); shed"
                )
            }
            Self::QuotaExceeded {
                tenant,
                in_flight,
                quota,
            } => write!(
                f,
                "tenant '{tenant}' exceeded its quota ({in_flight} in flight, quota {quota})"
            ),
            Self::IndexOutOfRange { index, entries } => {
                write!(
                    f,
                    "index {index} out of range for table of {entries} entries"
                )
            }
            Self::Displaced { table, tier } => {
                write!(
                    f,
                    "query displaced from table '{table}' queue by a higher-priority arrival (tier '{tier}'); shed"
                )
            }
            Self::ShuttingDown => write!(f, "runtime is shutting down"),
            Self::InvalidConfig(message) => write!(f, "invalid config: {message}"),
            Self::TierInversion {
                tier,
                deadline,
                previous_tier,
                previous_deadline,
            } => write!(
                f,
                "tier deadline inversion: '{tier}' ({deadline:?}) is less urgent than '{previous_tier}' ({previous_deadline:?}) but declares a shorter deadline; deadlines must be non-decreasing with priority"
            ),
            Self::Protocol(err) => write!(f, "protocol error: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Protocol(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PirError> for ServeError {
    fn from(err: PirError) -> Self {
        Self::Protocol(err)
    }
}

impl ServeError {
    /// Whether the error is a load-shedding signal (retry later) rather than
    /// a hard failure.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            Self::QueueFull { .. }
                | Self::QuotaExceeded { .. }
                | Self::Displaced { .. }
                | Self::ShuttingDown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_classification() {
        assert!(ServeError::QueueFull {
            table: "t".into(),
            depth: 8
        }
        .is_shed());
        assert!(ServeError::QuotaExceeded {
            tenant: "a".into(),
            in_flight: 3,
            quota: 3
        }
        .is_shed());
        assert!(ServeError::ShuttingDown.is_shed());
        assert!(ServeError::Displaced {
            table: "t".into(),
            tier: "background".into()
        }
        .is_shed());
        assert!(!ServeError::UnknownTable("x".into()).is_shed());
        assert!(!ServeError::TierInversion {
            tier: "bg".into(),
            deadline: std::time::Duration::from_millis(1),
            previous_tier: "fg".into(),
            previous_deadline: std::time::Duration::from_millis(2),
        }
        .is_shed());
        assert!(!ServeError::Protocol(PirError::ResponseMismatch("m".into())).is_shed());
    }

    #[test]
    fn messages_render() {
        let err = ServeError::QueueFull {
            table: "emb".into(),
            depth: 128,
        };
        assert!(err.to_string().contains("emb"));
        assert!(err.to_string().contains("128"));
        let err: ServeError = PirError::ResponseMismatch("boom".into()).into();
        assert!(err.to_string().contains("boom"));
    }
}
