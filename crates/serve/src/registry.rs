//! The table registry: many named tables, each with its own protocol
//! parameters, per-party replica pools and batch-formation queues.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, RwLock};
use pir_protocol::{
    build_replica_with_backend, shard_split_bits, PirClient, PirError, PirResponse, PirServer,
    PirTable, ServerQuery,
};

use crate::config::TableConfig;
use crate::error::ServeError;
use crate::oneshot;
use crate::stats::{ReplicaStats, TableStats};

/// One server share, stamped with the table version it was computed
/// against.
///
/// The stamp is what lets a *wire* client detect a query whose two
/// projections straddled a hot reload (the shares would reconstruct
/// garbage): both parties count applied updates from 1, so matching stamps
/// prove both shares read the same table version. Embedded (pair-enqueued)
/// queries get the same guarantee from the cross-queue update barrier and
/// only use the stamp as a debug check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct AnsweredShare {
    pub response: PirResponse,
    pub table_version: u64,
}

/// One query waiting in a batch former's queue.
pub(crate) struct PendingEntry {
    pub query: ServerQuery,
    pub enqueued_at: Instant,
    /// Absolute batch-formation deadline: `enqueued_at` plus the tenant's
    /// SLO-class deadline. Accumulation closes the forming batch at the
    /// earliest queued deadline, and an expired deadline promotes the entry
    /// to the front of formation (see [`crate::tier::formation_order`]).
    pub deadline: Instant,
    /// Index of the tenant's SLO class in the table's tier set.
    pub tier: usize,
    /// The class's priority (0 = most urgent), denormalized so queue
    /// operations never consult the config.
    pub priority: u8,
    pub responder: oneshot::Sender<Result<AnsweredShare, ServeError>>,
    /// Shared with the submitter's `PendingQuery` (and the sibling entry at
    /// the other party): set when the caller abandons the query, so batch
    /// formation can skip it instead of spending device work on an answer
    /// nobody will read.
    pub canceled: Arc<AtomicBool>,
}

impl PendingEntry {
    pub(crate) fn is_canceled(&self) -> bool {
        self.canceled.load(Ordering::Acquire)
    }
}

/// A hot-reload marker queued *in order* with the queries.
///
/// Both parties' markers are enqueued atomically, so every *pair-enqueued*
/// query (the embedded [`enqueue_pair`](HostedTable::enqueue_pair) path)
/// sits on the same side of the marker in both queues. The batch former
/// applies the update when the marker reaches the queue front, after
/// draining in-flight batches — which makes the update a consistent cut:
/// every pair-enqueued query is answered by both parties from the same
/// table version, and mixed-version shares (which would reconstruct
/// garbage, not stale data) cannot occur.
///
/// Wire-path submissions ([`enqueue_single`](HostedTable::enqueue_single))
/// arrive one projection at a time on independent connections, so no such
/// cross-queue atomicity exists for them — there the admin must sequence
/// updates against in-flight traffic (see `WireFrontend`'s docs).
pub(crate) struct UpdateMarker {
    pub index: u64,
    pub bytes: Arc<Vec<u8>>,
    pub responder: oneshot::Sender<Result<(), ServeError>>,
}

/// One item in a party's dispatch queue.
pub(crate) enum QueueItem {
    /// A query projection awaiting batch formation.
    Query(PendingEntry),
    /// A table-update barrier (see [`UpdateMarker`]).
    Update(UpdateMarker),
}

#[derive(Default)]
pub(crate) struct QueueState {
    pub entries: std::collections::VecDeque<QueueItem>,
    pub closed: bool,
    /// Update markers currently queued; batch formation stops growing a
    /// batch early when one is waiting so the barrier is reached promptly.
    pub pending_updates: usize,
    /// Batches popped from this queue whose device launch has not finished.
    pub inflight_batches: usize,
    /// An update barrier is being applied: all pops pause until cleared.
    pub barrier: bool,
}

/// The bounded queue feeding one party's batch formers.
#[derive(Default)]
pub(crate) struct BatchQueue {
    pub state: Mutex<QueueState>,
    pub arrived: Condvar,
    /// Parked (autoscaler-inactive) workers wait *here*, not on `arrived`,
    /// so the per-query enqueue paths keep their single-wakeup
    /// `notify_one` instead of waking the whole pool per query.
    pub activated: Condvar,
}

impl BatchQueue {
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().entries.len()
    }

    pub(crate) fn close(&self) {
        self.state.lock().closed = true;
        self.arrived.notify_all();
        self.activated.notify_all();
    }
}

/// One interchangeable server replica in a party's pool, plus its dispatch
/// telemetry.
pub(crate) struct ReplicaSlot {
    pub server: Box<dyn PirServer>,
    pub stats: ReplicaStats,
}

/// A table hosted by the runtime: client state and, per non-colluding party,
/// a pool of interchangeable server replicas (each possibly sharded over
/// several devices) fed from one shared dispatch queue.
pub(crate) struct HostedTable {
    pub name: String,
    pub config: TableConfig,
    /// The table's (immutable) shape; entry *values* may change through
    /// hot reloads (each replica server owns its copy behind the
    /// [`pir_protocol::PirServer`] trait), the shape never does.
    pub schema: pir_protocol::TableSchema,
    pub client: PirClient,
    /// `pools[party][replica]`: every replica of a party holds the same
    /// table and answers any batch, so formed batches go to whichever
    /// active replica is idle. Built at the range's `max` size; only the
    /// first [`Self::active_replicas`] of a party drain the queue.
    pub pools: [Vec<ReplicaSlot>; 2],
    pub queues: [BatchQueue; 2],
    /// Replicas currently draining each party's queue, moved by the
    /// autoscale controller inside `config.replicas`.
    pub active: [AtomicUsize; 2],
    /// Hot reloads applied per party, plus one (stamps start at 1 so a
    /// wire client can tell "stamped version 1" from "unstamped v1 frame",
    /// which decodes as 0).
    pub versions: [AtomicU64; 2],
    pub stats: TableStats,
    pub registered_at: Instant,
}

impl HostedTable {
    pub(crate) fn build(
        name: &str,
        table: PirTable,
        config: TableConfig,
    ) -> Result<Self, ServeError> {
        // Reject configs the DPF domain cannot satisfy with a typed error
        // before any replica is constructed; `build_replica` re-checks, but
        // failing early keeps partial pools from ever existing.
        shard_split_bits(table.entries(), config.shards).map_err(invalid_sharding)?;
        // The pool is built at the range's max: replica construction clones
        // the table, and paying that at scale-up time would stall serving.
        let make_pool = || -> Result<Vec<ReplicaSlot>, ServeError> {
            (0..config.replicas.max)
                .map(|_| {
                    Ok(ReplicaSlot {
                        server: build_replica_with_backend(
                            &table,
                            config.prf_kind,
                            config.shards,
                            config.scheduler,
                            config.backend,
                        )
                        .map_err(invalid_sharding)?,
                        stats: ReplicaStats::default(),
                    })
                })
                .collect()
        };
        Ok(Self {
            name: name.to_string(),
            schema: table.schema(),
            client: PirClient::new(table.schema(), config.prf_kind),
            pools: [make_pool()?, make_pool()?],
            queues: [BatchQueue::default(), BatchQueue::default()],
            active: [
                AtomicUsize::new(config.replicas.min),
                AtomicUsize::new(config.replicas.min),
            ],
            versions: [AtomicU64::new(1), AtomicU64::new(1)],
            stats: TableStats::with_tiers(config.tiers.len()),
            registered_at: Instant::now(),
            config,
        })
    }

    /// Replicas currently draining `party`'s queue.
    pub(crate) fn active_replicas(&self, party: usize) -> usize {
        self.active[party].load(Ordering::Acquire)
    }

    /// Move `party`'s active replica count (the autoscale controller's
    /// write path). Newly-activated replicas are woken off the park
    /// condvar; on a scale-down the surplus workers park lazily the next
    /// time they look at the queue.
    pub(crate) fn set_active_replicas(&self, party: usize, count: usize) {
        debug_assert!(
            (self.config.replicas.min..=self.config.replicas.max).contains(&count),
            "active count {count} outside configured range"
        );
        // Publish the count and notify under the queue lock: a parking
        // worker reads the active count and waits on `activated` while
        // holding this lock, so doing both inside it leaves no window
        // between the worker's read and its wait for the notification to
        // land in — a scaled-up worker cannot stay parked while counted
        // active.
        let _state = self.queues[party].state.lock();
        self.active[party].store(count, Ordering::Release);
        self.queues[party].activated.notify_all();
    }

    /// Atomically enqueue the two server projections of one query, or shed.
    ///
    /// Both queue locks are taken in a fixed order so concurrent enqueuers
    /// cannot deadlock, and admissibility is decided on both queues before
    /// either push — a query is either fully admitted or not admitted at
    /// all. A full queue does not immediately shed the *arrival*: if a
    /// strictly lower-priority entry is queued, that entry is displaced
    /// instead (shed with [`ServeError::Displaced`]) — the background tier
    /// absorbs overload so urgent tenants keep their deadline.
    pub(crate) fn enqueue_pair(
        &self,
        capacity: usize,
        to0: PendingEntry,
        to1: PendingEntry,
    ) -> Result<(), ServeError> {
        let displaced = {
            let mut q0 = self.queues[0].state.lock();
            let mut q1 = self.queues[1].state.lock();
            if q0.closed || q1.closed {
                return Err(ServeError::ShuttingDown);
            }
            // Plan both slots before mutating either: admission stays
            // all-or-nothing.
            let plan0 = plan_slot(&q0, capacity, to0.priority);
            let plan1 = plan_slot(&q1, capacity, to1.priority);
            let (Some(plan0), Some(plan1)) = (plan0, plan1) else {
                return Err(ServeError::QueueFull {
                    table: self.name.clone(),
                    depth: q0.entries.len().max(q1.entries.len()),
                });
            };
            let mut displaced = Vec::new();
            if let Some(victim) = execute_slot_plan(&mut q0, plan0) {
                displaced.push(victim);
            }
            if let Some(victim) = execute_slot_plan(&mut q1, plan1) {
                displaced.push(victim);
            }
            q0.entries.push_back(QueueItem::Query(to0));
            q1.entries.push_back(QueueItem::Query(to1));
            displaced
        };
        self.settle_displaced(displaced);
        // A single wakeup suffices: only *active* workers wait on
        // `arrived` (parked ones sit on `activated`), and a worker that
        // discovers it was scaled down mid-wait re-notifies before parking
        // so the baton cannot be lost.
        // pir-lint: allow(notify-one, "one item, one wakeup: parked workers re-pass the baton, and barrier epochs end in notify_all, so no enqueue notification is lost")
        self.queues[0].arrived.notify_one();
        self.queues[1].arrived.notify_one();
        Ok(())
    }

    /// Enqueue one server projection at a single party's queue, or shed.
    ///
    /// This is the wire frontend's submission path: a networked deployment
    /// runs one frontend per party, and each server process only ever sees
    /// (and queues) its own projection. Applies the same displacement rule
    /// as [`Self::enqueue_pair`], per queue.
    pub(crate) fn enqueue_single(
        &self,
        party: usize,
        capacity: usize,
        entry: PendingEntry,
    ) -> Result<(), ServeError> {
        let displaced = {
            let mut queue = self.queues[party].state.lock();
            if queue.closed {
                return Err(ServeError::ShuttingDown);
            }
            let Some(plan) = plan_slot(&queue, capacity, entry.priority) else {
                return Err(ServeError::QueueFull {
                    table: self.name.clone(),
                    depth: queue.entries.len(),
                });
            };
            let victim = execute_slot_plan(&mut queue, plan);
            queue.entries.push_back(QueueItem::Query(entry));
            victim.into_iter().collect::<Vec<_>>()
        };
        self.settle_displaced(displaced);
        // Single wakeup; see `enqueue_pair` for why this cannot be lost.
        // pir-lint: allow(notify-one, "one item, one wakeup; same baton/notify_all discipline as enqueue_pair")
        self.queues[party].arrived.notify_one();
        Ok(())
    }

    /// Deliver [`ServeError::Displaced`] to evicted entries and account the
    /// eviction.
    ///
    /// Called *off* the queue locks: responder delivery runs an arbitrary
    /// waker (thread unpark, remux poke), which must never execute under a
    /// dispatch-queue lock.
    fn settle_displaced(&self, displaced: Vec<PendingEntry>) {
        for victim in displaced {
            // Flag the shared cancellation so the sibling projection at the
            // other party (which may not have been displaced) is skipped at
            // formation instead of computing a share nobody will combine.
            // `swap` also dedupes accounting when *both* parties displaced
            // the same query's projections in one planning pass: the query
            // was displaced once, not twice.
            if victim.canceled.swap(true, Ordering::AcqRel) {
                continue;
            }
            self.stats.displaced.fetch_add(1, Ordering::Relaxed);
            if let Some(tier) = self.stats.tier(victim.tier) {
                tier.displaced.fetch_add(1, Ordering::Relaxed);
            }
            let tier = self.config.tiers.class(victim.tier).name.clone();
            victim.responder.send(Err(ServeError::Displaced {
                table: self.name.clone(),
                tier,
            }));
        }
    }

    /// Atomically enqueue a hot-reload barrier at both parties' queues.
    ///
    /// Same locking discipline as [`Self::enqueue_pair`], so every query
    /// pair is ordered identically relative to the marker in both queues —
    /// the property the consistency guarantee rests on. Updates are control
    /// traffic and bypass the data queue's capacity check.
    pub(crate) fn enqueue_update(
        &self,
        to0: UpdateMarker,
        to1: UpdateMarker,
    ) -> Result<(), ServeError> {
        let mut q0 = self.queues[0].state.lock();
        let mut q1 = self.queues[1].state.lock();
        if q0.closed || q1.closed {
            return Err(ServeError::ShuttingDown);
        }
        q0.entries.push_back(QueueItem::Update(to0));
        q0.pending_updates += 1;
        q1.entries.push_back(QueueItem::Update(to1));
        q1.pending_updates += 1;
        drop(q0);
        drop(q1);
        // All formers must wake: whichever reaches the marker first becomes
        // the barrier applier, the rest must re-check the barrier flag.
        self.queues[0].arrived.notify_all();
        self.queues[1].arrived.notify_all();
        Ok(())
    }
}

fn invalid_sharding(err: PirError) -> ServeError {
    ServeError::InvalidConfig(err.to_string())
}

/// How one queue can make room for an arriving entry.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SlotPlan {
    /// The queue has capacity; just push.
    Room,
    /// Remove the (already dead) entry at this position first.
    PruneCanceled(usize),
    /// Evict the live, strictly lower-priority entry at this position.
    Displace(usize),
}

/// Decide how `state`'s queue admits an arrival of `priority`, or `None`
/// if it cannot (full, and every queued entry is at least as urgent).
///
/// Preference order when full: free a canceled entry (costs nobody
/// anything), else displace the *youngest, least urgent* queued entry whose
/// priority number is strictly greater than the arrival's. Strictness
/// matters twice: same-priority traffic can never displace itself (so the
/// single-tier degenerate case keeps exact classic `QueueFull` semantics),
/// and an arrival never displaces an equally urgent peer that got there
/// first.
fn plan_slot(state: &QueueState, capacity: usize, priority: u8) -> Option<SlotPlan> {
    if state.entries.len() < capacity {
        return Some(SlotPlan::Room);
    }
    let mut victim: Option<(usize, u8)> = None;
    for (position, item) in state.entries.iter().enumerate() {
        let QueueItem::Query(entry) = item else {
            continue;
        };
        if entry.is_canceled() {
            return Some(SlotPlan::PruneCanceled(position));
        }
        if entry.priority > priority {
            // `>=` keeps the youngest among equals as the scan runs
            // front-to-back: a later (younger) entry of the same lowest
            // priority replaces an older one, so FIFO fairness is preserved
            // among the doomed.
            let beats = victim.is_none_or(|(_, best)| entry.priority >= best);
            if beats {
                victim = Some((position, entry.priority));
            }
        }
    }
    victim.map(|(position, _)| SlotPlan::Displace(position))
}

/// Apply a [`SlotPlan`], returning the displaced entry if there is one.
fn execute_slot_plan(state: &mut QueueState, plan: SlotPlan) -> Option<PendingEntry> {
    match plan {
        SlotPlan::Room => None,
        SlotPlan::PruneCanceled(position) => {
            drop(state.entries.remove(position));
            None
        }
        SlotPlan::Displace(position) => match state.entries.remove(position) {
            Some(QueueItem::Query(entry)) => Some(entry),
            // Unreachable: the plan was made under the same lock.
            Some(other) => {
                state
                    .entries
                    .insert(position.min(state.entries.len()), other);
                None
            }
            None => None,
        },
    }
}

/// The runtime's collection of hosted tables.
#[derive(Default)]
pub(crate) struct TableRegistry {
    tables: RwLock<HashMap<String, Arc<HostedTable>>>,
}

impl TableRegistry {
    pub(crate) fn insert(&self, hosted: Arc<HostedTable>) -> Result<(), ServeError> {
        let mut tables = self.tables.write();
        if tables.contains_key(&hosted.name) {
            return Err(ServeError::TableExists(hosted.name.clone()));
        }
        tables.insert(hosted.name.clone(), hosted);
        Ok(())
    }

    pub(crate) fn get(&self, name: &str) -> Result<Arc<HostedTable>, ServeError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTable(name.to_string()))
    }

    pub(crate) fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub(crate) fn all(&self) -> Vec<Arc<HostedTable>> {
        let mut all: Vec<Arc<HostedTable>> = self.tables.read().values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_prf::PrfKind;

    fn hosted(name: &str) -> Arc<HostedTable> {
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        Arc::new(HostedTable::build(name, table, TableConfig::default()).expect("valid table"))
    }

    #[test]
    fn registry_inserts_and_rejects_duplicates() {
        let registry = TableRegistry::default();
        registry.insert(hosted("users")).unwrap();
        registry.insert(hosted("items")).unwrap();
        assert_eq!(registry.names(), vec!["items", "users"]);
        assert!(matches!(
            registry.insert(hosted("users")),
            Err(ServeError::TableExists(_))
        ));
        assert!(registry.get("users").is_ok());
        assert!(matches!(
            registry.get("ghosts"),
            Err(ServeError::UnknownTable(_))
        ));
    }

    #[test]
    fn sharded_tables_get_sharded_servers() {
        let table = PirTable::generate(256, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .shards(4)
            .build()
            .unwrap();
        let hosted = HostedTable::build("big", table, config).expect("valid table");
        // Both parties' replicas serve the same schema through the trait.
        assert_eq!(
            hosted.pools[0][0].server.schema(),
            hosted.pools[1][0].server.schema()
        );
        assert_eq!(hosted.pools[0][0].server.schema().entries, 256);
    }

    #[test]
    fn replica_pools_hold_interchangeable_servers() {
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .replicas(3)
            .build()
            .unwrap();
        let hosted = HostedTable::build("pooled", table, config).expect("valid table");
        for party in 0..2 {
            assert_eq!(hosted.pools[party].len(), 3);
            for slot in &hosted.pools[party] {
                assert_eq!(slot.server.schema().entries, 128);
            }
        }
    }

    fn entry(hosted: &HostedTable, party: u8) -> PendingEntry {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let query = hosted.client.query(3, &mut rng);
        let (tx, _rx) = oneshot::channel();
        let now = Instant::now();
        PendingEntry {
            query: query.to_server(party),
            enqueued_at: now,
            deadline: now + std::time::Duration::from_millis(2),
            tier: 0,
            priority: 0,
            responder: tx,
            canceled: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn enqueue_respects_capacity() {
        let hosted = hosted("capped");
        hosted
            .enqueue_pair(1, entry(&hosted, 0), entry(&hosted, 1))
            .unwrap();
        let err = hosted
            .enqueue_pair(1, entry(&hosted, 0), entry(&hosted, 1))
            .unwrap_err();
        assert!(matches!(err, ServeError::QueueFull { depth: 1, .. }));
        assert_eq!(hosted.queues[0].depth(), 1);
        assert_eq!(hosted.queues[1].depth(), 1);
    }

    #[test]
    fn oversharded_tables_are_rejected_with_typed_error() {
        let table = PirTable::generate(4, 8, |row, _| row as u8);
        let config = TableConfig::builder().shards(64).build().unwrap();
        let err = match HostedTable::build("tiny", table, config) {
            Err(err) => err,
            Ok(_) => panic!("oversharded table must be rejected"),
        };
        assert!(matches!(err, ServeError::InvalidConfig(_)));
        assert!(err.to_string().contains("4 entries"));

        // A 1-entry table has a depth-0 DPF tree: even 2 shards must be
        // rejected here rather than panicking on the first query.
        let singleton = PirTable::generate(1, 8, |row, _| row as u8);
        let config = TableConfig::builder().shards(2).build().unwrap();
        assert!(HostedTable::build("one", singleton, config).is_err());
    }

    #[test]
    fn closed_queues_shed_with_shutting_down() {
        let hosted = hosted("closing");
        hosted.queues[0].close();
        let err = hosted
            .enqueue_pair(8, entry(&hosted, 0), entry(&hosted, 1))
            .unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }
}
