//! [`WireFrontend`]: the server half of the `pir-wire` boundary.
//!
//! A frontend decodes envelopes arriving from untrusted clients, bridges
//! them into the runtime's batching machinery for **one party only**, and
//! encodes the replies. One frontend per party is the deployment shape: in
//! the paper's two-server model each non-colluding server process runs its
//! own runtime and its own frontend, so no code path reachable from a
//! single connection can ever observe both DPF keys — this type does not
//! even have a way to *represent* the pair.
//!
//! # Pipelined service
//!
//! [`WireFrontend::serve`] is a **demux/remux pair**: the transport splits
//! into halves, the calling thread becomes the *demux* (decode each
//! arriving frame, enqueue its query into the batcher without waiting) and
//! a *remux* writer thread drains completed shares **in completion order**
//! — so a v2 client's later query that lands in a faster batch is answered
//! before an earlier slow one, and the batcher sees the whole pipeline
//! window at once instead of one lockstep query at a time. Control frames
//! (catalogs, errors, update acks) are answered inline. Each reply travels
//! under the version its request arrived with, so v1 clients (which are
//! lockstep by construction — they never have more than one frame
//! outstanding) observe exactly the v1 contract on the same port. Query
//! responses are stamped with the answering party's table version (v2
//! frames) and error replies echo the query id they answer, which is what
//! makes out-of-order delivery and hot-reload detection possible
//! client-side.
//!
//! Malformed, truncated or wrong-version frames produce typed
//! [`ErrorReply`]s (for version mismatches, carrying the supported range
//! per the reject-with-supported-range rule); backpressure sheds
//! ([`ServeError::QueueFull`], quota, shutdown) become `shed`-flagged wire
//! errors rather than panics or dropped connections. A client that hangs
//! up with queries still in flight costs no further device work: the
//! dropped pending shares cancel their queued entries.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::{Condvar, Mutex};
use pir_wire::{
    decode_message_versioned, encode_message_v, Catalog, CatalogEntry, ErrorCode, ErrorReply,
    PirTransport, QueryMsg, ResponseMsg, SplitTransport, UpdateAckMsg, UpdateEntryMsg, WireError,
    WireMessage, MAX_SUPPORTED_VERSION, MIN_SUPPORTED_VERSION, PROTOCOL_V1,
};

use crate::error::ServeError;
use crate::handle::{PendingShare, ServeHandle};

/// Longest detail string an error reply carries back to a client.
///
/// Error messages can echo client-supplied strings (table and tenant
/// names), and the canonical encoding caps strings at `u16::MAX` bytes —
/// bounding the echo here keeps a hostile 64 KiB table name from ever
/// pushing a reply past what `put_string` can encode (which would panic
/// the serve thread) and keeps error frames small.
const MAX_ERROR_DETAIL_BYTES: usize = 512;

/// Truncate an error detail to [`MAX_ERROR_DETAIL_BYTES`] on a char
/// boundary.
fn bounded_detail(message: String) -> String {
    if message.len() <= MAX_ERROR_DETAIL_BYTES {
        return message;
    }
    let mut cut = MAX_ERROR_DETAIL_BYTES;
    while !message.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}... (truncated)", &message[..cut])
}

/// The wire-facing server endpoint for one party of the runtime.
pub struct WireFrontend {
    handle: ServeHandle,
    party: u8,
    /// Highest protocol version this frontend speaks (defaults to the
    /// library maximum; capped for staged rollouts and fallback tests).
    max_version: u16,
}

/// What one decoded frame asks the frontend to do.
enum FrameAction {
    /// Answer immediately (catalogs, acks, every kind of error).
    Reply(WireMessage),
    /// A query was admitted into the batcher; answer when its share
    /// completes.
    Share { query_id: u64, share: PendingShare },
}

impl WireFrontend {
    /// Create a frontend answering for `party` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `party` is not 0 or 1 (a deployment wiring error).
    #[must_use]
    pub fn new(handle: ServeHandle, party: u8) -> Self {
        Self::with_max_version(handle, party, MAX_SUPPORTED_VERSION)
    }

    /// Create a frontend capped at `max_version` — a staged-rollout knob
    /// (and the way tests stand up a "v1-only server"): frames above the
    /// cap are rejected with the capped range, and the catalog advertises
    /// the cap, so newer clients cleanly fall back.
    ///
    /// # Panics
    ///
    /// Panics if `party` is not 0 or 1 or the cap is outside the library's
    /// supported range (both are deployment wiring errors).
    #[must_use]
    pub fn with_max_version(handle: ServeHandle, party: u8, max_version: u16) -> Self {
        assert!(party < 2, "two-server protocol: party must be 0 or 1");
        assert!(
            (MIN_SUPPORTED_VERSION..=MAX_SUPPORTED_VERSION).contains(&max_version),
            "version cap {max_version} outside the supported range"
        );
        Self {
            handle,
            party,
            max_version,
        }
    }

    /// The party this frontend answers for.
    #[must_use]
    pub fn party(&self) -> u8 {
        self.party
    }

    /// The highest protocol version this frontend accepts and advertises.
    #[must_use]
    pub fn max_version(&self) -> u16 {
        self.max_version
    }

    /// Handle one request frame and produce the reply frame, blocking until
    /// the answer is ready (the lockstep special case of the pipeline; the
    /// pipelined path is [`Self::serve`]).
    ///
    /// Total: every input, including garbage, yields an encoded reply (the
    /// request/response discipline keeps the connection usable after an
    /// error).
    #[must_use]
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let (version, action) = self.process(frame);
        let reply = match action {
            FrameAction::Reply(message) => message,
            FrameAction::Share { query_id, share } => share_reply(query_id, share.wait()),
        };
        encode_message_v(&reply, version)
    }

    /// Decode one frame and decide how to answer it, returning the version
    /// the reply must be encoded under.
    fn process(&self, frame: &[u8]) -> (u16, FrameAction) {
        let (version, message) = match decode_message_versioned(frame) {
            Ok(decoded) => decoded,
            Err(WireError::UnsupportedVersion { got, .. }) => {
                return (
                    PROTOCOL_V1,
                    FrameAction::Reply(WireMessage::Error(ErrorReply::unsupported_range(
                        got,
                        MIN_SUPPORTED_VERSION,
                        self.max_version,
                    ))),
                )
            }
            Err(err) => {
                return (
                    PROTOCOL_V1,
                    FrameAction::Reply(WireMessage::Error(ErrorReply {
                        code: ErrorCode::Malformed,
                        shed: false,
                        min_version: 0,
                        max_version: 0,
                        query_id: 0,
                        message: bounded_detail(err.to_string()),
                    })),
                )
            }
        };
        if version > self.max_version {
            // The library could decode it, but this frontend is capped
            // below: same reject-with-supported-range rule, answered at the
            // baseline version so the sender is guaranteed to decode it.
            return (
                PROTOCOL_V1,
                FrameAction::Reply(WireMessage::Error(ErrorReply::unsupported_range(
                    version,
                    MIN_SUPPORTED_VERSION,
                    self.max_version,
                ))),
            );
        }
        (version, self.dispatch(message))
    }

    /// Serve one connection until the peer hangs up.
    ///
    /// Splits the transport and runs the demux/remux pair (see the module
    /// docs above); a transport that cannot split is served lockstep.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Transport`] for I/O failures; a clean
    /// [`WireError::ConnectionClosed`] hang-up returns `Ok(())`.
    pub fn serve(&self, transport: Box<dyn PirTransport>) -> Result<(), WireError> {
        match transport.split() {
            SplitTransport::Halves { recv, send } => self.serve_pipelined(recv, send),
            SplitTransport::Whole(whole) => self.serve_lockstep(whole),
        }
    }

    /// The pre-pipelining serve loop: one frame in, one (blocking) frame
    /// out. Used for unsplittable transports.
    fn serve_lockstep(&self, mut transport: Box<dyn PirTransport>) -> Result<(), WireError> {
        loop {
            let frame = match transport.recv() {
                Ok(frame) => frame,
                Err(WireError::ConnectionClosed) => return Ok(()),
                Err(err) => return Err(err),
            };
            let reply = self.handle_frame(&frame);
            match transport.send(&reply) {
                Ok(()) => {}
                Err(WireError::ConnectionClosed) => return Ok(()),
                Err(err) => return Err(err),
            }
        }
    }

    /// The demux loop (this thread) plus the remux writer (spawned).
    fn serve_pipelined(
        &self,
        mut recv: Box<dyn PirTransport>,
        mut send: Box<dyn PirTransport>,
    ) -> Result<(), WireError> {
        let remux = Arc::new(Remux::default());
        let writer = {
            let remux = Arc::clone(&remux);
            std::thread::Builder::new()
                .name(format!("remux-party{}", self.party))
                .spawn(move || run_remux(&remux, send.as_mut()))
                // pir-lint: allow(panic-path, "OS thread spawn fails only on resource exhaustion; the connection cannot proceed without its writer")
                .expect("spawn remux writer")
        };
        let outcome = loop {
            let frame = match recv.recv() {
                Ok(frame) => frame,
                Err(WireError::ConnectionClosed) => break Ok(()),
                Err(err) => break Err(err),
            };
            // Control handling (including the blocking update barrier)
            // happens on this thread; only completed shares go through the
            // writer's completion queue.
            let (version, action) = self.process(&frame);
            let mut state = remux.state.lock();
            if state.closed {
                // The writer hit a send failure: the connection is dead.
                // Its error (if it was a real I/O failure and not a peer
                // hang-up) is picked up after the join below.
                break Ok(());
            }
            match action {
                FrameAction::Reply(message) => {
                    state.frames.push_back(encode_message_v(&message, version));
                }
                FrameAction::Share { query_id, share } => {
                    state.pending.push(PendingReply {
                        share,
                        query_id,
                        version,
                    });
                }
            }
            drop(state);
            remux.bell.notify_all();
        };
        {
            // Closing drops whatever is still pending — each dropped share
            // cancels its queued entry, so a vanished client stops costing
            // device work immediately.
            let mut state = remux.state.lock();
            state.closed = true;
            state.pending.clear();
            state.frames.clear();
        }
        remux.bell.notify_all();
        let _ = writer.join();
        // A writer-side transport failure must reach whoever supervises
        // `serve` — breaking with a clean `Ok(())` would mask it; the
        // reader's own error (if any) stays the primary report.
        let writer_error = remux.state.lock().error.take();
        match (outcome, writer_error) {
            (Ok(()), Some(err)) => Err(err),
            (outcome, _) => outcome,
        }
    }

    fn dispatch(&self, message: WireMessage) -> FrameAction {
        match message {
            WireMessage::CatalogRequest => FrameAction::Reply(self.catalog()),
            WireMessage::Query(query) => self.query(query),
            WireMessage::UpdateEntry(update) => FrameAction::Reply(self.update(update)),
            other => FrameAction::Reply(WireMessage::Error(ErrorReply {
                code: ErrorCode::InvalidRequest,
                shed: false,
                min_version: 0,
                max_version: 0,
                query_id: 0,
                message: format!("server cannot accept a {} message", other.name()),
            })),
        }
    }

    fn catalog(&self) -> WireMessage {
        let tables = self
            .handle
            .inner
            .registry
            .all()
            .into_iter()
            .map(|hosted| CatalogEntry {
                name: hosted.name.clone(),
                schema: hosted.schema,
                prf_kind: hosted.config.prf_kind,
            })
            .collect();
        WireMessage::Catalog(Catalog {
            protocol_version: self.max_version,
            party: self.party,
            tables,
        })
    }

    fn query(&self, query: QueryMsg) -> FrameAction {
        let query_id = query.query.query_id;
        if query.query.party() != self.party {
            return FrameAction::Reply(WireMessage::Error(ErrorReply {
                code: ErrorCode::InvalidRequest,
                shed: false,
                min_version: 0,
                max_version: 0,
                query_id,
                message: format!(
                    "this server answers for party {}, key is for party {}",
                    self.party,
                    query.query.party()
                ),
            }));
        }
        match self
            .handle
            .submit_server_query(&query.table, &query.tenant, query.query)
        {
            Ok(share) => FrameAction::Share { query_id, share },
            Err(err) => FrameAction::Reply(WireMessage::Error(serve_error_reply(&err, query_id))),
        }
    }

    fn update(&self, update: UpdateEntryMsg) -> WireMessage {
        match self
            .handle
            .update_entry(&update.table, update.index, &update.bytes)
        {
            Ok(()) => WireMessage::UpdateAck(UpdateAckMsg {
                table: update.table,
                index: update.index,
            }),
            Err(err) => WireMessage::Error(serve_error_reply(&err, 0)),
        }
    }
}

impl std::fmt::Debug for WireFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireFrontend")
            .field("party", &self.party)
            .field("max_version", &self.max_version)
            .finish()
    }
}

/// Turn one completed share (or its per-query failure) into the reply
/// message.
fn share_reply(
    query_id: u64,
    outcome: Result<crate::registry::AnsweredShare, ServeError>,
) -> WireMessage {
    match outcome {
        Ok(answered) => WireMessage::Response(ResponseMsg {
            response: answered.response,
            table_version: answered.table_version,
        }),
        Err(err) => WireMessage::Error(serve_error_reply(&err, query_id)),
    }
}

/// One admitted query awaiting completion in the remux writer.
struct PendingReply {
    share: PendingShare,
    query_id: u64,
    /// Version the response must be encoded under (the version its request
    /// arrived with).
    version: u16,
}

#[derive(Default)]
struct RemuxState {
    /// Encoded control replies, sent ahead of completions.
    frames: VecDeque<Vec<u8>>,
    /// Admitted queries whose shares are still computing.
    pending: Vec<PendingReply>,
    /// Set by the reader on hang-up and by the writer on send failure.
    closed: bool,
    /// The writer's send failure, when it was a real I/O error rather than
    /// a peer hang-up; `serve_pipelined` surfaces it to its caller.
    error: Option<WireError>,
    /// A share completed (or work arrived) since the writer last looked.
    woken: bool,
}

/// The completion queue between the demux reader and the remux writer.
#[derive(Default)]
struct Remux {
    state: Mutex<RemuxState>,
    bell: Condvar,
}

/// Waker handed to every pending share: rings the remux bell.
struct RemuxWaker(Arc<Remux>);

impl Wake for RemuxWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.state.lock().woken = true;
        self.0.bell.notify_all();
    }
}

/// The remux writer loop: drain control frames in arrival order and
/// completed shares in completion order, encode, send.
fn run_remux(remux: &Arc<Remux>, send: &mut dyn PirTransport) {
    let waker = Waker::from(Arc::new(RemuxWaker(Arc::clone(remux))));
    let mut cx = Context::from_waker(&waker);
    loop {
        // Gather everything sendable under the lock, then send without it.
        let (frames, ready, exit) = {
            let mut state = remux.state.lock();
            loop {
                state.woken = false;
                let frames: Vec<Vec<u8>> = state.frames.drain(..).collect();
                let mut ready = Vec::new();
                let mut index = 0;
                while index < state.pending.len() {
                    // Safe to poll while holding the remux lock: a batcher
                    // delivering a share releases the oneshot's lock
                    // *before* it calls the waker, so there is no
                    // lock-order cycle.
                    match Pin::new(&mut state.pending[index].share).poll(&mut cx) {
                        Poll::Ready(outcome) => {
                            let done = state.pending.swap_remove(index);
                            ready.push((done.query_id, done.version, outcome));
                        }
                        Poll::Pending => index += 1,
                    }
                }
                if !frames.is_empty() || !ready.is_empty() {
                    break (frames, ready, false);
                }
                if state.closed && state.pending.is_empty() {
                    break (frames, ready, true);
                }
                if state.woken {
                    // A completion raced between the drain above and here;
                    // rescan instead of sleeping through it.
                    continue;
                }
                remux.bell.wait(&mut state);
            }
        };
        for frame in frames {
            if let Err(err) = send.send(&frame) {
                close_remux(remux, err);
                return;
            }
        }
        for (query_id, version, outcome) in ready {
            let frame = encode_message_v(&share_reply(query_id, outcome), version);
            if let Err(err) = send.send(&frame) {
                close_remux(remux, err);
                return;
            }
        }
        if exit {
            return;
        }
    }
}

/// Mark the connection dead after a send failure so the reader stops
/// feeding it, recording the failure for `serve_pipelined` to surface.
fn close_remux(remux: &Remux, err: WireError) {
    let mut state = remux.state.lock();
    // A peer that hangs up mid-send is the same clean close the reader
    // reports as `Ok`; only real I/O failures are worth surfacing.
    if !matches!(err, WireError::ConnectionClosed) {
        state.error = Some(err);
    }
    state.closed = true;
    state.pending.clear();
    state.frames.clear();
}

/// Map a runtime error onto the wire's typed error reply, attributed to
/// the query it answers (0 = connection-level).
fn serve_error_reply(err: &ServeError, query_id: u64) -> ErrorReply {
    let code = match err {
        ServeError::UnknownTable(_) => ErrorCode::UnknownTable,
        ServeError::IndexOutOfRange { .. } => ErrorCode::IndexOutOfRange,
        ServeError::QueueFull { .. }
        | ServeError::QuotaExceeded { .. }
        | ServeError::Displaced { .. }
        | ServeError::ShuttingDown => ErrorCode::Shed,
        ServeError::Protocol(_) => ErrorCode::Protocol,
        ServeError::TableExists(_)
        | ServeError::InvalidConfig(_)
        | ServeError::TierInversion { .. } => ErrorCode::InvalidRequest,
    };
    ErrorReply {
        code,
        shed: err.is_shed(),
        min_version: 0,
        max_version: 0,
        query_id,
        message: bounded_detail(err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TableConfig;
    use crate::runtime::PirServeRuntime;
    use crate::ServeConfig;
    use pir_prf::PrfKind;
    use pir_protocol::PirTable;
    use pir_wire::{decode_message, encode_message, MsgType, WireEnvelope, PROTOCOL_V2};
    use std::time::Duration;

    fn runtime() -> PirServeRuntime {
        let runtime = PirServeRuntime::new(ServeConfig::builder().seed(7).build().unwrap());
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        runtime
    }

    #[test]
    fn catalog_identifies_party_tables_and_version_ceiling() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 1);
        let reply = frontend.handle_frame(&encode_message(&WireMessage::CatalogRequest));
        match decode_message(&reply).unwrap() {
            WireMessage::Catalog(catalog) => {
                assert_eq!(catalog.party, 1);
                assert_eq!(catalog.protocol_version, MAX_SUPPORTED_VERSION);
                assert_eq!(catalog.tables.len(), 1);
                assert_eq!(catalog.tables[0].name, "emb");
                assert_eq!(catalog.tables[0].schema.entries, 128);
                assert_eq!(catalog.tables[0].prf_kind, PrfKind::SipHash);
            }
            other => panic!("expected catalog, got {}", other.name()),
        }
    }

    #[test]
    fn capped_frontends_advertise_and_enforce_their_ceiling() {
        let runtime = runtime();
        let frontend = WireFrontend::with_max_version(runtime.handle(), 0, PROTOCOL_V1);
        // Catalog advertises the cap...
        let reply = frontend.handle_frame(&encode_message(&WireMessage::CatalogRequest));
        match decode_message(&reply).unwrap() {
            WireMessage::Catalog(catalog) => assert_eq!(catalog.protocol_version, PROTOCOL_V1),
            other => panic!("expected catalog, got {}", other.name()),
        }
        // ...and a v2 frame (which the *library* could decode) is rejected
        // with the capped range, answered at the baseline version.
        let frame = encode_message_v(&WireMessage::CatalogRequest, PROTOCOL_V2);
        let (version, reply) =
            pir_wire::decode_message_versioned(&frontend.handle_frame(&frame)).unwrap();
        assert_eq!(version, PROTOCOL_V1);
        match reply {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::UnsupportedVersion);
                assert_eq!(error.min_version, PROTOCOL_V1);
                assert_eq!(error.max_version, PROTOCOL_V1);
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn v2_query_replies_are_stamped_and_versioned() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(12);
        let client =
            pir_protocol::PirClient::new(pir_protocol::TableSchema::new(128, 8), PrfKind::SipHash);
        let query = client.query(5, &mut rng);
        let frame = encode_message_v(
            &WireMessage::Query(QueryMsg {
                table: "emb".into(),
                tenant: "t".into(),
                query: query.to_server(0),
            }),
            PROTOCOL_V2,
        );
        let (version, reply) =
            pir_wire::decode_message_versioned(&frontend.handle_frame(&frame)).unwrap();
        assert_eq!(version, PROTOCOL_V2, "reply travels in the request version");
        match reply {
            WireMessage::Response(msg) => {
                assert_eq!(msg.response.query_id, query.query_id);
                assert_eq!(msg.table_version, 1, "fresh table is at version 1");
            }
            other => panic!("expected response, got {}", other.name()),
        }
        // After a hot reload the stamp moves.
        runtime.update_entry("emb", 9, &[7u8; 8]).unwrap();
        let query = client.query(6, &mut rng);
        let frame = encode_message_v(
            &WireMessage::Query(QueryMsg {
                table: "emb".into(),
                tenant: "t".into(),
                query: query.to_server(0),
            }),
            PROTOCOL_V2,
        );
        match decode_message(&frontend.handle_frame(&frame)).unwrap() {
            WireMessage::Response(msg) => assert_eq!(msg.table_version, 2),
            other => panic!("expected response, got {}", other.name()),
        }
    }

    #[test]
    fn garbage_frames_get_typed_error_replies_not_panics() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        for frame in [
            &b""[..],
            &b"XX"[..],
            &[0x50, 0x57, 1, 0, 3][..],               // truncated header
            &[0x50, 0x57, 1, 0, 200, 0, 0, 0, 0][..], // unknown msg type
        ] {
            let reply = frontend.handle_frame(frame);
            match decode_message(&reply).unwrap() {
                WireMessage::Error(error) => assert_eq!(error.code, ErrorCode::Malformed),
                other => panic!("expected error, got {}", other.name()),
            }
        }
    }

    #[test]
    fn hostile_64kib_table_names_get_bounded_error_replies_not_panics() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        // A well-formed Query frame whose table/tenant names are as long as
        // the u16 length prefix allows: the lookup fails, and the error
        // reply must truncate the echoed name instead of panicking the
        // serve thread inside the string encoder.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
        let client =
            pir_protocol::PirClient::new(pir_protocol::TableSchema::new(128, 8), PrfKind::SipHash);
        let query = client.query(5, &mut rng);
        let frame = encode_message(&WireMessage::Query(pir_wire::QueryMsg {
            table: "x".repeat(u16::MAX as usize),
            tenant: "y".repeat(u16::MAX as usize),
            query: query.to_server(0),
        }));
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::UnknownTable);
                assert!(error.message.len() <= MAX_ERROR_DETAIL_BYTES + 32);
                assert!(error.message.ends_with("(truncated)"));
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn version_rejection_carries_the_supported_range() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        let mut frame = encode_message(&WireMessage::CatalogRequest);
        frame[2] = 42; // future protocol version
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::UnsupportedVersion);
                assert_eq!(error.min_version, pir_wire::MIN_SUPPORTED_VERSION);
                assert_eq!(error.max_version, pir_wire::MAX_SUPPORTED_VERSION);
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn wrong_party_keys_are_rejected_at_the_boundary() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        // Generate a legitimate query for the *other* party.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let client =
            pir_protocol::PirClient::new(pir_protocol::TableSchema::new(128, 8), PrfKind::SipHash);
        let query = client.query(5, &mut rng);
        let frame = encode_message_v(
            &WireMessage::Query(pir_wire::QueryMsg {
                table: "emb".into(),
                tenant: "t".into(),
                query: query.to_server(1),
            }),
            PROTOCOL_V2,
        );
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::InvalidRequest);
                assert!(error.message.contains("party"));
                // v2 errors are attributed to the query they answer.
                assert_eq!(error.query_id, query.query_id);
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn shutdown_sheds_wire_queries_with_the_shed_flag() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
        let client =
            pir_protocol::PirClient::new(pir_protocol::TableSchema::new(128, 8), PrfKind::SipHash);
        let query = client.query(5, &mut rng);
        runtime.shutdown();
        let frame = encode_message(&WireMessage::Query(pir_wire::QueryMsg {
            table: "emb".into(),
            tenant: "t".into(),
            query: query.to_server(0),
        }));
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::Shed);
                assert!(error.shed);
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn servers_reject_server_to_client_message_types() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        let frame = WireEnvelope::new(MsgType::CatalogRequest, Vec::new()).encode();
        // Sanity: a valid request works...
        assert!(matches!(
            decode_message(&frontend.handle_frame(&frame)).unwrap(),
            WireMessage::Catalog(_)
        ));
        // ...but a Response sent *to* a server is an InvalidRequest.
        let frame = encode_message(&WireMessage::Response(ResponseMsg {
            response: pir_protocol::PirResponse {
                query_id: 1,
                party: 0,
                share: vec![1],
            },
            table_version: 0,
        }));
        match decode_message(&frontend.handle_frame(&frame)).unwrap() {
            WireMessage::Error(error) => assert_eq!(error.code, ErrorCode::InvalidRequest),
            other => panic!("expected error, got {}", other.name()),
        }
    }
}
