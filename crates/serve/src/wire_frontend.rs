//! [`WireFrontend`]: the server half of the `pir-wire` boundary.
//!
//! A frontend decodes envelopes arriving from untrusted clients, bridges
//! them into the runtime's batching machinery for **one party only**, and
//! encodes the replies. One frontend per party is the deployment shape: in
//! the paper's two-server model each non-colluding server process runs its
//! own runtime and its own frontend, so no code path reachable from a
//! single connection can ever observe both DPF keys — this type does not
//! even have a way to *represent* the pair.
//!
//! Malformed, truncated or wrong-version frames produce typed
//! [`ErrorReply`]s (for version mismatches, carrying the supported range
//! per the reject-with-supported-range rule); backpressure sheds
//! ([`ServeError::QueueFull`], quota, shutdown) become `shed`-flagged wire
//! errors rather than panics or dropped connections.
//!
//! **Hot reloads vs wire traffic**: wire queries enqueue one projection
//! per party on independent connections, so the cross-queue update barrier
//! that protects embedded (pair-enqueued) queries cannot cover a wire
//! query whose two halves straddle an `UpdateEntry` — in that window the
//! client's reconstruction fails and should be retried. Admins updating a
//! live table over the wire should sequence updates against their own
//! in-flight queries (a single lockstep [`pir_wire::PirSession`] does this
//! naturally); version-stamped responses are the noted follow-on for
//! concurrent multi-client admin traffic.

use pir_wire::{
    decode_message, encode_message, Catalog, CatalogEntry, ErrorCode, ErrorReply, PirTransport,
    QueryMsg, UpdateAckMsg, UpdateEntryMsg, WireError, WireMessage, PROTOCOL_VERSION,
};

use crate::error::ServeError;
use crate::handle::ServeHandle;

/// Longest detail string an error reply carries back to a client.
///
/// Error messages can echo client-supplied strings (table and tenant
/// names), and the canonical encoding caps strings at `u16::MAX` bytes —
/// bounding the echo here keeps a hostile 64 KiB table name from ever
/// pushing a reply past what `put_string` can encode (which would panic
/// the serve thread) and keeps error frames small.
const MAX_ERROR_DETAIL_BYTES: usize = 512;

/// Truncate an error detail to [`MAX_ERROR_DETAIL_BYTES`] on a char
/// boundary.
fn bounded_detail(message: String) -> String {
    if message.len() <= MAX_ERROR_DETAIL_BYTES {
        return message;
    }
    let mut cut = MAX_ERROR_DETAIL_BYTES;
    while !message.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}... (truncated)", &message[..cut])
}

/// The wire-facing server endpoint for one party of the runtime.
pub struct WireFrontend {
    handle: ServeHandle,
    party: u8,
}

impl WireFrontend {
    /// Create a frontend answering for `party` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `party` is not 0 or 1 (a deployment wiring error).
    #[must_use]
    pub fn new(handle: ServeHandle, party: u8) -> Self {
        assert!(party < 2, "two-server protocol: party must be 0 or 1");
        Self { handle, party }
    }

    /// The party this frontend answers for.
    #[must_use]
    pub fn party(&self) -> u8 {
        self.party
    }

    /// Handle one request frame and produce the reply frame.
    ///
    /// Total: every input, including garbage, yields an encoded reply (the
    /// request/response discipline keeps the connection usable after an
    /// error).
    #[must_use]
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let reply = match decode_message(frame) {
            Ok(message) => self.dispatch(message),
            Err(WireError::UnsupportedVersion { got, .. }) => {
                WireMessage::Error(ErrorReply::unsupported_version(got))
            }
            Err(err) => WireMessage::Error(ErrorReply {
                code: ErrorCode::Malformed,
                shed: false,
                min_version: 0,
                max_version: 0,
                message: bounded_detail(err.to_string()),
            }),
        };
        encode_message(&reply)
    }

    /// Serve one connection until the peer hangs up.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Transport`] for I/O failures; a clean
    /// [`WireError::ConnectionClosed`] hang-up returns `Ok(())`.
    pub fn serve(&self, transport: &mut dyn PirTransport) -> Result<(), WireError> {
        loop {
            let frame = match transport.recv() {
                Ok(frame) => frame,
                Err(WireError::ConnectionClosed) => return Ok(()),
                Err(err) => return Err(err),
            };
            let reply = self.handle_frame(&frame);
            match transport.send(&reply) {
                Ok(()) => {}
                Err(WireError::ConnectionClosed) => return Ok(()),
                Err(err) => return Err(err),
            }
        }
    }

    fn dispatch(&self, message: WireMessage) -> WireMessage {
        match message {
            WireMessage::CatalogRequest => self.catalog(),
            WireMessage::Query(query) => self.query(query),
            WireMessage::UpdateEntry(update) => self.update(update),
            other => WireMessage::Error(ErrorReply {
                code: ErrorCode::InvalidRequest,
                shed: false,
                min_version: 0,
                max_version: 0,
                message: format!("server cannot accept a {} message", other.name()),
            }),
        }
    }

    fn catalog(&self) -> WireMessage {
        let tables = self
            .handle
            .inner
            .registry
            .all()
            .into_iter()
            .map(|hosted| CatalogEntry {
                name: hosted.name.clone(),
                schema: hosted.schema,
                prf_kind: hosted.config.prf_kind,
            })
            .collect();
        WireMessage::Catalog(Catalog {
            protocol_version: PROTOCOL_VERSION,
            party: self.party,
            tables,
        })
    }

    fn query(&self, query: QueryMsg) -> WireMessage {
        if query.query.party() != self.party {
            return WireMessage::Error(ErrorReply {
                code: ErrorCode::InvalidRequest,
                shed: false,
                min_version: 0,
                max_version: 0,
                message: format!(
                    "this server answers for party {}, key is for party {}",
                    self.party,
                    query.query.party()
                ),
            });
        }
        let pending = self
            .handle
            .submit_server_query(&query.table, &query.tenant, query.query);
        match pending.and_then(super::handle::PendingShare::wait) {
            Ok(response) => WireMessage::Response(response),
            Err(err) => WireMessage::Error(serve_error_reply(&err)),
        }
    }

    fn update(&self, update: UpdateEntryMsg) -> WireMessage {
        match self
            .handle
            .update_entry(&update.table, update.index, &update.bytes)
        {
            Ok(()) => WireMessage::UpdateAck(UpdateAckMsg {
                table: update.table,
                index: update.index,
            }),
            Err(err) => WireMessage::Error(serve_error_reply(&err)),
        }
    }
}

impl std::fmt::Debug for WireFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireFrontend")
            .field("party", &self.party)
            .finish()
    }
}

/// Map a runtime error onto the wire's typed error reply.
fn serve_error_reply(err: &ServeError) -> ErrorReply {
    let code = match err {
        ServeError::UnknownTable(_) => ErrorCode::UnknownTable,
        ServeError::IndexOutOfRange { .. } => ErrorCode::IndexOutOfRange,
        ServeError::QueueFull { .. }
        | ServeError::QuotaExceeded { .. }
        | ServeError::ShuttingDown => ErrorCode::Shed,
        ServeError::Protocol(_) => ErrorCode::Protocol,
        ServeError::TableExists(_) | ServeError::InvalidConfig(_) => ErrorCode::InvalidRequest,
    };
    ErrorReply {
        code,
        shed: err.is_shed(),
        min_version: 0,
        max_version: 0,
        message: bounded_detail(err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TableConfig;
    use crate::runtime::PirServeRuntime;
    use crate::ServeConfig;
    use pir_prf::PrfKind;
    use pir_protocol::PirTable;
    use pir_wire::{MsgType, WireEnvelope};
    use std::time::Duration;

    fn runtime() -> PirServeRuntime {
        let runtime = PirServeRuntime::new(ServeConfig::builder().seed(7).build().unwrap());
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        runtime
    }

    #[test]
    fn catalog_identifies_party_and_tables() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 1);
        let reply = frontend.handle_frame(&encode_message(&WireMessage::CatalogRequest));
        match decode_message(&reply).unwrap() {
            WireMessage::Catalog(catalog) => {
                assert_eq!(catalog.party, 1);
                assert_eq!(catalog.protocol_version, PROTOCOL_VERSION);
                assert_eq!(catalog.tables.len(), 1);
                assert_eq!(catalog.tables[0].name, "emb");
                assert_eq!(catalog.tables[0].schema.entries, 128);
                assert_eq!(catalog.tables[0].prf_kind, PrfKind::SipHash);
            }
            other => panic!("expected catalog, got {}", other.name()),
        }
    }

    #[test]
    fn garbage_frames_get_typed_error_replies_not_panics() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        for frame in [
            &b""[..],
            &b"XX"[..],
            &[0x50, 0x57, 1, 0, 3][..],               // truncated header
            &[0x50, 0x57, 1, 0, 200, 0, 0, 0, 0][..], // unknown msg type
        ] {
            let reply = frontend.handle_frame(frame);
            match decode_message(&reply).unwrap() {
                WireMessage::Error(error) => assert_eq!(error.code, ErrorCode::Malformed),
                other => panic!("expected error, got {}", other.name()),
            }
        }
    }

    #[test]
    fn hostile_64kib_table_names_get_bounded_error_replies_not_panics() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        // A well-formed Query frame whose table/tenant names are as long as
        // the u16 length prefix allows: the lookup fails, and the error
        // reply must truncate the echoed name instead of panicking the
        // serve thread inside the string encoder.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
        let client =
            pir_protocol::PirClient::new(pir_protocol::TableSchema::new(128, 8), PrfKind::SipHash);
        let query = client.query(5, &mut rng);
        let frame = encode_message(&WireMessage::Query(pir_wire::QueryMsg {
            table: "x".repeat(u16::MAX as usize),
            tenant: "y".repeat(u16::MAX as usize),
            query: query.to_server(0),
        }));
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::UnknownTable);
                assert!(error.message.len() <= MAX_ERROR_DETAIL_BYTES + 32);
                assert!(error.message.ends_with("(truncated)"));
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn version_rejection_carries_the_supported_range() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        let mut frame = encode_message(&WireMessage::CatalogRequest);
        frame[2] = 42; // future protocol version
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::UnsupportedVersion);
                assert_eq!(error.min_version, pir_wire::MIN_SUPPORTED_VERSION);
                assert_eq!(error.max_version, pir_wire::MAX_SUPPORTED_VERSION);
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn wrong_party_keys_are_rejected_at_the_boundary() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        // Generate a legitimate query for the *other* party.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let client =
            pir_protocol::PirClient::new(pir_protocol::TableSchema::new(128, 8), PrfKind::SipHash);
        let query = client.query(5, &mut rng);
        let frame = encode_message(&WireMessage::Query(pir_wire::QueryMsg {
            table: "emb".into(),
            tenant: "t".into(),
            query: query.to_server(1),
        }));
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::InvalidRequest);
                assert!(error.message.contains("party"));
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn shutdown_sheds_wire_queries_with_the_shed_flag() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
        let client =
            pir_protocol::PirClient::new(pir_protocol::TableSchema::new(128, 8), PrfKind::SipHash);
        let query = client.query(5, &mut rng);
        runtime.shutdown();
        let frame = encode_message(&WireMessage::Query(pir_wire::QueryMsg {
            table: "emb".into(),
            tenant: "t".into(),
            query: query.to_server(0),
        }));
        let reply = frontend.handle_frame(&frame);
        match decode_message(&reply).unwrap() {
            WireMessage::Error(error) => {
                assert_eq!(error.code, ErrorCode::Shed);
                assert!(error.shed);
            }
            other => panic!("expected error, got {}", other.name()),
        }
    }

    #[test]
    fn servers_reject_server_to_client_message_types() {
        let runtime = runtime();
        let frontend = WireFrontend::new(runtime.handle(), 0);
        let frame = WireEnvelope::new(MsgType::CatalogRequest, Vec::new()).encode();
        // Sanity: a valid request works...
        assert!(matches!(
            decode_message(&frontend.handle_frame(&frame)).unwrap(),
            WireMessage::Catalog(_)
        ));
        // ...but a Response sent *to* a server is an InvalidRequest.
        let frame = encode_message(&WireMessage::Response(pir_protocol::PirResponse {
            query_id: 1,
            party: 0,
            share: vec![1],
        }));
        match decode_message(&frontend.handle_frame(&frame)).unwrap() {
            WireMessage::Error(error) => assert_eq!(error.code, ErrorCode::InvalidRequest),
            other => panic!("expected error, got {}", other.name()),
        }
    }
}
