//! A minimal waker-correct oneshot channel and a `block_on` executor.
//!
//! The runtime is async without an external executor dependency: queries
//! resolve through [`std::future::Future`]s backed by this channel, and
//! callers either `.await` them from their own executor or use the provided
//! thread-parking [`block_on`].

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

use parking_lot::Mutex;

enum State<T> {
    /// No value yet; the receiver may have parked a waker.
    Pending { waker: Option<Waker> },
    /// Value delivered, not yet taken.
    Ready(T),
    /// Sender dropped without sending.
    Closed,
    /// Value taken by the receiver.
    Taken,
}

struct Shared<T> {
    state: Mutex<State<T>>,
}

/// Sending half; delivering a value consumes it.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
    sent: bool,
}

/// Receiving half; a [`Future`] resolving to `Err(Canceled)` if the sender
/// is dropped first.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The sender was dropped without delivering a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Canceled;

/// Create a connected sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Pending { waker: None }),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
            sent: false,
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Deliver the value, waking the receiver if it is parked.
    pub fn send(mut self, value: T) {
        let waker = {
            let mut state = self.shared.state.lock();
            let previous = std::mem::replace(&mut *state, State::Ready(value));
            match previous {
                State::Pending { waker } => waker,
                // Unreachable by construction (send consumes self), but keep
                // the channel sane if it ever happens.
                other => {
                    *state = other;
                    None
                }
            }
        };
        self.sent = true;
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        let waker = {
            let mut state = self.shared.state.lock();
            if let State::Pending { waker } = &mut *state {
                let waker = waker.take();
                *state = State::Closed;
                waker
            } else {
                None
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.state.lock();
        match std::mem::replace(&mut *state, State::Taken) {
            State::Ready(value) => Poll::Ready(Ok(value)),
            State::Closed => Poll::Ready(Err(Canceled)),
            State::Pending { .. } => {
                *state = State::Pending {
                    waker: Some(cx.waker().clone()),
                };
                Poll::Pending
            }
            // pir-lint: allow(panic-path, "Future contract violation: poll after Ready, mirroring std channel semantics")
            State::Taken => panic!("oneshot polled after completion"),
        }
    }
}

struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drive a future to completion on the current thread.
///
/// Parks the thread between polls; wake-ups come from the future's waker
/// (here: batch formers delivering responses from their worker threads).
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_before_poll_resolves() {
        let (tx, rx) = channel();
        tx.send(7u32);
        assert_eq!(block_on(rx), Ok(7));
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = channel();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send("late".to_string());
        });
        assert_eq!(block_on(rx).unwrap(), "late");
        sender.join().unwrap();
    }

    #[test]
    fn dropped_sender_cancels() {
        let (tx, rx) = channel::<u8>();
        drop(tx);
        assert_eq!(block_on(rx), Err(Canceled));
    }

    #[test]
    fn dropped_sender_wakes_parked_receiver() {
        let (tx, rx) = channel::<u8>();
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        assert_eq!(block_on(rx), Err(Canceled));
        dropper.join().unwrap();
    }
}
