//! The dynamic batch former and replica dispatcher: one worker per (table,
//! party, replica).
//!
//! Each party's replicas drain one shared bounded queue under a
//! *max-batch-size / max-wait-time* policy — the same two-knob formation rule
//! production inference servers use — and submit each formed batch to their
//! own server replica in one call, where the scheduler turns it into a single
//! [`pir_dpf::ExecutionPlan`] and launches it as one simulated kernel.
//! Because every replica worker competes for the same queue, a burst on a hot
//! table naturally fans out: while replica 0 is inside `answer_batch`,
//! replica 1's worker picks up the next formed batch instead of queueing
//! behind it. Before launching, a worker leases the replica's devices from
//! the runtime-wide [`DeviceBudget`](crate::budget::DeviceBudget), so
//! cross-table load shares one fleet instead of statically partitioning it.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crate::budget::DeviceBudget;
use crate::error::ServeError;
use crate::registry::{AnsweredShare, HostedTable, PendingEntry, QueueItem, UpdateMarker};
use crate::tier::{formation_order, BatchCandidate};

/// What one trip through the queue decided to do.
enum Action {
    /// Launch a formed batch.
    Batch(Vec<PendingEntry>),
    /// Apply a hot-reload barrier to every replica of this party.
    Apply(UpdateMarker),
    /// Queue closed and drained: exit.
    Exit,
}

/// Run one replica's batch former until its party's queue is closed *and*
/// drained.
///
/// Shutdown is graceful by construction: closing the queue stops new
/// arrivals, but every already-admitted query is still formed into a final
/// batch and answered, preserving the exactly-once answer guarantee.
/// Canceled entries are skipped at formation time — an abandoned query costs
/// queue capacity only until the next drain, and device work never.
///
/// Hot reloads ride the same queue as [`QueueItem::Update`] barriers.
/// Whichever replica worker finds a marker at the queue front claims it:
/// it raises the party's barrier flag (pausing all pops), waits until every
/// previously-popped batch has finished its launch, applies the update to
/// every replica of the party, then lowers the barrier. Together with the
/// atomic pair/marker enqueue ordering this yields the consistency
/// guarantee: both parties answer any given *pair-enqueued* query from the
/// same table version (wire-path projections enqueue per party and need
/// admin-side sequencing instead; see `WireFrontend`).
pub(crate) fn run_batch_former(
    table: Arc<HostedTable>,
    party: usize,
    replica: usize,
    budget: Arc<DeviceBudget>,
) {
    let policy = table.config.batch;
    let queue = &table.queues[party];
    let slot = &table.pools[party][replica];

    loop {
        let action: Action = {
            let mut state = queue.state.lock();
            loop {
                // A barrier in progress pauses every pop path.
                if state.barrier {
                    queue.arrived.wait(&mut state);
                    continue;
                }
                // A replica the autoscaler has parked does not pop. It
                // still exits promptly on shutdown (active replicas drain
                // whatever is queued) and re-checks on every wake, so a
                // scale-up activates it without respawning a thread.
                if replica >= table.active_replicas(party) {
                    if state.closed {
                        break Action::Exit;
                    }
                    // This worker may have been waiting on `arrived` when
                    // it was scaled down, in which case it could just have
                    // consumed a single-wakeup notification meant for an
                    // active worker — pass the baton before parking on the
                    // dedicated condvar.
                    // pir-lint: allow(notify-one, "baton re-pass: barrier is false under this lock, so every arrived-waiter is an active worker (or another to-be-parked one, which re-passes); barrier epochs end in notify_all")
                    queue.arrived.notify_one();
                    queue.activated.wait(&mut state);
                    continue;
                }
                match state.entries.front() {
                    Some(QueueItem::Update(_)) => {
                        let Some(QueueItem::Update(marker)) = state.entries.pop_front() else {
                            unreachable!("front checked above");
                        };
                        state.pending_updates -= 1;
                        state.barrier = true;
                        // Entries popped before the marker must finish
                        // reading the old table before the update lands.
                        while state.inflight_batches > 0 {
                            queue.arrived.wait(&mut state);
                        }
                        break Action::Apply(marker);
                    }
                    Some(QueueItem::Query(_)) => {}
                    None if state.closed => break Action::Exit,
                    None => {
                        queue.arrived.wait(&mut state);
                        continue;
                    }
                }

                // Phase 2: accumulate until the *earliest queued deadline*
                // (each entry's `enqueued_at + its SLO class's deadline`) —
                // so an urgent arrival ends a background batch's
                // accumulation at its own, tighter deadline, and with a
                // single tier this degenerates to the classic
                // `oldest + max_wait` rule. Re-scanned on every wakeup
                // because a new arrival can carry an *earlier* deadline
                // than everything already queued. A queued update ends
                // accumulation early so the barrier is reached promptly.
                loop {
                    let (live, earliest) = scan_live(&mut state, policy.max_batch);
                    if live >= policy.max_batch
                        || state.pending_updates > 0
                        || state.closed
                        || state.barrier
                    {
                        break;
                    }
                    let Some(earliest) = earliest else {
                        // Everything queued was canceled and pruned.
                        break;
                    };
                    let Some(remaining) = earliest.checked_duration_since(Instant::now()) else {
                        break;
                    };
                    if queue.arrived.wait_for(&mut state, remaining).timed_out() {
                        break;
                    }
                }
                if state.barrier {
                    continue;
                }

                // Formation: rank the live prefix (everything ahead of the
                // first update marker — entries behind it belong to the new
                // table version's batches) with the tier ordering: expired
                // deadlines first (age promotion: an overdue background
                // entry cannot be starved by a stream of urgent arrivals),
                // then priority, then FIFO. Urgent entries take the batch,
                // background entries fill whatever residue `max_batch`
                // leaves. Canceled queries are discarded as they are found —
                // their responders close (nobody is listening) and they
                // never reach the device — and they don't occupy batch
                // slots, so heavy cancellation can't make formed batches
                // run undersized.
                let mut positions = Vec::new();
                let mut candidates = Vec::new();
                let mut index = 0;
                while index < state.entries.len() {
                    match &state.entries[index] {
                        QueueItem::Query(entry) => {
                            if entry.is_canceled() {
                                drop(state.entries.remove(index));
                            } else {
                                positions.push(index);
                                candidates.push(BatchCandidate {
                                    deadline: entry.deadline,
                                    priority: entry.priority,
                                });
                                index += 1;
                            }
                        }
                        QueueItem::Update(_) => break,
                    }
                }
                let order = formation_order(Instant::now(), &candidates);
                // Map ranks to queue positions, then pull highest positions
                // first so earlier removals don't shift later ones.
                let mut picks: Vec<(usize, usize)> = order
                    .iter()
                    .take(policy.max_batch)
                    .enumerate()
                    .filter_map(|(rank, &candidate)| {
                        positions.get(candidate).map(|&position| (position, rank))
                    })
                    .collect();
                picks.sort_unstable_by_key(|pick| std::cmp::Reverse(pick.0));
                let mut ranked = Vec::with_capacity(picks.len());
                for (position, rank) in picks {
                    if let Some(QueueItem::Query(entry)) = state.entries.remove(position) {
                        ranked.push((rank, entry));
                    }
                }
                ranked.sort_unstable_by_key(|(rank, _)| *rank);
                let batch: Vec<PendingEntry> = ranked.into_iter().map(|(_, entry)| entry).collect();
                if batch.is_empty() {
                    // Everything was canceled (or a marker is at the
                    // front); go around again.
                    continue;
                }
                state.inflight_batches += 1;
                break Action::Batch(batch);
            }
        };

        let batch = match action {
            Action::Exit => return,
            Action::Apply(marker) => {
                let result = apply_update(&table, party, &marker);
                {
                    let mut state = queue.state.lock();
                    state.barrier = false;
                }
                queue.arrived.notify_all();
                marker.responder.send(result);
                continue;
            }
            Action::Batch(batch) => batch,
        };

        // Phase 3: submit the formed batch as one execution plan, off the
        // queue lock so new arrivals keep queueing (and sibling replicas
        // keep forming) during the launch.
        let queries: Vec<_> = batch.iter().map(|entry| entry.query.clone()).collect();
        let drained_at = Instant::now();
        table.stats.record_batch(batch.len());
        {
            let mut queue_wait = table.stats.queue_wait.lock();
            for entry in &batch {
                let waited = drained_at.saturating_duration_since(entry.enqueued_at);
                queue_wait.record_ms(waited.as_secs_f64() * 1e3);
            }
        }

        // The lease carries the memory plan's backend-reported resident
        // footprint for this batch size — the plan (not the serve layer)
        // decides what stays on-device, so telemetry reflects what the
        // backend will actually hold.
        let planned_bytes = slot.server.planned_resident_bytes(queries.len());
        let lease = budget.acquire(table.config.shards, planned_bytes);
        table
            .stats
            .in_flight_batches
            .fetch_add(1, Ordering::Relaxed);
        // Stable for the whole launch: an update barrier waits until every
        // popped batch has finished (`inflight_batches == 0`) before the
        // version moves, so every share in this batch reads — and is
        // stamped with — the same table version.
        let table_version = table.versions[party].load(Ordering::Acquire);
        let launched_at = Instant::now();
        let outcome = slot.server.answer_batch(&queries);
        slot.stats
            .record_batch(batch.len() as u64, launched_at.elapsed());
        table
            .stats
            .in_flight_batches
            .fetch_sub(1, Ordering::Relaxed);
        // The lease covers only the kernel launch: response delivery below
        // must not hold devices that sibling replicas could be using.
        drop(lease);
        // The launch has read the table; a waiting update barrier may
        // proceed once every popped batch has reached this point.
        {
            let mut state = queue.state.lock();
            state.inflight_batches -= 1;
        }
        queue.arrived.notify_all();

        match outcome {
            Ok(responses) => {
                for (entry, response) in batch.into_iter().zip(responses) {
                    entry.responder.send(Ok(AnsweredShare {
                        response,
                        table_version,
                    }));
                }
            }
            Err(err) => {
                for entry in batch {
                    entry.responder.send(Err(err.clone().into()));
                }
            }
        }
    }
}

/// Queries in the queue that are still worth answering, counted up to
/// `cap` — pruning canceled entries as they are found — together with the
/// earliest SLO deadline among them.
///
/// Accumulation counts *these* toward `max_batch`: formation discards
/// canceled entries, so counting them too would let heavy cancellation end
/// accumulation early and launch undersized batches before the deadline.
/// The scan runs under the queue lock on every accumulation wakeup, so it
/// stops at `cap` live entries, and canceled entries (which formation
/// would discard anyway) are dropped on sight — each one costs a visit
/// once ever, not once per wakeup, keeping a canceled-dominated backlog
/// from turning every wakeup into a full-queue walk.
fn scan_live(state: &mut crate::registry::QueueState, cap: usize) -> (usize, Option<Instant>) {
    let mut live = 0;
    let mut earliest: Option<Instant> = None;
    let mut index = 0;
    while live < cap && index < state.entries.len() {
        match &state.entries[index] {
            QueueItem::Query(entry) => {
                if entry.is_canceled() {
                    drop(state.entries.remove(index));
                } else {
                    live += 1;
                    earliest = Some(match earliest {
                        Some(current) => current.min(entry.deadline),
                        None => entry.deadline,
                    });
                    index += 1;
                }
            }
            // An update marker: leave it in place (the accumulation gate's
            // `pending_updates` check ends the wait) and skip past it.
            QueueItem::Update(_) => index += 1,
        }
    }
    (live, earliest)
}

/// Apply one hot-reload marker to every replica of `party`.
///
/// Called with the party's barrier raised and no batches in flight, so no
/// replica is reading while the rows change.
fn apply_update(
    table: &HostedTable,
    party: usize,
    marker: &UpdateMarker,
) -> Result<(), ServeError> {
    // Every replica of the pool — active or parked — takes the update, so
    // a later scale-up activates a replica that is already current.
    for slot in &table.pools[party] {
        slot.server
            .update_entry(marker.index, &marker.bytes)
            .map_err(ServeError::from)?;
    }
    // Bump the party's stamp only after every replica serves the new
    // version; batches launched from here on carry it.
    table.versions[party].fetch_add(1, Ordering::AcqRel);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TableConfig;
    use crate::oneshot;
    use crate::registry::PendingEntry;
    use pir_protocol::PirTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    fn pending(
        hosted: &HostedTable,
        index: u64,
        rng: &mut StdRng,
        canceled: bool,
    ) -> (
        PendingEntry,
        oneshot::Receiver<Result<AnsweredShare, crate::ServeError>>,
    ) {
        let query = hosted.client.query(index, rng);
        let (tx, rx) = oneshot::channel();
        let class = hosted.config.tiers.class(0);
        let now = Instant::now();
        (
            PendingEntry {
                query: query.to_server(0),
                enqueued_at: now,
                deadline: now + class.deadline,
                tier: 0,
                priority: class.priority,
                responder: tx,
                canceled: Arc::new(AtomicBool::new(canceled)),
            },
            rx,
        )
    }

    #[test]
    fn former_coalesces_queued_entries_into_one_batch() {
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(20))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(5);

        // Queue 5 entries for party 0 *before* the worker starts, so they
        // must come out as one batch of 5.
        let mut receivers = Vec::new();
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..5u64 {
                let (entry, rx) = pending(&hosted, index, &mut rng, false);
                state.entries.push_back(QueueItem::Query(entry));
                receivers.push(rx);
            }
        }
        hosted.queues[0].close(); // run one batch, then exit

        let worker = {
            let hosted = Arc::clone(&hosted);
            let budget = Arc::new(DeviceBudget::new(None));
            std::thread::spawn(move || run_batch_former(hosted, 0, 0, budget))
        };
        worker.join().unwrap();

        for rx in receivers {
            assert!(oneshot::block_on(rx).unwrap().is_ok());
        }
        assert_eq!(hosted.stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(hosted.stats.batched_queries.load(Ordering::Relaxed), 5);
        assert_eq!(hosted.stats.max_batch.load(Ordering::Relaxed), 5);
        assert_eq!(hosted.stats.queue_wait.lock().count(), 5);
        // The replica that served the batch recorded its work.
        assert_eq!(hosted.pools[0][0].stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(hosted.pools[0][0].stats.queries.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn canceled_entries_are_skipped_at_formation() {
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(6);

        let mut live = Vec::new();
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..6u64 {
                let (entry, rx) = pending(&hosted, index, &mut rng, index % 2 == 0);
                state.entries.push_back(QueueItem::Query(entry));
                if index % 2 != 0 {
                    live.push(rx);
                }
            }
        }
        hosted.queues[0].close();

        let worker = {
            let hosted = Arc::clone(&hosted);
            let budget = Arc::new(DeviceBudget::new(None));
            std::thread::spawn(move || run_batch_former(hosted, 0, 0, budget))
        };
        worker.join().unwrap();

        // Only the 3 live entries crossed the device.
        assert_eq!(hosted.stats.batched_queries.load(Ordering::Relaxed), 3);
        assert_eq!(hosted.pools[0][0].server.metrics().queries_served, 3);
        for rx in live {
            assert!(oneshot::block_on(rx).unwrap().is_ok());
        }
    }

    #[test]
    fn cancellation_does_not_shrink_formed_batches() {
        // 3 queued entries of which 2 are canceled: with a generous
        // deadline the former must keep accumulating (canceled entries
        // don't count toward max_batch) instead of launching an undersized
        // batch of 1 — the 2 live entries fed in later complete one full
        // batch of 3.
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(3)
            .max_wait(Duration::from_secs(10))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(8);
        let mut live = Vec::new();
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..3u64 {
                let (entry, rx) = pending(&hosted, index, &mut rng, index < 2);
                state.entries.push_back(QueueItem::Query(entry));
                if index >= 2 {
                    live.push(rx);
                }
            }
        }
        let worker = {
            let hosted = Arc::clone(&hosted);
            let budget = Arc::new(DeviceBudget::new(None));
            std::thread::spawn(move || run_batch_former(hosted, 0, 0, budget))
        };
        // Give a buggy former ample time to launch the undersized batch
        // before the queue refills.
        std::thread::sleep(Duration::from_millis(100));
        for index in 3..5u64 {
            let (entry, rx) = pending(&hosted, index, &mut rng, false);
            live.push(rx);
            hosted.enqueue_single(0, 16, entry).unwrap();
        }
        hosted.queues[0].close();
        worker.join().unwrap();
        for rx in live {
            assert!(oneshot::block_on(rx).unwrap().is_ok());
        }
        assert_eq!(hosted.stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(hosted.stats.max_batch.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn all_canceled_batch_launches_nothing() {
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(4)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(7);
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..4u64 {
                let (entry, _rx) = pending(&hosted, index, &mut rng, true);
                state.entries.push_back(QueueItem::Query(entry));
            }
        }
        hosted.queues[0].close();
        let worker = {
            let hosted = Arc::clone(&hosted);
            let budget = Arc::new(DeviceBudget::new(None));
            std::thread::spawn(move || run_batch_former(hosted, 0, 0, budget))
        };
        worker.join().unwrap();
        assert_eq!(hosted.stats.batches.load(Ordering::Relaxed), 0);
        assert_eq!(hosted.pools[0][0].server.metrics().queries_served, 0);
    }
}
