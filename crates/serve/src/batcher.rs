//! The dynamic batch former: one worker per (table, server) pair.
//!
//! Each worker drains its bounded queue under a *max-batch-size /
//! max-wait-time* policy — the same two-knob formation rule production
//! inference servers use — and submits the whole batch to its server replica
//! in one call, where the scheduler turns it into a single
//! [`pir_dpf::ExecutionPlan`] (strategy, grid mapping, threads per block) and
//! launches it as one simulated kernel. Concurrent client queries therefore
//! amortize kernel launches exactly as §3.2.1/§3.2.5 prescribe, without any
//! client coordinating with any other.

use std::sync::Arc;
use std::time::Instant;

use crate::registry::{HostedTable, PendingEntry};

/// Run one batch former until its queue is closed *and* drained.
///
/// Shutdown is graceful by construction: closing the queue stops new
/// arrivals, but every already-admitted query is still formed into a final
/// batch and answered, preserving the exactly-once answer guarantee.
pub(crate) fn run_batch_former(table: Arc<HostedTable>, party: usize) {
    let policy = table.config.batch;
    let queue = &table.queues[party];

    loop {
        // Phase 1: wait for the first arrival (or shutdown).
        let batch: Vec<PendingEntry> = {
            let mut state = queue.state.lock();
            while state.entries.is_empty() && !state.closed {
                queue.arrived.wait(&mut state);
            }
            if state.entries.is_empty() && state.closed {
                return;
            }

            // Phase 2: give the batch up to `max_wait` (measured from the
            // *oldest* entry, so no query waits longer than the policy says)
            // to reach `max_batch`.
            let oldest = state.entries.front().expect("non-empty").enqueued_at;
            let deadline = oldest + policy.max_wait;
            while state.entries.len() < policy.max_batch && !state.closed {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                if queue.arrived.wait_for(&mut state, remaining).timed_out() {
                    break;
                }
            }

            let take = state.entries.len().min(policy.max_batch);
            state.entries.drain(..take).collect()
        };

        // Phase 3: submit the formed batch as one execution plan, off the
        // queue lock so new arrivals keep queueing during the launch.
        let queries: Vec<_> = batch.iter().map(|entry| entry.query.clone()).collect();
        let drained_at = Instant::now();
        table.stats.record_batch(batch.len());
        {
            let mut queue_wait = table.stats.queue_wait.lock();
            for entry in &batch {
                let waited = drained_at.saturating_duration_since(entry.enqueued_at);
                queue_wait.record_ms(waited.as_secs_f64() * 1e3);
            }
        }

        match table.servers[party].answer_batch(&queries) {
            Ok(responses) => {
                for (entry, response) in batch.into_iter().zip(responses) {
                    entry.responder.send(Ok(response));
                }
            }
            Err(err) => {
                for entry in batch {
                    entry.responder.send(Err(err.clone().into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TableConfig;
    use crate::oneshot;
    use crate::registry::PendingEntry;
    use pir_protocol::PirTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    #[test]
    fn former_coalesces_queued_entries_into_one_batch() {
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(20))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(5);

        // Queue 5 entries for party 0 *before* the worker starts, so they
        // must come out as one batch of 5.
        let mut receivers = Vec::new();
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..5u64 {
                let query = hosted.client.query(index, &mut rng);
                let (tx, rx) = oneshot::channel();
                state.entries.push_back(PendingEntry {
                    query: query.to_server(0),
                    enqueued_at: Instant::now(),
                    responder: tx,
                });
                receivers.push(rx);
            }
        }
        hosted.queues[0].close(); // run one batch, then exit

        let worker = {
            let hosted = Arc::clone(&hosted);
            std::thread::spawn(move || run_batch_former(hosted, 0))
        };
        worker.join().unwrap();

        for rx in receivers {
            assert!(oneshot::block_on(rx).unwrap().is_ok());
        }
        assert_eq!(hosted.stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(hosted.stats.batched_queries.load(Ordering::Relaxed), 5);
        assert_eq!(hosted.stats.max_batch.load(Ordering::Relaxed), 5);
        assert_eq!(hosted.stats.queue_wait.lock().count(), 5);
    }
}
