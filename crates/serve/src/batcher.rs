//! The dynamic batch former and replica dispatcher: one worker per (table,
//! party, replica).
//!
//! Each party's replicas drain one shared bounded queue under a
//! *max-batch-size / max-wait-time* policy — the same two-knob formation rule
//! production inference servers use — and submit each formed batch to their
//! own server replica in one call, where the scheduler turns it into a single
//! [`pir_dpf::ExecutionPlan`] and launches it as one simulated kernel.
//! Because every replica worker competes for the same queue, a burst on a hot
//! table naturally fans out: while replica 0 is inside `answer_batch`,
//! replica 1's worker picks up the next formed batch instead of queueing
//! behind it. Before launching, a worker leases the replica's devices from
//! the runtime-wide [`DeviceBudget`](crate::budget::DeviceBudget), so
//! cross-table load shares one fleet instead of statically partitioning it.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crate::budget::DeviceBudget;
use crate::registry::{HostedTable, PendingEntry};

/// Run one replica's batch former until its party's queue is closed *and*
/// drained.
///
/// Shutdown is graceful by construction: closing the queue stops new
/// arrivals, but every already-admitted query is still formed into a final
/// batch and answered, preserving the exactly-once answer guarantee.
/// Canceled entries are skipped at formation time — an abandoned query costs
/// queue capacity only until the next drain, and device work never.
pub(crate) fn run_batch_former(
    table: Arc<HostedTable>,
    party: usize,
    replica: usize,
    budget: Arc<DeviceBudget>,
) {
    let policy = table.config.batch;
    let queue = &table.queues[party];
    let slot = &table.pools[party][replica];

    loop {
        // Phase 1: wait for the first arrival (or shutdown).
        let batch: Vec<PendingEntry> = {
            let mut state = queue.state.lock();
            while state.entries.is_empty() && !state.closed {
                queue.arrived.wait(&mut state);
            }
            if state.entries.is_empty() && state.closed {
                return;
            }

            // Phase 2: give the batch up to `max_wait` (measured from the
            // *oldest* entry, so no query waits longer than the policy says)
            // to reach `max_batch`.
            let oldest = state.entries.front().expect("non-empty").enqueued_at;
            let deadline = oldest + policy.max_wait;
            while state.entries.len() < policy.max_batch && !state.closed {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                if queue.arrived.wait_for(&mut state, remaining).timed_out() {
                    break;
                }
            }

            // Canceled queries are discarded as they are popped — their
            // responders close (nobody is listening) and they never reach
            // the device — and they don't count toward `max_batch`, so
            // heavy cancellation can't make formed batches run undersized.
            let mut batch = Vec::new();
            while batch.len() < policy.max_batch {
                let Some(entry) = state.entries.pop_front() else {
                    break;
                };
                if !entry.is_canceled() {
                    batch.push(entry);
                }
            }
            batch
        };
        if batch.is_empty() {
            continue;
        }

        // Phase 3: submit the formed batch as one execution plan, off the
        // queue lock so new arrivals keep queueing (and sibling replicas
        // keep forming) during the launch.
        let queries: Vec<_> = batch.iter().map(|entry| entry.query.clone()).collect();
        let drained_at = Instant::now();
        table.stats.record_batch(batch.len());
        {
            let mut queue_wait = table.stats.queue_wait.lock();
            for entry in &batch {
                let waited = drained_at.saturating_duration_since(entry.enqueued_at);
                queue_wait.record_ms(waited.as_secs_f64() * 1e3);
            }
        }

        let lease = budget.acquire(table.config.shards);
        table
            .stats
            .in_flight_batches
            .fetch_add(1, Ordering::Relaxed);
        let launched_at = Instant::now();
        let outcome = slot.server.answer_batch(&queries);
        slot.stats
            .record_batch(batch.len() as u64, launched_at.elapsed());
        table
            .stats
            .in_flight_batches
            .fetch_sub(1, Ordering::Relaxed);
        // The lease covers only the kernel launch: response delivery below
        // must not hold devices that sibling replicas could be using.
        drop(lease);

        match outcome {
            Ok(responses) => {
                for (entry, response) in batch.into_iter().zip(responses) {
                    entry.responder.send(Ok(response));
                }
            }
            Err(err) => {
                for entry in batch {
                    entry.responder.send(Err(err.clone().into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TableConfig;
    use crate::oneshot;
    use crate::registry::PendingEntry;
    use pir_protocol::PirTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    fn pending(
        hosted: &HostedTable,
        index: u64,
        rng: &mut StdRng,
        canceled: bool,
    ) -> (
        PendingEntry,
        oneshot::Receiver<Result<pir_protocol::PirResponse, crate::ServeError>>,
    ) {
        let query = hosted.client.query(index, rng);
        let (tx, rx) = oneshot::channel();
        (
            PendingEntry {
                query: query.to_server(0),
                enqueued_at: Instant::now(),
                responder: tx,
                canceled: Arc::new(AtomicBool::new(canceled)),
            },
            rx,
        )
    }

    #[test]
    fn former_coalesces_queued_entries_into_one_batch() {
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(20))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(5);

        // Queue 5 entries for party 0 *before* the worker starts, so they
        // must come out as one batch of 5.
        let mut receivers = Vec::new();
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..5u64 {
                let (entry, rx) = pending(&hosted, index, &mut rng, false);
                state.entries.push_back(entry);
                receivers.push(rx);
            }
        }
        hosted.queues[0].close(); // run one batch, then exit

        let worker = {
            let hosted = Arc::clone(&hosted);
            let budget = Arc::new(DeviceBudget::new(None));
            std::thread::spawn(move || run_batch_former(hosted, 0, 0, budget))
        };
        worker.join().unwrap();

        for rx in receivers {
            assert!(oneshot::block_on(rx).unwrap().is_ok());
        }
        assert_eq!(hosted.stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(hosted.stats.batched_queries.load(Ordering::Relaxed), 5);
        assert_eq!(hosted.stats.max_batch.load(Ordering::Relaxed), 5);
        assert_eq!(hosted.stats.queue_wait.lock().count(), 5);
        // The replica that served the batch recorded its work.
        assert_eq!(hosted.pools[0][0].stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(hosted.pools[0][0].stats.queries.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn canceled_entries_are_skipped_at_formation() {
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(8)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(6);

        let mut live = Vec::new();
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..6u64 {
                let (entry, rx) = pending(&hosted, index, &mut rng, index % 2 == 0);
                state.entries.push_back(entry);
                if index % 2 != 0 {
                    live.push(rx);
                }
            }
        }
        hosted.queues[0].close();

        let worker = {
            let hosted = Arc::clone(&hosted);
            let budget = Arc::new(DeviceBudget::new(None));
            std::thread::spawn(move || run_batch_former(hosted, 0, 0, budget))
        };
        worker.join().unwrap();

        // Only the 3 live entries crossed the device.
        assert_eq!(hosted.stats.batched_queries.load(Ordering::Relaxed), 3);
        assert_eq!(hosted.pools[0][0].server.metrics().queries_served, 3);
        for rx in live {
            assert!(oneshot::block_on(rx).unwrap().is_ok());
        }
    }

    #[test]
    fn all_canceled_batch_launches_nothing() {
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(pir_prf::PrfKind::SipHash)
            .max_batch(4)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        let hosted = Arc::new(HostedTable::build("t", table, config).expect("valid table"));
        let mut rng = StdRng::seed_from_u64(7);
        {
            let mut state = hosted.queues[0].state.lock();
            for index in 0..4u64 {
                let (entry, _rx) = pending(&hosted, index, &mut rng, true);
                state.entries.push_back(entry);
            }
        }
        hosted.queues[0].close();
        let worker = {
            let hosted = Arc::clone(&hosted);
            let budget = Arc::new(DeviceBudget::new(None));
            std::thread::spawn(move || run_batch_former(hosted, 0, 0, budget))
        };
        worker.join().unwrap();
        assert_eq!(hosted.stats.batches.load(Ordering::Relaxed), 0);
        assert_eq!(hosted.pools[0][0].server.metrics().queries_served, 0);
    }
}
