//! Serving telemetry: queue depth, batch occupancy, per-replica utilization
//! and latency quantiles.
//!
//! Counters are updated lock-free from the hot paths; latency samples go
//! through [`pir_core::LatencyHistogram`] behind a mutex (one lock per
//! answered query, far off the device critical path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use pir_core::LatencyHistogram;

/// Internal, shared per-table statistics.
#[derive(Debug, Default)]
pub(crate) struct TableStats {
    pub submitted: AtomicU64,
    pub answered: AtomicU64,
    pub shed: AtomicU64,
    pub failed: AtomicU64,
    pub canceled: AtomicU64,
    /// Queries evicted from a full queue by a higher-priority arrival
    /// (a subset of `shed`).
    pub displaced: AtomicU64,
    pub batches: AtomicU64,
    pub batched_queries: AtomicU64,
    pub max_batch: AtomicU64,
    pub in_flight_batches: AtomicU64,
    /// Autoscale steps that activated a replica (across both parties).
    pub scale_ups: AtomicU64,
    /// Autoscale steps that deactivated a replica (across both parties).
    pub scale_downs: AtomicU64,
    pub queue_wait: Mutex<LatencyHistogram>,
    pub e2e: Mutex<LatencyHistogram>,
    /// One slot per SLO tier class, index-aligned with the table's
    /// `SloTiers::classes()`.
    pub tiers: Vec<TierStats>,
}

impl TableStats {
    /// Stats block sized for a table with `tier_count` SLO classes.
    pub(crate) fn with_tiers(tier_count: usize) -> Self {
        Self {
            tiers: (0..tier_count).map(|_| TierStats::default()).collect(),
            ..Self::default()
        }
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// The counter slot for `tier`, if the table declared that many tiers.
    pub(crate) fn tier(&self, tier: usize) -> Option<&TierStats> {
        self.tiers.get(tier)
    }
}

/// Internal, shared per-SLO-tier statistics.
#[derive(Debug, Default)]
pub(crate) struct TierStats {
    pub submitted: AtomicU64,
    pub answered: AtomicU64,
    pub shed: AtomicU64,
    /// Evictions from a full queue by a higher-priority arrival (also
    /// counted in `shed`).
    pub displaced: AtomicU64,
    pub failed: AtomicU64,
    pub e2e: Mutex<LatencyHistogram>,
}

/// Internal, shared per-replica dispatch statistics.
#[derive(Debug, Default)]
pub(crate) struct ReplicaStats {
    pub batches: AtomicU64,
    pub queries: AtomicU64,
    /// Host microseconds spent inside `answer_batch` (drives utilization).
    pub busy_us: AtomicU64,
}

impl ReplicaStats {
    pub(crate) fn record_batch(&self, queries: u64, busy: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(queries, Ordering::Relaxed);
        self.busy_us
            .fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
    }
}

/// Point-in-time statistics of one server replica in a table's pool.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplicaStatsSnapshot {
    /// Which of the two non-colluding parties this replica serves.
    pub party: usize,
    /// Index within the party's replica pool.
    pub replica: usize,
    /// Whether this replica is currently active (draining the dispatch
    /// queue). Inactive replicas are parked by the autoscaler; their table
    /// copies still receive hot reloads so activation is instant.
    pub active: bool,
    /// Device batches this replica answered.
    pub batches: u64,
    /// Queries carried by those batches.
    pub queries: u64,
    /// Host milliseconds spent inside `answer_batch`.
    pub busy_ms: f64,
    /// Modeled device-busy seconds (simulated kernel time, from the
    /// replica's [`pir_protocol::ServerMetrics`]).
    pub device_busy_s: f64,
    /// Fraction of wall time since registration this replica spent answering
    /// batches (0..1, host-measured).
    pub utilization: f64,
}

/// Memory-plan telemetry for one hosted table, aggregated over every
/// replica of both parties' pools.
///
/// These figures come straight from each replica's backend ledger and plan
/// counters ([`pir_protocol::PirServer::plan_ledger`]) — the serve layer
/// reports what the device layer measured, it never re-derives sizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanTelemetry {
    /// Table bytes currently resident on the replicas' devices.
    pub resident_bytes: u64,
    /// Table-upload transfer events issued (cold starts + hot reloads).
    pub transfers_issued: u64,
    /// Table-upload transfer events avoided by plan-directed residency.
    pub transfers_avoided: u64,
    /// Memory-plan lookups served from the per-replica plan caches.
    pub plan_cache_hits: u64,
    /// Memory-plan lookups that had to build a fresh plan.
    pub plan_cache_misses: u64,
}

/// Point-in-time statistics of one SLO tier of a hosted table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TierStatsSnapshot {
    /// Tier (class) name.
    pub tier: String,
    /// Scheduling rank (0 = most urgent).
    pub priority: u8,
    /// The class's batch-formation deadline, in milliseconds.
    pub deadline_ms: f64,
    /// Queries admitted under this tier.
    pub submitted: u64,
    /// Queries fully answered.
    pub answered: u64,
    /// Queries shed (backpressure or displacement).
    pub shed: u64,
    /// Queries evicted from a full queue by a higher-priority arrival
    /// (subset of `shed`).
    pub displaced: u64,
    /// Queries failed by the protocol layer.
    pub failed: u64,
    /// Median end-to-end latency, in milliseconds.
    pub e2e_p50_ms: Option<f64>,
    /// 99th-percentile end-to-end latency, in milliseconds.
    pub e2e_p99_ms: Option<f64>,
}

/// Point-in-time statistics of one hosted table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStatsSnapshot {
    /// Table name.
    pub table: String,
    /// Queries admitted past the backpressure layer.
    pub submitted: u64,
    /// Queries fully answered (both shares delivered and reconstructed).
    pub answered: u64,
    /// Queries shed by backpressure (queue full / quota / shutdown).
    pub shed: u64,
    /// Queries failed by the protocol layer.
    pub failed: u64,
    /// Queries canceled by their submitter before completion (their queued
    /// entries are skipped at batch formation and cost no device work).
    pub canceled: u64,
    /// Queries evicted from a full queue by a higher-priority arrival
    /// (subset of `shed`).
    pub displaced: u64,
    /// Device batches submitted across both parties' replica pools.
    pub batches: u64,
    /// Queries carried by those batches.
    pub batched_queries: u64,
    /// Largest single batch observed.
    pub max_batch: u64,
    /// Batches currently executing on some replica's devices.
    pub in_flight_batches: u64,
    /// Current depth of the two per-party dispatch queues.
    pub queue_depths: [usize; 2],
    /// Replicas currently active per party (moved by the autoscaler inside
    /// the table's [`crate::config::ReplicaRange`]).
    pub active_replicas: [usize; 2],
    /// Autoscale steps that activated a replica.
    pub scale_up_events: u64,
    /// Autoscale steps that deactivated a replica.
    pub scale_down_events: u64,
    /// Hot reloads applied per party plus one (responses are stamped with
    /// this; both parties agree except transiently while an update barrier
    /// is mid-application).
    pub table_versions: [u64; 2],
    /// One entry per (party, replica) in the table's pools.
    pub replicas: Vec<ReplicaStatsSnapshot>,
    /// Memory-plan telemetry summed over every replica of both pools.
    pub plan: PlanTelemetry,
    /// Host SIMD backend executing this table's PRF sweeps (`"scalar"`,
    /// `"avx2"` or `"neon"` — runtime-detected, overridable with the
    /// `PIR_PRF_BACKEND` environment variable).
    pub prf_backend: &'static str,
    /// Autotuned frontier tile for this table's `(PrfKind, backend)` pair,
    /// once the first batch has probed it (see `pir_dpf::tile`).
    pub frontier_tile: Option<usize>,
    /// Median time a query waited in the batch former, in milliseconds.
    pub queue_p50_ms: Option<f64>,
    /// 99th-percentile batch-former wait, in milliseconds.
    pub queue_p99_ms: Option<f64>,
    /// Median end-to-end (submit → reconstructed) latency, in milliseconds.
    pub e2e_p50_ms: Option<f64>,
    /// 99th-percentile end-to-end latency, in milliseconds.
    pub e2e_p99_ms: Option<f64>,
    /// Mean end-to-end latency, in milliseconds.
    pub e2e_mean_ms: Option<f64>,
    /// Per-SLO-tier telemetry, most urgent class first.
    pub tiers: Vec<TierStatsSnapshot>,
}

impl TableStatsSnapshot {
    /// Mean queries per device batch — the dynamic batcher's whole purpose
    /// is to push this above 1 under concurrent load (§3.2.1).
    #[must_use]
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_queries as f64 / self.batches as f64
    }

    /// Modeled serving makespan in device seconds: replicas answer batches
    /// in parallel, so the table is done when its busiest replica is done.
    /// The single-replica configuration degenerates to that replica's total
    /// busy time — the quantity replica pools exist to divide.
    #[must_use]
    pub fn device_makespan_s(&self) -> f64 {
        self.replicas
            .iter()
            .map(|r| r.device_busy_s)
            .fold(0.0f64, f64::max)
    }
}

/// Point-in-time statistics of the whole runtime.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// One entry per hosted table.
    pub tables: Vec<TableStatsSnapshot>,
    /// Simulated devices currently leased by in-flight batches.
    pub devices_in_use: usize,
    /// The runtime's device budget (`None` = unbounded fleet).
    pub device_budget: Option<usize>,
    /// Backend-reported resident bytes held by in-flight device leases.
    pub resident_bytes_in_use: u64,
    /// High-water mark of resident bytes leased at once since startup.
    pub peak_resident_bytes: u64,
}

impl StatsSnapshot {
    /// Total queries answered across tables.
    #[must_use]
    pub fn answered(&self) -> u64 {
        self.tables.iter().map(|t| t.answered).sum()
    }

    /// Total queries shed across tables.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.tables.iter().map(|t| t.shed).sum()
    }

    /// Queries-per-batch across every device batch in the runtime.
    #[must_use]
    pub fn batch_occupancy(&self) -> f64 {
        let batches: u64 = self.tables.iter().map(|t| t.batches).sum();
        if batches == 0 {
            return 0.0;
        }
        let queries: u64 = self.tables.iter().map(|t| t.batched_queries).sum();
        queries as f64 / batches as f64
    }

    /// Look up one table's snapshot by name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TableStatsSnapshot> {
        self.tables.iter().find(|t| t.table == name)
    }
}

impl TableStatsSnapshot {
    /// Look up one tier's snapshot by class name.
    #[must_use]
    pub fn tier(&self, name: &str) -> Option<&TierStatsSnapshot> {
        self.tiers.iter().find(|t| t.tier == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_queries_per_batch() {
        let stats = TableStats::default();
        stats.record_batch(10);
        stats.record_batch(30);
        assert_eq!(stats.batches.load(Ordering::Relaxed), 2);
        assert_eq!(stats.batched_queries.load(Ordering::Relaxed), 40);
        assert_eq!(stats.max_batch.load(Ordering::Relaxed), 30);

        let snapshot = TableStatsSnapshot {
            batches: 2,
            batched_queries: 40,
            ..TableStatsSnapshot::default()
        };
        assert!((snapshot.batch_occupancy() - 20.0).abs() < 1e-9);
        assert_eq!(TableStatsSnapshot::default().batch_occupancy(), 0.0);
    }

    #[test]
    fn replica_stats_accumulate() {
        let stats = ReplicaStats::default();
        stats.record_batch(8, Duration::from_millis(3));
        stats.record_batch(4, Duration::from_millis(2));
        assert_eq!(stats.batches.load(Ordering::Relaxed), 2);
        assert_eq!(stats.queries.load(Ordering::Relaxed), 12);
        assert_eq!(stats.busy_us.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn device_makespan_is_busiest_replica() {
        let snapshot = TableStatsSnapshot {
            replicas: vec![
                ReplicaStatsSnapshot {
                    device_busy_s: 0.4,
                    ..ReplicaStatsSnapshot::default()
                },
                ReplicaStatsSnapshot {
                    device_busy_s: 0.9,
                    ..ReplicaStatsSnapshot::default()
                },
            ],
            ..TableStatsSnapshot::default()
        };
        assert!((snapshot.device_makespan_s() - 0.9).abs() < 1e-12);
        assert_eq!(TableStatsSnapshot::default().device_makespan_s(), 0.0);
    }

    #[test]
    fn runtime_snapshot_aggregates() {
        let snapshot = StatsSnapshot {
            tables: vec![
                TableStatsSnapshot {
                    table: "a".into(),
                    answered: 10,
                    shed: 1,
                    batches: 2,
                    batched_queries: 10,
                    ..TableStatsSnapshot::default()
                },
                TableStatsSnapshot {
                    table: "b".into(),
                    answered: 20,
                    shed: 3,
                    batches: 3,
                    batched_queries: 30,
                    ..TableStatsSnapshot::default()
                },
            ],
            ..StatsSnapshot::default()
        };
        assert_eq!(snapshot.answered(), 30);
        assert_eq!(snapshot.shed(), 4);
        assert!((snapshot.batch_occupancy() - 8.0).abs() < 1e-9);
        assert!(snapshot.table("a").is_some());
        assert!(snapshot.table("missing").is_none());
    }
}
