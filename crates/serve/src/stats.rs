//! Serving telemetry: queue depth, batch occupancy and latency quantiles.
//!
//! Counters are updated lock-free from the hot paths; latency samples go
//! through [`pir_core::LatencyHistogram`] behind a mutex (one lock per
//! answered query, far off the device critical path).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use pir_core::LatencyHistogram;

/// Internal, shared per-table statistics.
#[derive(Debug, Default)]
pub(crate) struct TableStats {
    pub submitted: AtomicU64,
    pub answered: AtomicU64,
    pub shed: AtomicU64,
    pub failed: AtomicU64,
    pub batches: AtomicU64,
    pub batched_queries: AtomicU64,
    pub max_batch: AtomicU64,
    pub queue_wait: Mutex<LatencyHistogram>,
    pub e2e: Mutex<LatencyHistogram>,
}

impl TableStats {
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }
}

/// Point-in-time statistics of one hosted table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStatsSnapshot {
    /// Table name.
    pub table: String,
    /// Queries admitted past the backpressure layer.
    pub submitted: u64,
    /// Queries fully answered (both shares delivered and reconstructed).
    pub answered: u64,
    /// Queries shed by backpressure (queue full / quota / shutdown).
    pub shed: u64,
    /// Queries failed by the protocol layer.
    pub failed: u64,
    /// Device batches submitted across both servers.
    pub batches: u64,
    /// Queries carried by those batches.
    pub batched_queries: u64,
    /// Largest single batch observed.
    pub max_batch: u64,
    /// Current depth of the two (table, server) queues.
    pub queue_depths: [usize; 2],
    /// Median time a query waited in the batch former, in milliseconds.
    pub queue_p50_ms: Option<f64>,
    /// 99th-percentile batch-former wait, in milliseconds.
    pub queue_p99_ms: Option<f64>,
    /// Median end-to-end (submit → reconstructed) latency, in milliseconds.
    pub e2e_p50_ms: Option<f64>,
    /// 99th-percentile end-to-end latency, in milliseconds.
    pub e2e_p99_ms: Option<f64>,
    /// Mean end-to-end latency, in milliseconds.
    pub e2e_mean_ms: Option<f64>,
}

impl TableStatsSnapshot {
    /// Mean queries per device batch — the dynamic batcher's whole purpose
    /// is to push this above 1 under concurrent load (§3.2.1).
    #[must_use]
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_queries as f64 / self.batches as f64
    }
}

/// Point-in-time statistics of the whole runtime.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// One entry per hosted table.
    pub tables: Vec<TableStatsSnapshot>,
}

impl StatsSnapshot {
    /// Total queries answered across tables.
    #[must_use]
    pub fn answered(&self) -> u64 {
        self.tables.iter().map(|t| t.answered).sum()
    }

    /// Total queries shed across tables.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.tables.iter().map(|t| t.shed).sum()
    }

    /// Queries-per-batch across every device batch in the runtime.
    #[must_use]
    pub fn batch_occupancy(&self) -> f64 {
        let batches: u64 = self.tables.iter().map(|t| t.batches).sum();
        if batches == 0 {
            return 0.0;
        }
        let queries: u64 = self.tables.iter().map(|t| t.batched_queries).sum();
        queries as f64 / batches as f64
    }

    /// Look up one table's snapshot by name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TableStatsSnapshot> {
        self.tables.iter().find(|t| t.table == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_queries_per_batch() {
        let stats = TableStats::default();
        stats.record_batch(10);
        stats.record_batch(30);
        assert_eq!(stats.batches.load(Ordering::Relaxed), 2);
        assert_eq!(stats.batched_queries.load(Ordering::Relaxed), 40);
        assert_eq!(stats.max_batch.load(Ordering::Relaxed), 30);

        let snapshot = TableStatsSnapshot {
            batches: 2,
            batched_queries: 40,
            ..TableStatsSnapshot::default()
        };
        assert!((snapshot.batch_occupancy() - 20.0).abs() < 1e-9);
        assert_eq!(TableStatsSnapshot::default().batch_occupancy(), 0.0);
    }

    #[test]
    fn runtime_snapshot_aggregates() {
        let snapshot = StatsSnapshot {
            tables: vec![
                TableStatsSnapshot {
                    table: "a".into(),
                    answered: 10,
                    shed: 1,
                    batches: 2,
                    batched_queries: 10,
                    ..TableStatsSnapshot::default()
                },
                TableStatsSnapshot {
                    table: "b".into(),
                    answered: 20,
                    shed: 3,
                    batches: 3,
                    batched_queries: 30,
                    ..TableStatsSnapshot::default()
                },
            ],
        };
        assert_eq!(snapshot.answered(), 30);
        assert_eq!(snapshot.shed(), 4);
        assert!((snapshot.batch_occupancy() - 8.0).abs() < 1e-9);
        assert!(snapshot.table("a").is_some());
        assert!(snapshot.table("missing").is_none());
    }
}
