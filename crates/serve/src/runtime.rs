//! The serving runtime: owns the registry, the batch-former workers and the
//! shared admission/telemetry state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use pir_protocol::PirTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::admission::Admission;
use crate::batcher::run_batch_former;
use crate::budget::DeviceBudget;
use crate::config::{ServeConfig, TableConfig};
use crate::error::ServeError;
use crate::handle::ServeHandle;
use crate::registry::{HostedTable, TableRegistry};
use crate::stats::{
    PlanTelemetry, ReplicaStatsSnapshot, StatsSnapshot, TableStatsSnapshot, TierStatsSnapshot,
};

/// A latch the autoscale controllers park on between sampling ticks, so
/// shutdown interrupts a sleeping controller immediately instead of
/// waiting out its tick.
#[derive(Default)]
pub(crate) struct ShutdownLatch {
    fired: Mutex<bool>,
    bell: Condvar,
}

impl ShutdownLatch {
    /// Wait up to `timeout`; returns `true` once shutdown has fired.
    fn wait(&self, timeout: std::time::Duration) -> bool {
        let mut fired = self.fired.lock();
        if !*fired {
            self.bell.wait_for(&mut fired, timeout);
        }
        *fired
    }

    fn fire(&self) {
        *self.fired.lock() = true;
        self.bell.notify_all();
    }
}

pub(crate) struct RuntimeInner {
    pub registry: TableRegistry,
    pub admission: Arc<Admission>,
    pub budget: Arc<DeviceBudget>,
    pub seed: u64,
    pub rng_streams: AtomicU64,
    pub shutting_down: AtomicBool,
    pub shutdown_latch: ShutdownLatch,
}

impl RuntimeInner {
    /// A deterministic, per-query RNG: stream `n` of the runtime seed.
    ///
    /// Lock-free so concurrent submitters can generate DPF keys in
    /// parallel; `StdRng::seed_from_u64` already SplitMix-expands the
    /// combined value, so consecutive streams are uncorrelated.
    pub(crate) fn query_rng(&self) -> StdRng {
        let stream = self.rng_streams.fetch_add(1, Ordering::Relaxed);
        StdRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub(crate) fn stats_snapshot(&self) -> StatsSnapshot {
        let tables = self
            .registry
            .all()
            .into_iter()
            .map(|hosted| {
                let stats = &hosted.stats;
                // One sort per histogram for both quantiles, and the locks
                // (contended by the batch formers and the answer path) are
                // released before assembling the snapshot.
                let (queue_quantiles, e2e_quantiles, e2e_mean) = {
                    let queue_wait = stats.queue_wait.lock();
                    let e2e = stats.e2e.lock();
                    (
                        queue_wait.quantiles_ms(&[0.50, 0.99]),
                        e2e.quantiles_ms(&[0.50, 0.99]),
                        e2e.mean_ms(),
                    )
                };
                let elapsed_s = hosted.registered_at.elapsed().as_secs_f64().max(1e-9);
                let active = [hosted.active_replicas(0), hosted.active_replicas(1)];
                let replicas = hosted
                    .pools
                    .iter()
                    .enumerate()
                    .flat_map(|(party, pool)| {
                        let active = active[party];
                        pool.iter().enumerate().map(move |(replica, slot)| {
                            let busy_ms = slot.stats.busy_us.load(Ordering::Relaxed) as f64 / 1e3;
                            ReplicaStatsSnapshot {
                                party,
                                replica,
                                active: replica < active,
                                batches: slot.stats.batches.load(Ordering::Relaxed),
                                queries: slot.stats.queries.load(Ordering::Relaxed),
                                busy_ms,
                                device_busy_s: slot.server.metrics().busy_time_s,
                                utilization: (busy_ms / 1e3 / elapsed_s).min(1.0),
                            }
                        })
                    })
                    .collect();
                // Memory-plan telemetry: sum each replica's backend-reported
                // ledger — residency and transfer counts come from the
                // device layer, not from serve-side size math.
                let plan = hosted
                    .pools
                    .iter()
                    .flatten()
                    .map(|slot| slot.server.plan_ledger())
                    .fold(pir_dpf::PlanLedger::default(), |acc, ledger| {
                        acc.merged_with(&ledger)
                    });
                let plan = PlanTelemetry {
                    resident_bytes: plan.resident_bytes,
                    transfers_issued: plan.transfers_issued,
                    transfers_avoided: plan.transfers_avoided,
                    plan_cache_hits: plan.plan_cache_hits,
                    plan_cache_misses: plan.plan_cache_misses,
                };
                // Per-tier telemetry: class identity comes from the config,
                // counters and latency quantiles from the matching
                // `TierStats` slot.
                let tiers = hosted
                    .config
                    .tiers
                    .classes()
                    .iter()
                    .enumerate()
                    .map(|(index, class)| {
                        let tier = hosted.stats.tier(index);
                        let load = |get: fn(&crate::stats::TierStats) -> u64| {
                            tier.map(get).unwrap_or_default()
                        };
                        let e2e = tier
                            .map(|t| t.e2e.lock().quantiles_ms(&[0.50, 0.99]))
                            .unwrap_or_else(|| vec![None, None]);
                        TierStatsSnapshot {
                            tier: class.name.clone(),
                            priority: class.priority,
                            deadline_ms: class.deadline.as_secs_f64() * 1e3,
                            submitted: load(|t| t.submitted.load(Ordering::Relaxed)),
                            answered: load(|t| t.answered.load(Ordering::Relaxed)),
                            shed: load(|t| t.shed.load(Ordering::Relaxed)),
                            displaced: load(|t| t.displaced.load(Ordering::Relaxed)),
                            failed: load(|t| t.failed.load(Ordering::Relaxed)),
                            e2e_p50_ms: e2e[0],
                            e2e_p99_ms: e2e[1],
                        }
                    })
                    .collect();
                TableStatsSnapshot {
                    table: hosted.name.clone(),
                    submitted: stats.submitted.load(Ordering::Relaxed),
                    answered: stats.answered.load(Ordering::Relaxed),
                    shed: stats.shed.load(Ordering::Relaxed),
                    displaced: stats.displaced.load(Ordering::Relaxed),
                    failed: stats.failed.load(Ordering::Relaxed),
                    canceled: stats.canceled.load(Ordering::Relaxed),
                    batches: stats.batches.load(Ordering::Relaxed),
                    batched_queries: stats.batched_queries.load(Ordering::Relaxed),
                    max_batch: stats.max_batch.load(Ordering::Relaxed),
                    in_flight_batches: stats.in_flight_batches.load(Ordering::Relaxed),
                    queue_depths: [hosted.queues[0].depth(), hosted.queues[1].depth()],
                    active_replicas: active,
                    scale_up_events: stats.scale_ups.load(Ordering::Relaxed),
                    scale_down_events: stats.scale_downs.load(Ordering::Relaxed),
                    table_versions: [
                        hosted.versions[0].load(Ordering::Relaxed),
                        hosted.versions[1].load(Ordering::Relaxed),
                    ],
                    tiers,
                    replicas,
                    plan,
                    prf_backend: pir_prf::SimdBackend::active().label(),
                    frontier_tile: pir_dpf::reported_frontier_tile(
                        hosted.config.prf_kind,
                        pir_prf::SimdBackend::active().label(),
                    ),
                    queue_p50_ms: queue_quantiles[0],
                    queue_p99_ms: queue_quantiles[1],
                    e2e_p50_ms: e2e_quantiles[0],
                    e2e_p99_ms: e2e_quantiles[1],
                    e2e_mean_ms: e2e_mean,
                }
            })
            .collect();
        StatsSnapshot {
            tables,
            devices_in_use: self.budget.devices_in_use(),
            device_budget: self.budget.capacity(),
            resident_bytes_in_use: self.budget.resident_bytes_in_use(),
            peak_resident_bytes: self.budget.peak_resident_bytes(),
        }
    }
}

/// The multi-tenant serving runtime.
///
/// Owns every hosted table plus one batch-former worker thread per (table,
/// party, replica): each party's replica pool drains a shared dispatch
/// queue, and every launch leases devices from the runtime-wide device
/// budget. Dropping the runtime shuts it down gracefully: queues close,
/// already-admitted queries are answered, workers exit.
pub struct PirServeRuntime {
    inner: Arc<RuntimeInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PirServeRuntime {
    /// Create an empty runtime.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self {
            inner: Arc::new(RuntimeInner {
                admission: Arc::new(Admission::new(config.admission)),
                budget: Arc::new(DeviceBudget::new(config.device_budget)),
                registry: TableRegistry::default(),
                seed: config.seed,
                rng_streams: AtomicU64::new(0),
                shutting_down: AtomicBool::new(false),
                shutdown_latch: ShutdownLatch::default(),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Create a runtime with default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(ServeConfig::default())
    }

    /// Register a table and start its batch formers (one per party per
    /// replica).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::TableExists`] for duplicate names,
    /// [`ServeError::ShuttingDown`] after shutdown has begun, and
    /// [`ServeError::InvalidConfig`] if one replica's batch needs more
    /// devices than the whole device budget (it could never be dispatched).
    pub fn register_table(
        &self,
        name: &str,
        table: PirTable,
        config: TableConfig,
    ) -> Result<(), ServeError> {
        if let Some(capacity) = self.inner.budget.capacity() {
            if config.shards > capacity {
                return Err(ServeError::InvalidConfig(format!(
                    "a {}-shard replica can never fit the {capacity}-device budget",
                    config.shards
                )));
            }
        }
        // The workers lock brackets flag check + registry insert + spawn so a
        // concurrent shutdown (which takes the same lock before closing
        // queues) either sees this table fully registered or rejects us —
        // never a spawned worker whose queue nobody will ever close.
        let mut workers = self.workers.lock();
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let hosted = Arc::new(HostedTable::build(name, table, config)?);
        self.inner.registry.insert(Arc::clone(&hosted))?;

        // Every replica of the range gets a worker thread up front; workers
        // beyond the active count park on the queue condvar until the
        // autoscale controller raises it, so a scale-up costs one notify,
        // not a thread spawn plus a table clone.
        for party in 0..2 {
            for replica in 0..hosted.config.replicas.max {
                let hosted = Arc::clone(&hosted);
                let budget = Arc::clone(&self.inner.budget);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("batcher-{name}-{party}-{replica}"))
                        .spawn(move || run_batch_former(hosted, party, replica, budget))
                        // pir-lint: allow(panic-path, "OS thread spawn fails only on resource exhaustion; no recovery path at table admission")
                        .expect("spawn batch former"),
                );
            }
        }
        if hosted.config.replicas.is_elastic() {
            let inner = Arc::clone(&self.inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("autoscaler-{name}"))
                    .spawn(move || run_autoscaler(&inner, &hosted))
                    // pir-lint: allow(panic-path, "OS thread spawn fails only on resource exhaustion; no recovery path at table admission")
                    .expect("spawn autoscaler"),
            );
        }
        Ok(())
    }

    /// A clonable client handle.
    #[must_use]
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Overwrite one entry of a hosted table (hot reload). See
    /// [`ServeHandle::update_entry`] for the consistency guarantee.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`ServeHandle::update_entry`].
    pub fn update_entry(&self, table: &str, index: u64, bytes: &[u8]) -> Result<(), ServeError> {
        self.handle().update_entry(table, index, bytes)
    }

    /// A point-in-time statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }

    /// Shut down gracefully: stop admitting, answer everything already
    /// queued, join the workers. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.shutdown_latch.fire();
        let workers = {
            // Taken *after* the flag is set: an in-flight register_table
            // either completed under this lock (its queues get closed
            // below) or will observe the flag and bail.
            let mut workers = self.workers.lock();
            for hosted in self.inner.registry.all() {
                hosted.queues[0].close();
                hosted.queues[1].close();
            }
            std::mem::take(&mut *workers)
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// The per-table autoscale controller: one thread per elastic table.
///
/// Every `tick` it samples both parties' dispatch-queue depths and applies
/// the hysteresis policy: `sustain_ticks` consecutive samples above
/// `high_depth` activate one more replica (if the range and the device
/// budget's observed headroom allow), `sustain_ticks` consecutive samples
/// at or below `low_depth` park one (down to the range's floor). Counters
/// reset after every step so consecutive steps each need fresh evidence —
/// the pool ramps, it does not jump.
fn run_autoscaler(inner: &RuntimeInner, table: &HostedTable) {
    let range = table.config.replicas;
    let policy = table.config.autoscale;
    let mut high_ticks = [0u32; 2];
    let mut low_ticks = [0u32; 2];
    loop {
        if inner.shutdown_latch.wait(policy.tick) {
            return;
        }
        for party in 0..2 {
            let depth = table.queues[party].depth();
            if depth > policy.high_depth {
                high_ticks[party] += 1;
                low_ticks[party] = 0;
            } else if depth <= policy.low_depth {
                low_ticks[party] += 1;
                high_ticks[party] = 0;
            } else {
                // Inside the hysteresis band: hold.
                high_ticks[party] = 0;
                low_ticks[party] = 0;
            }

            let active = table.active_replicas(party);
            if high_ticks[party] >= policy.sustain_ticks && active < range.max {
                // Opportunistic lease check: activating a replica only
                // helps if its `shards` devices could currently be leased;
                // under a saturated budget the extra worker would just park
                // inside `acquire` and inflate the FIFO queue.
                let headroom = inner
                    .budget
                    .capacity()
                    .is_none_or(|cap| inner.budget.devices_in_use() + table.config.shards <= cap);
                if headroom {
                    table.set_active_replicas(party, active + 1);
                    table.stats.scale_ups.fetch_add(1, Ordering::Relaxed);
                    high_ticks[party] = 0;
                }
            } else if low_ticks[party] >= policy.sustain_ticks && active > range.min {
                table.set_active_replicas(party, active - 1);
                table.stats.scale_downs.fetch_add(1, Ordering::Relaxed);
                low_ticks[party] = 0;
            }
        }
    }
}

impl Drop for PirServeRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for PirServeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PirServeRuntime")
            .field("tables", &self.inner.registry.names())
            .field(
                "shutting_down",
                &self.inner.shutting_down.load(Ordering::Relaxed),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TableConfig;
    use pir_prf::PrfKind;
    use std::time::Duration;

    fn runtime_with_table(name: &str, entries: u64) -> PirServeRuntime {
        let runtime = PirServeRuntime::new(ServeConfig::builder().seed(11).build().unwrap());
        let table = PirTable::generate(entries, 12, |row, offset| {
            (row as u8).wrapping_mul(5).wrapping_add(offset as u8)
        });
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(16)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        runtime.register_table(name, table, config).unwrap();
        runtime
    }

    #[test]
    fn roundtrip_through_the_runtime() {
        let runtime = runtime_with_table("emb", 200);
        let handle = runtime.handle();
        let expected = |row: u64| {
            (0..12)
                .map(|offset| (row as u8).wrapping_mul(5).wrapping_add(offset as u8))
                .collect::<Vec<u8>>()
        };
        for index in [0u64, 7, 199] {
            let row = handle
                .query("emb", "tenant-a", index)
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(row, expected(index), "index {index}");
        }
        let stats = runtime.stats();
        assert_eq!(stats.answered(), 3);
        let table = stats.table("emb").unwrap();
        assert_eq!(table.submitted, 3);
        assert!(table.e2e_p50_ms.is_some());
        assert!(table.queue_p99_ms.is_some());
    }

    #[test]
    fn unknown_tables_and_bad_indices_are_typed_errors() {
        let runtime = runtime_with_table("emb", 50);
        let handle = runtime.handle();
        assert!(matches!(
            handle.query("nope", "t", 0),
            Err(ServeError::UnknownTable(_))
        ));
        assert!(matches!(
            handle.query("emb", "t", 50),
            Err(ServeError::IndexOutOfRange {
                index: 50,
                entries: 50
            })
        ));
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let runtime = runtime_with_table("emb", 64);
        let handle = runtime.handle();
        let pending = handle.query("emb", "t", 5).unwrap();
        runtime.shutdown();
        // The already-admitted query was still answered.
        assert!(pending.wait().is_ok());
        // New submissions shed.
        assert_eq!(
            handle.query("emb", "t", 6).unwrap_err(),
            ServeError::ShuttingDown
        );
        runtime.shutdown();
    }

    #[test]
    fn tenant_quota_sheds_excess_load() {
        let runtime = PirServeRuntime::new(
            ServeConfig::builder()
                .per_tenant_quota(2)
                .seed(3)
                .build()
                .unwrap(),
        );
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        // A long max_wait so the in-flight queries stay queued while we
        // exceed the quota.
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(1024)
            .max_wait(Duration::from_millis(250))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        let handle = runtime.handle();

        let q1 = handle.query("emb", "greedy", 1).unwrap();
        let q2 = handle.query("emb", "greedy", 2).unwrap();
        assert!(matches!(
            handle.query("emb", "greedy", 3),
            Err(ServeError::QuotaExceeded { quota: 2, .. })
        ));
        // A different tenant is still admitted.
        let q3 = handle.query("emb", "patient", 3).unwrap();
        assert!(q1.wait().is_ok());
        // Completed queries release quota.
        let q4 = handle.query("emb", "greedy", 4).unwrap();
        for q in [q2, q3, q4] {
            assert!(q.wait().is_ok());
        }
        let stats = runtime.stats();
        assert_eq!(stats.table("emb").unwrap().shed, 1);
    }

    #[test]
    fn queue_capacity_sheds_excess_load() {
        let runtime = PirServeRuntime::new(
            ServeConfig::builder()
                .queue_capacity(2)
                .per_tenant_quota(1000)
                .seed(4)
                .build()
                .unwrap(),
        );
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(1024)
            .max_wait(Duration::from_millis(250))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        let handle = runtime.handle();

        let q1 = handle.query("emb", "t", 1).unwrap();
        let q2 = handle.query("emb", "t", 2).unwrap();
        let shed = loop {
            // The workers may drain the queue between submissions; keep
            // pushing until the bounded queue rejects one.
            match handle.query("emb", "t", 3) {
                Err(err) => break err,
                Ok(q) => assert!(q.wait().is_ok()),
            }
        };
        assert!(matches!(shed, ServeError::QueueFull { .. }));
        assert!(q1.wait().is_ok());
        assert!(q2.wait().is_ok());
    }

    #[test]
    fn replicated_tables_roundtrip_and_report_replica_stats() {
        let runtime = PirServeRuntime::new(ServeConfig::builder().seed(21).build().unwrap());
        let table = PirTable::generate(256, 8, |row, _| (row as u8).wrapping_mul(3));
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .replicas(3)
            .max_batch(4)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        let handle = runtime.handle();

        let pending: Vec<_> = (0..24u64)
            .map(|i| {
                (
                    i * 10 % 256,
                    handle.query("emb", "t", i * 10 % 256).unwrap(),
                )
            })
            .collect();
        for (index, query) in pending {
            let row = query.wait().unwrap();
            assert_eq!(row[0], (index as u8).wrapping_mul(3));
        }

        let stats = runtime.stats();
        let snapshot = stats.table("emb").unwrap();
        assert_eq!(snapshot.answered, 24);
        assert_eq!(snapshot.submitted, 24);
        // Three replicas per party are reported, and together they carried
        // every (query, party) projection exactly once.
        assert_eq!(snapshot.replicas.len(), 6);
        let carried: u64 = snapshot.replicas.iter().map(|r| r.queries).sum();
        assert_eq!(carried, 2 * 24);
        assert_eq!(snapshot.batched_queries, 2 * 24);
        assert_eq!(snapshot.in_flight_batches, 0);
        runtime.shutdown();
    }

    #[test]
    fn device_budget_is_enforced_and_reported() {
        let runtime = PirServeRuntime::new(
            ServeConfig::builder()
                .device_budget(2)
                .seed(13)
                .build()
                .unwrap(),
        );
        // A replica that spans 4 devices could never lease from a 2-device
        // budget: rejected up front instead of deadlocking at dispatch.
        let big = PirTable::generate(1024, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .shards(4)
            .build()
            .unwrap();
        assert!(matches!(
            runtime.register_table("big", big, config),
            Err(ServeError::InvalidConfig(_))
        ));

        // Two single-shard replicas fit (serially) and still answer
        // everything.
        let table = PirTable::generate(128, 8, |row, _| row as u8);
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .replicas(2)
            .max_batch(4)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        let handle = runtime.handle();
        let pending: Vec<_> = (0..16u64)
            .map(|i| handle.query("emb", "t", i).unwrap())
            .collect();
        for query in pending {
            assert!(query.wait().is_ok());
        }
        let stats = runtime.stats();
        assert_eq!(stats.device_budget, Some(2));
        assert_eq!(stats.devices_in_use, 0, "all leases returned");
        assert_eq!(stats.table("emb").unwrap().answered, 16);
        runtime.shutdown();
    }

    #[test]
    fn canceled_queries_cost_no_device_work() {
        let runtime = PirServeRuntime::new(ServeConfig::builder().seed(19).build().unwrap());
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        // A long max_wait keeps the first query parked in the formers while
        // we cancel it, so formation observes the canceled flag.
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .max_batch(64)
            .max_wait(Duration::from_millis(150))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        let handle = runtime.handle();

        let doomed = handle.query("emb", "t", 1).unwrap();
        drop(doomed);
        let answered = handle.query("emb", "t", 2).unwrap().wait().unwrap();
        assert_eq!(answered[0], 2);

        let stats = runtime.stats();
        let snapshot = stats.table("emb").unwrap();
        assert_eq!(snapshot.canceled, 1);
        assert_eq!(snapshot.submitted, 2);
        assert_eq!(snapshot.answered, 1);
        // Only the surviving query crossed each party's device: the canceled
        // one consumed no batch slot and no kernel work.
        assert_eq!(snapshot.batched_queries, 2);
        let device_queries: u64 = snapshot.replicas.iter().map(|r| r.queries).sum();
        assert_eq!(device_queries, 2);
        runtime.shutdown();
    }

    #[test]
    fn host_backend_tables_serve_and_report_plan_telemetry() {
        let runtime = PirServeRuntime::new(ServeConfig::builder().seed(23).build().unwrap());
        let table = PirTable::generate(128, 8, |row, _| (row as u8).wrapping_add(7));
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .backend(gpu_sim::BackendKind::Host)
            .max_batch(4)
            .max_wait(Duration::from_millis(1))
            .build()
            .unwrap();
        runtime.register_table("emb", table, config).unwrap();
        let handle = runtime.handle();

        for round in 0..2 {
            let pending: Vec<_> = (0..8u64)
                .map(|i| (i * 3 % 128, handle.query("emb", "t", i * 3 % 128).unwrap()))
                .collect();
            for (index, query) in pending {
                let row = query.wait().unwrap();
                assert_eq!(row[0], (index as u8).wrapping_add(7), "round {round}");
            }
        }

        let stats = runtime.stats();
        let snapshot = stats.table("emb").unwrap();
        assert_eq!(snapshot.answered, 16);
        // The 128×8 table fits the default budget, so the plan keeps it
        // resident: bytes are held on-device, and repeat batches on the same
        // replica avoid re-uploads while every first batch issues one.
        let plan = snapshot.plan;
        assert!(plan.resident_bytes > 0, "table should be plan-resident");
        assert!(
            plan.transfers_issued >= 2,
            "each party uploads at least once"
        );
        assert!(
            plan.plan_cache_hits + plan.plan_cache_misses >= plan.transfers_issued,
            "every launch consults the plan cache"
        );
        // Leases returned their resident bytes, but the high-water mark
        // proves the batcher leased the plan's figure while launching.
        assert_eq!(stats.resident_bytes_in_use, 0);
        assert!(stats.peak_resident_bytes > 0);
        runtime.shutdown();
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let runtime = runtime_with_table("emb", 64);
        let table = PirTable::generate(64, 8, |row, _| row as u8);
        assert!(matches!(
            runtime.register_table("emb", table, TableConfig::default()),
            Err(ServeError::TableExists(_))
        ));
    }
}
