//! `pir-serve` — an async, multi-tenant PIR serving runtime with dynamic
//! batching and device sharding.
//!
//! The paper's central systems observation (§3.2.1, §3.2.5) is that DPF-based
//! PIR only reaches practical throughput when many queries are *batched* onto
//! the GPU: a single Eval cannot fill the device for realistic table sizes,
//! so the scheduler maps one query per thread block and amortizes the kernel
//! launch over the whole batch. The protocol crates expose that machinery to
//! callers who already *have* a batch in hand — but a deployed service
//! receives queries one at a time, from thousands of independent clients.
//! This crate closes that gap with the batching-as-a-service shape production
//! inference servers use:
//!
//! * **[`PirServeRuntime`]** hosts many named tables (a *table registry*),
//!   each with its own PRF family, scheduler thresholds and — for tables
//!   larger than one device — sharding across several simulated `gpu_sim`
//!   devices via [`pir_protocol::ShardedGpuServer`].
//! * Each party of a table owns a **pool of interchangeable server
//!   replicas** (`TableConfig::replicas`): formed batches are load-balanced
//!   across idle replicas, so one table's burst traffic fans out over
//!   `replicas × shards` devices instead of queueing behind a single kernel
//!   launch, and every launch leases its devices from a runtime-wide
//!   **device budget** (`ServeConfig::device_budget`) so hot tables borrow
//!   fleet capacity idle tables are not using.
//! * A **dynamic batch former** per (table, party, replica) collects
//!   in-flight queries under a *max-batch-size / max-wait-time* policy and
//!   submits each formed batch through the §3.2.5 scheduler as one
//!   [`pir_dpf::ExecutionPlan`], so concurrent requests amortize kernel
//!   launches exactly as the paper prescribes without coordinating with each
//!   other.
//! * An **admission/backpressure layer** — bounded per-(table, server) queues
//!   and per-tenant in-flight quotas — sheds load with typed
//!   [`ServeError`]s instead of letting latency collapse.
//! * **Telemetry** ([`StatsSnapshot`]) exports queue depth, batch occupancy
//!   and p50/p99 latency built on [`pir_core::LatencyHistogram`].
//! * **[`ServeHandle`]** is the clonable *embedded* client API: `query(table,
//!   tenant, index)` admits a lookup and returns a [`PendingQuery`] — a plain
//!   [`std::future::Future`] — which either resolves on the caller's
//!   executor or synchronously via [`PendingQuery::wait`] /
//!   [`block_on`]. [`ServeHandle::update_entry`] hot-reloads a table row
//!   through both dispatch queues as an atomic barrier, so every in-flight
//!   query is answered by both parties from the same table version.
//! * **[`WireFrontend`]** is the *networked* boundary: it decodes `pir-wire`
//!   envelopes arriving from untrusted clients, bridges them into the same
//!   batching machinery for one party only, and encodes replies (including
//!   quota/queue-full sheds as typed wire errors). Remote clients use
//!   `pir_wire::PirSession` over two transports and never see this crate's
//!   types at all.
//!
//! # Example
//!
//! ```rust
//! use pir_protocol::PirTable;
//! use pir_serve::{PirServeRuntime, ServeConfig, TableConfig};
//!
//! let runtime = PirServeRuntime::new(ServeConfig::default());
//! let table = PirTable::generate(1 << 10, 16, |row, offset| (row as u8) ^ (offset as u8));
//! runtime
//!     .register_table("embeddings", table.clone(), TableConfig::default())
//!     .unwrap();
//!
//! let handle = runtime.handle();
//! let row = handle.query("embeddings", "tenant-0", 42).unwrap().wait().unwrap();
//! assert_eq!(row, table.entry(42));
//!
//! let stats = runtime.stats();
//! assert_eq!(stats.answered(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod batcher;
mod budget;
pub mod config;
pub mod error;
mod handle;
mod oneshot;
mod registry;
mod runtime;
pub mod stats;
pub mod tier;
mod wire_frontend;

pub use config::{
    AdmissionPolicy, AutoscalePolicy, BatchPolicy, ReplicaRange, ServeConfig, ServeConfigBuilder,
    TableConfig, TableConfigBuilder,
};
pub use error::ServeError;
pub use handle::{PendingQuery, ServeHandle};
pub use oneshot::block_on;
pub use runtime::PirServeRuntime;
pub use stats::{
    PlanTelemetry, ReplicaStatsSnapshot, StatsSnapshot, TableStatsSnapshot, TierStatsSnapshot,
};
pub use tier::{formation_order, BatchCandidate, SloClass, SloTiers};
pub use wire_frontend::WireFrontend;
