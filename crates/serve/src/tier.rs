//! SLO priority tiers: per-tenant service classes that shape batch
//! formation.
//!
//! A single `max_wait` knob forces one latency target onto every tenant of a
//! table. Production embedding serving has at least two populations —
//! interactive inference on the critical path and background
//! backfill/training readers — with order-of-magnitude different deadlines.
//! [`SloTiers`] lets a table declare an ordered set of [`SloClass`]es and
//! assign tenants to them; the batch former then becomes *deadline-aware*:
//!
//! * **Urgent tenants close batches early.** Accumulation waits until the
//!   *earliest queued deadline* (each entry's `enqueued_at + class.deadline`)
//!   instead of `oldest + max_wait`, so an interactive arrival ends a
//!   background batch's accumulation at its own, tighter deadline.
//! * **Background tenants fill residue.** Formation ranks the queue with
//!   [`formation_order`]: deadline-expired entries first (earliest deadline
//!   wins — this is *age promotion*, the anti-starvation rule), then
//!   priority, then arrival order. Whatever capacity the urgent entries
//!   leave in a `max_batch`-sized batch is filled with background entries
//!   already queued, so the early close never wastes device occupancy.
//! * **Background tenants absorb shedding.** When a dispatch queue is at
//!   capacity, an arriving *higher-priority* query displaces the
//!   youngest lowest-priority queued entry (shed with the typed
//!   [`crate::ServeError::Displaced`]) instead of being rejected itself.
//!
//! Starvation is bounded by construction: once a background entry's
//! deadline passes, `formation_order` ranks it ahead of every non-expired
//! urgent entry, so it is selected within the next batch close unless it is
//! displaced — and displacement delivers a typed shed, never silence.
//!
//! Tier deadlines must be *non-decreasing with priority number* (priority 0
//! is the most urgent): an "urgent" class with a slacker deadline than a
//! lower tier would invert the meaning of the ranking. [`SloTiers::new`]
//! rejects such configs with [`crate::ServeError::TierInversion`].

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::error::ServeError;

/// One service class: the latency target and scheduling rank its tenants
/// get.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloClass {
    /// Human-readable tier name, used in config assignments and telemetry
    /// labels.
    pub name: String,
    /// Batch-formation deadline: an entry of this class closes its party's
    /// forming batch at the latest this long after it was enqueued.
    pub deadline: Duration,
    /// Scheduling rank; 0 is the most urgent. Lower priority numbers win
    /// residue slots and displace higher numbers when a queue is full.
    pub priority: u8,
}

impl SloClass {
    /// Construct a class.
    #[must_use]
    pub fn new(name: &str, deadline: Duration, priority: u8) -> Self {
        Self {
            name: name.to_string(),
            deadline,
            priority,
        }
    }
}

/// A table's ordered tier set plus its tenant assignments.
///
/// Built through [`crate::TableConfigBuilder`] (or [`SloTiers::new`] for
/// standalone use); construction validates the set, so a held value is
/// always internally consistent: classes sorted by ascending priority,
/// unique names and priorities, deadlines non-decreasing with priority.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloTiers {
    classes: Vec<SloClass>,
    /// tenant name → index into `classes`.
    assignments: HashMap<String, usize>,
    default_tier: usize,
}

impl SloTiers {
    /// Validate and build a tier set.
    ///
    /// `assignments` maps tenant names to class names; `default_tier` names
    /// the class unassigned tenants fall into.
    ///
    /// # Errors
    ///
    /// * [`ServeError::TierInversion`] — a higher-priority class has a
    ///   *longer* deadline than a more urgent one (deadlines must be
    ///   non-decreasing with priority number).
    /// * [`ServeError::InvalidConfig`] — empty class list, duplicate names
    ///   or priorities, a zero deadline, or an assignment/default naming an
    ///   undeclared class.
    pub fn new(
        classes: Vec<SloClass>,
        assignments: &[(String, String)],
        default_tier: &str,
    ) -> Result<Self, ServeError> {
        if classes.is_empty() {
            return Err(ServeError::InvalidConfig(
                "tier set must declare at least one class".into(),
            ));
        }
        let mut classes = classes;
        classes.sort_by_key(|class| class.priority);
        for pair in classes.windows(2) {
            let [previous, class] = pair else {
                continue;
            };
            if class.priority == previous.priority {
                return Err(ServeError::InvalidConfig(format!(
                    "tiers '{}' and '{}' share priority {}",
                    previous.name, class.name, class.priority
                )));
            }
            if class.deadline < previous.deadline {
                return Err(ServeError::TierInversion {
                    tier: class.name.clone(),
                    deadline: class.deadline,
                    previous_tier: previous.name.clone(),
                    previous_deadline: previous.deadline,
                });
            }
        }
        let mut by_name: HashMap<String, usize> = HashMap::new();
        for (index, class) in classes.iter().enumerate() {
            if class.name.is_empty() {
                return Err(ServeError::InvalidConfig(
                    "tier names must be non-empty".into(),
                ));
            }
            if class.deadline.is_zero() {
                return Err(ServeError::InvalidConfig(format!(
                    "tier '{}' has a zero deadline",
                    class.name
                )));
            }
            if by_name.insert(class.name.clone(), index).is_some() {
                return Err(ServeError::InvalidConfig(format!(
                    "duplicate tier name '{}'",
                    class.name
                )));
            }
        }
        let resolve = |name: &str| -> Result<usize, ServeError> {
            by_name.get(name).copied().ok_or_else(|| {
                ServeError::InvalidConfig(format!("unknown tier '{name}' referenced"))
            })
        };
        let default_tier = resolve(default_tier)?;
        let assignments = assignments
            .iter()
            .map(|(tenant, tier)| Ok((tenant.clone(), resolve(tier)?)))
            .collect::<Result<HashMap<_, _>, ServeError>>()?;
        Ok(Self {
            classes,
            assignments,
            default_tier,
        })
    }

    /// The single-class tier set every table without explicit tiers gets:
    /// one class named `default` whose deadline is the batch policy's
    /// `max_wait` — which makes tier-aware formation degenerate to exactly
    /// the classic max-batch/max-wait behavior.
    #[must_use]
    pub fn single(deadline: Duration) -> Self {
        Self {
            classes: vec![SloClass::new(
                "default",
                deadline.max(Duration::from_nanos(1)),
                0,
            )],
            assignments: HashMap::new(),
            default_tier: 0,
        }
    }

    /// The classes, sorted by ascending priority number (most urgent
    /// first).
    #[must_use]
    pub fn classes(&self) -> &[SloClass] {
        &self.classes
    }

    /// The tier index `tenant` is served under.
    #[must_use]
    pub fn tier_of(&self, tenant: &str) -> usize {
        self.assignments
            .get(tenant)
            .copied()
            .unwrap_or(self.default_tier)
    }

    /// The class at `tier`, clamped to the default class if out of range
    /// (cannot happen for indices produced by [`Self::tier_of`]).
    #[must_use]
    pub fn class(&self, tier: usize) -> &SloClass {
        self.classes
            .get(tier)
            .or_else(|| self.classes.get(self.default_tier))
            .unwrap_or(&FALLBACK_CLASS)
    }

    /// Number of declared classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the set is the degenerate single-class one.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

impl Default for SloTiers {
    fn default() -> Self {
        Self::single(crate::config::BatchPolicy::default().max_wait)
    }
}

/// The statically-known fallback [`SloTiers::class`] resolves to if its
/// invariants were ever violated; keeps the accessor total without a panic
/// path.
static FALLBACK_CLASS: SloClass = SloClass {
    name: String::new(),
    deadline: Duration::from_millis(2),
    priority: 0,
};

/// One queued entry as the formation ranker sees it.
#[derive(Clone, Copy, Debug)]
pub struct BatchCandidate {
    /// Absolute deadline (`enqueued_at + class.deadline`).
    pub deadline: Instant,
    /// The entry's class priority (0 = most urgent).
    pub priority: u8,
}

/// Rank queued candidates for batch formation; returns candidate indices in
/// pick order.
///
/// The ordering implements both tier promises at once:
///
/// 1. **Expired entries first, earliest deadline first.** An entry whose
///    deadline has passed — however lowly its tier — outranks every
///    non-expired entry. This is the *age promotion* that bounds
///    background starvation: a background entry is picked at the latest by
///    the first close after its deadline expires.
/// 2. **Then priority, then arrival order.** Residue capacity goes to the
///    most urgent classes; within a class, FIFO (candidate index order is
///    queue order).
///
/// With a single class (every candidate the same priority, deadlines in
/// arrival order) this degenerates to exact FIFO, so untiered tables form
/// identical batches to the pre-tier batcher.
#[must_use]
pub fn formation_order(now: Instant, candidates: &[BatchCandidate]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        let (ca, cb) = (&candidates[a], &candidates[b]);
        let (expired_a, expired_b) = (ca.deadline <= now, cb.deadline <= now);
        // Expired before fresh.
        expired_b
            .cmp(&expired_a)
            .then_with(|| {
                if expired_a && expired_b {
                    // Both expired: most overdue first.
                    ca.deadline.cmp(&cb.deadline)
                } else {
                    // Both fresh: most urgent class first.
                    ca.priority.cmp(&cb.priority)
                }
            })
            // FIFO within every equivalence class.
            .then_with(|| a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiers() -> SloTiers {
        SloTiers::new(
            vec![
                SloClass::new("background", Duration::from_millis(50), 2),
                SloClass::new("interactive", Duration::from_millis(2), 0),
                SloClass::new("standard", Duration::from_millis(10), 1),
            ],
            &[
                ("alice".to_string(), "interactive".to_string()),
                ("batch-loader".to_string(), "background".to_string()),
            ],
            "standard",
        )
        .unwrap()
    }

    #[test]
    fn classes_sort_by_priority_and_assignments_resolve() {
        let tiers = tiers();
        let names: Vec<&str> = tiers.classes().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["interactive", "standard", "background"]);
        assert_eq!(tiers.class(tiers.tier_of("alice")).name, "interactive");
        assert_eq!(
            tiers.class(tiers.tier_of("batch-loader")).name,
            "background"
        );
        assert_eq!(tiers.class(tiers.tier_of("unknown")).name, "standard");
        assert_eq!(tiers.len(), 3);
        assert!(!tiers.is_empty());
        // Out-of-range tier indices degrade to the default class.
        assert_eq!(tiers.class(99).name, "standard");
    }

    #[test]
    fn deadline_inversion_is_a_typed_error() {
        let err = SloTiers::new(
            vec![
                SloClass::new("interactive", Duration::from_millis(20), 0),
                SloClass::new("background", Duration::from_millis(5), 1),
            ],
            &[],
            "interactive",
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::TierInversion { .. }));
        let message = err.to_string();
        assert!(message.contains("background"), "{message}");
        assert!(message.contains("interactive"), "{message}");
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(SloTiers::new(vec![], &[], "x").is_err());
        // Duplicate priorities.
        assert!(SloTiers::new(
            vec![
                SloClass::new("a", Duration::from_millis(1), 0),
                SloClass::new("b", Duration::from_millis(2), 0),
            ],
            &[],
            "a",
        )
        .is_err());
        // Duplicate names.
        assert!(SloTiers::new(
            vec![
                SloClass::new("a", Duration::from_millis(1), 0),
                SloClass::new("a", Duration::from_millis(2), 1),
            ],
            &[],
            "a",
        )
        .is_err());
        // Zero deadline.
        assert!(SloTiers::new(vec![SloClass::new("a", Duration::ZERO, 0)], &[], "a").is_err());
        // Unknown default / assignment targets.
        let class = vec![SloClass::new("a", Duration::from_millis(1), 0)];
        assert!(SloTiers::new(class.clone(), &[], "ghost").is_err());
        assert!(SloTiers::new(class, &[("tenant".to_string(), "ghost".to_string())], "a").is_err());
    }

    #[test]
    fn single_class_order_is_fifo() {
        let now = Instant::now();
        let candidates: Vec<BatchCandidate> = (0..8)
            .map(|i| BatchCandidate {
                deadline: now + Duration::from_millis(10 + i),
                priority: 0,
            })
            .collect();
        assert_eq!(
            formation_order(now, &candidates),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn expired_entries_outrank_urgent_fresh_ones() {
        let now = Instant::now();
        let candidates = vec![
            // Fresh interactive entry.
            BatchCandidate {
                deadline: now + Duration::from_millis(2),
                priority: 0,
            },
            // Expired background entry (age promotion must win).
            BatchCandidate {
                deadline: now - Duration::from_millis(1),
                priority: 2,
            },
            // Fresh background entry.
            BatchCandidate {
                deadline: now + Duration::from_millis(50),
                priority: 2,
            },
            // Longer-expired background entry: most overdue first.
            BatchCandidate {
                deadline: now - Duration::from_millis(9),
                priority: 2,
            },
        ];
        assert_eq!(formation_order(now, &candidates), vec![3, 1, 0, 2]);
    }

    #[test]
    fn fresh_entries_rank_by_priority_then_arrival() {
        let now = Instant::now();
        let deadline = |ms: u64| now + Duration::from_millis(ms);
        let candidates = vec![
            BatchCandidate {
                deadline: deadline(50),
                priority: 2,
            },
            BatchCandidate {
                deadline: deadline(2),
                priority: 0,
            },
            BatchCandidate {
                deadline: deadline(50),
                priority: 2,
            },
            BatchCandidate {
                deadline: deadline(2),
                priority: 0,
            },
        ];
        assert_eq!(formation_order(now, &candidates), vec![1, 3, 0, 2]);
    }
}
