//! Configuration surface of the serving runtime.
//!
//! Follows the builder idiom (`TableConfig::builder().….build()?`) so every
//! knob has a paper-derived default and invalid combinations are rejected
//! with a typed [`ServeError::InvalidConfig`] at build time, never at serve
//! time.

use std::time::Duration;

use gpu_sim::BackendKind;
use pir_dpf::SchedulerConfig;
use pir_prf::PrfKind;

use crate::error::ServeError;
use crate::tier::{SloClass, SloTiers};

/// When a forming batch is submitted to the device (§3.2.5's premise: the
/// GPU only pays off when kernel launches are amortized over many queries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Submit as soon as this many queries have accumulated.
    pub max_batch: usize,
    /// Submit at the latest this long after the *oldest* queued query
    /// arrived, even if the batch is still small.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// How many interchangeable server replicas a party's pool may run.
///
/// The pool is built at `max` size up front (replica construction clones
/// the table; doing it at scale-up time would stall the hot path), but only
/// `active` replicas — a number the autoscaler moves inside `min..=max` —
/// drain the dispatch queue at any instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaRange {
    /// Replicas always kept active (≥ 1).
    pub min: usize,
    /// Ceiling the autoscaler may scale to (≥ `min`).
    pub max: usize,
}

impl ReplicaRange {
    /// A fixed pool: autoscaling disabled, exactly `n` replicas.
    #[must_use]
    pub fn fixed(n: usize) -> Self {
        Self { min: n, max: n }
    }

    /// Whether the range leaves the autoscaler any room.
    #[must_use]
    pub fn is_elastic(&self) -> bool {
        self.max > self.min
    }
}

impl Default for ReplicaRange {
    fn default() -> Self {
        Self::fixed(1)
    }
}

/// When the per-table autoscale controller grows or shrinks a party's
/// active replica count (only meaningful when the table's
/// [`ReplicaRange::is_elastic`]).
///
/// The controller samples each party's queue depth every `tick` and applies
/// *hysteresis*: the depth must stay above `high_depth` (or at/below
/// `low_depth`) for `sustain_ticks` consecutive samples before a step is
/// taken, so a single bursty sample cannot flap the pool. Scale-ups are
/// additionally gated on observed device-budget headroom: a controller
/// never activates a replica whose `shards` devices could not currently be
/// leased.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutoscalePolicy {
    /// Queue depth above which sustained load scales the pool up.
    pub high_depth: usize,
    /// Queue depth at or below which sustained idleness scales it down.
    pub low_depth: usize,
    /// Consecutive ticks a condition must hold before a step.
    pub sustain_ticks: u32,
    /// Sampling interval.
    pub tick: Duration,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self {
            high_depth: 64,
            low_depth: 4,
            sustain_ticks: 3,
            tick: Duration::from_millis(2),
        }
    }
}

/// Bounded-queue and per-tenant admission limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum queries queued per (table, server) pair; arrivals beyond this
    /// are shed with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum in-flight queries per tenant; arrivals beyond this are shed
    /// with [`ServeError::QuotaExceeded`].
    pub per_tenant_quota: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            queue_capacity: 4096,
            per_tenant_quota: 256,
        }
    }
}

/// Per-table serving configuration: protocol parameters plus batching.
#[derive(Clone, Debug, PartialEq)]
pub struct TableConfig {
    /// PRF family used by this table's clients and servers.
    pub prf_kind: PrfKind,
    /// Number of simulated devices each server replica shards the table
    /// across (1 = single V100).
    pub shards: usize,
    /// Range of interchangeable server replicas per party. Formed batches
    /// are load-balanced across idle active replicas, so a hot table's
    /// burst traffic fans out over `active * shards` devices instead of
    /// queueing behind a single kernel launch; when the range is elastic,
    /// a per-table controller moves the active count with sustained queue
    /// depth (see [`AutoscalePolicy`]).
    pub replicas: ReplicaRange,
    /// When and how fast the active replica count follows queue depth.
    pub autoscale: AutoscalePolicy,
    /// Scheduler thresholds applied per shard.
    pub scheduler: SchedulerConfig,
    /// Device backend every replica of this table evaluates on: the
    /// analytical cost-model executor (default) or the measured in-process
    /// host backend. Both produce bit-identical shares; only time
    /// attribution differs.
    pub backend: BackendKind,
    /// Batch-formation policy for this table's two batch formers.
    pub batch: BatchPolicy,
    /// SLO priority tiers: per-tenant service classes whose deadlines drive
    /// batch formation (urgent tenants close batches early, background
    /// tenants fill residue and absorb displacement shedding). Defaults to
    /// a single class whose deadline is `batch.max_wait`, which reproduces
    /// classic max-batch/max-wait formation exactly.
    pub tiers: SloTiers,
}

impl TableConfig {
    /// Start building a config from the defaults.
    #[must_use]
    pub fn builder() -> TableConfigBuilder {
        TableConfigBuilder::default()
    }
}

impl Default for TableConfig {
    fn default() -> Self {
        Self {
            prf_kind: PrfKind::Chacha20,
            shards: 1,
            replicas: ReplicaRange::default(),
            autoscale: AutoscalePolicy::default(),
            scheduler: SchedulerConfig::default(),
            backend: BackendKind::default(),
            batch: BatchPolicy::default(),
            tiers: SloTiers::default(),
        }
    }
}

/// Fluent builder for [`TableConfig`].
#[derive(Clone, Debug, Default)]
pub struct TableConfigBuilder {
    config: TableConfig,
    /// Declared tier classes; validated and resolved into
    /// [`TableConfig::tiers`] at build time.
    classes: Vec<SloClass>,
    /// `(tenant, tier-name)` assignments, resolved at build time.
    assignments: Vec<(String, String)>,
    /// Tier unassigned tenants fall into; defaults to the least urgent
    /// declared class.
    default_tier: Option<String>,
}

impl TableConfigBuilder {
    /// Set the PRF family (default ChaCha20, the GPU-friendly choice of
    /// §3.2.6).
    #[must_use]
    pub fn prf_kind(mut self, prf_kind: PrfKind) -> Self {
        self.config.prf_kind = prf_kind;
        self
    }

    /// Shard each server replica across this many simulated devices.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Keep exactly this many interchangeable server replicas per party
    /// (a fixed pool; autoscaling disabled).
    #[must_use]
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.config.replicas = ReplicaRange::fixed(replicas);
        self
    }

    /// Let the autoscaler run between `min` and `max` replicas per party,
    /// following sustained queue depth.
    #[must_use]
    pub fn replica_range(mut self, min: usize, max: usize) -> Self {
        self.config.replicas = ReplicaRange { min, max };
        self
    }

    /// Override the autoscale hysteresis knobs.
    #[must_use]
    pub fn autoscale(mut self, autoscale: AutoscalePolicy) -> Self {
        self.config.autoscale = autoscale;
        self
    }

    /// Override the per-shard scheduler thresholds.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Evaluate this table's replicas on the given device backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Submit batches at this size.
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.batch.max_batch = max_batch;
        self
    }

    /// Submit batches at the latest this long after the oldest arrival.
    #[must_use]
    pub fn max_wait(mut self, max_wait: Duration) -> Self {
        self.config.batch.max_wait = max_wait;
        self
    }

    /// Declare one SLO tier class. Declare at least two for tiering to do
    /// anything; with none declared the table runs a single class whose
    /// deadline is the batch policy's `max_wait`.
    #[must_use]
    pub fn tier(mut self, name: &str, deadline: Duration, priority: u8) -> Self {
        self.classes.push(SloClass::new(name, deadline, priority));
        self
    }

    /// Serve `tenant` under the named tier (tenants without an assignment
    /// get the default tier).
    #[must_use]
    pub fn assign_tenant(mut self, tenant: &str, tier: &str) -> Self {
        self.assignments
            .push((tenant.to_string(), tier.to_string()));
        self
    }

    /// Tier that unassigned tenants are served under (defaults to the
    /// least urgent declared class).
    #[must_use]
    pub fn default_tier(mut self, tier: &str) -> Self {
        self.default_tier = Some(tier.to_string());
        self
    }

    /// Validate and produce the config.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero shards, an empty or
    /// inverted replica range, degenerate autoscale thresholds, a zero
    /// batch size, a malformed tier set, or a scheduler config the planner
    /// would reject; [`ServeError::TierInversion`] if a more urgent tier
    /// declares a longer deadline than a less urgent one.
    pub fn build(mut self) -> Result<TableConfig, ServeError> {
        if self.config.shards == 0 {
            return Err(ServeError::InvalidConfig(
                "shards must be at least 1".into(),
            ));
        }
        if self.config.replicas.min == 0 {
            return Err(ServeError::InvalidConfig(
                "replicas must be at least 1".into(),
            ));
        }
        if self.config.replicas.max < self.config.replicas.min {
            return Err(ServeError::InvalidConfig(format!(
                "replica range max {} is below min {}",
                self.config.replicas.max, self.config.replicas.min
            )));
        }
        if self.config.autoscale.high_depth <= self.config.autoscale.low_depth {
            return Err(ServeError::InvalidConfig(
                "autoscale high_depth must exceed low_depth (hysteresis)".into(),
            ));
        }
        if self.config.autoscale.sustain_ticks == 0 {
            return Err(ServeError::InvalidConfig(
                "autoscale sustain_ticks must be at least 1".into(),
            ));
        }
        if self.config.autoscale.tick.is_zero() {
            return Err(ServeError::InvalidConfig(
                "autoscale tick must be non-zero".into(),
            ));
        }
        if self.config.batch.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        self.config
            .scheduler
            .validate()
            .map_err(|err| ServeError::InvalidConfig(err.to_string()))?;
        self.config.tiers = if self.classes.is_empty() {
            if !self.assignments.is_empty() || self.default_tier.is_some() {
                return Err(ServeError::InvalidConfig(
                    "tenant/default tier references declared without any tier classes".into(),
                ));
            }
            SloTiers::single(self.config.batch.max_wait)
        } else {
            let fallback = self
                .default_tier
                .or_else(|| {
                    // Least urgent class: unassigned tenants should absorb
                    // shedding, not compete with interactive traffic.
                    self.classes
                        .iter()
                        .max_by_key(|class| class.priority)
                        .map(|class| class.name.clone())
                })
                .unwrap_or_default();
            SloTiers::new(self.classes, &self.assignments, &fallback)?
        };
        Ok(self.config)
    }
}

/// Runtime-wide configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission limits shared by all tables.
    pub admission: AdmissionPolicy,
    /// Total simulated devices the runtime's batch dispatch may occupy at
    /// once, across every table and both parties (`None` = unbounded). Each
    /// formed batch leases `shards` devices for the duration of its kernel
    /// launch, so hot tables borrow fleet capacity that idle tables are not
    /// using.
    pub device_budget: Option<usize>,
    /// Seed of the runtime's query-key RNG (deterministic runs for tests and
    /// experiments).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionPolicy::default(),
            device_budget: None,
            seed: 0x5e21_9e0d,
        }
    }
}

impl ServeConfig {
    /// Start building a runtime config from the defaults.
    #[must_use]
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }
}

/// Fluent builder for [`ServeConfig`].
#[derive(Clone, Debug, Default)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Bound each (table, server) queue at this depth.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.admission.queue_capacity = capacity;
        self
    }

    /// Bound each tenant at this many in-flight queries.
    #[must_use]
    pub fn per_tenant_quota(mut self, quota: usize) -> Self {
        self.config.admission.per_tenant_quota = quota;
        self
    }

    /// Cap the simulated devices occupied by in-flight batches at once.
    #[must_use]
    pub fn device_budget(mut self, devices: usize) -> Self {
        self.config.device_budget = Some(devices);
        self
    }

    /// Seed the runtime's key-generation RNG.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validate and produce the config.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero queue capacity, a zero
    /// tenant quota, or a zero device budget.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        if self.config.admission.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if self.config.admission.per_tenant_quota == 0 {
            return Err(ServeError::InvalidConfig(
                "per_tenant_quota must be at least 1".into(),
            ));
        }
        if self.config.device_budget == Some(0) {
            return Err(ServeError::InvalidConfig(
                "device_budget must be at least 1 device (or unset)".into(),
            ));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_apply_defaults_and_overrides() {
        let config = TableConfig::builder()
            .prf_kind(PrfKind::SipHash)
            .shards(4)
            .replicas(3)
            .max_batch(16)
            .max_wait(Duration::from_millis(5))
            .build()
            .unwrap();
        assert_eq!(config.prf_kind, PrfKind::SipHash);
        assert_eq!(config.shards, 4);
        assert_eq!(config.replicas, ReplicaRange::fixed(3));
        assert!(!config.replicas.is_elastic());
        assert_eq!(config.batch.max_batch, 16);
        assert_eq!(config.batch.max_wait, Duration::from_millis(5));
        assert_eq!(config.backend, BackendKind::Simulated);
        assert_eq!(TableConfig::default().replicas, ReplicaRange::fixed(1));
        assert_eq!(TableConfig::default().backend, BackendKind::Simulated);

        let host = TableConfig::builder()
            .backend(BackendKind::Host)
            .build()
            .unwrap();
        assert_eq!(host.backend, BackendKind::Host);

        let elastic = TableConfig::builder()
            .replica_range(1, 4)
            .autoscale(AutoscalePolicy {
                high_depth: 16,
                low_depth: 2,
                sustain_ticks: 2,
                tick: Duration::from_millis(1),
            })
            .build()
            .unwrap();
        assert_eq!(elastic.replicas, ReplicaRange { min: 1, max: 4 });
        assert!(elastic.replicas.is_elastic());
        assert_eq!(elastic.autoscale.high_depth, 16);

        let serve = ServeConfig::builder()
            .queue_capacity(100)
            .per_tenant_quota(10)
            .device_budget(12)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(serve.admission.queue_capacity, 100);
        assert_eq!(serve.admission.per_tenant_quota, 10);
        assert_eq!(serve.device_budget, Some(12));
        assert_eq!(serve.seed, 7);
        assert_eq!(ServeConfig::default().device_budget, None);
    }

    #[test]
    fn tier_builder_materializes_and_validates() {
        // No tiers declared: a single default class at the batch deadline,
        // so classic formation is reproduced exactly.
        let plain = TableConfig::builder()
            .max_wait(Duration::from_millis(7))
            .build()
            .unwrap();
        assert_eq!(plain.tiers.len(), 1);
        assert_eq!(plain.tiers.class(0).deadline, Duration::from_millis(7));

        // Declared tiers sort by priority; unassigned tenants fall to the
        // least urgent class unless a default is named.
        let tiered = TableConfig::builder()
            .tier("bulk", Duration::from_millis(20), 3)
            .tier("urgent", Duration::from_millis(1), 0)
            .assign_tenant("vip", "urgent")
            .build()
            .unwrap();
        assert_eq!(
            tiered.tiers.class(tiered.tiers.tier_of("vip")).name,
            "urgent"
        );
        assert_eq!(
            tiered.tiers.class(tiered.tiers.tier_of("anon")).name,
            "bulk"
        );

        // A more urgent tier with a *longer* deadline is an inversion:
        // typed error, not a panic.
        let inverted = TableConfig::builder()
            .tier("urgent", Duration::from_millis(50), 0)
            .tier("bulk", Duration::from_millis(5), 3)
            .build();
        assert!(matches!(inverted, Err(ServeError::TierInversion { .. })));

        // Assignments to undeclared tiers, and assignments without any
        // declared classes, are both rejected.
        assert!(matches!(
            TableConfig::builder()
                .tier("urgent", Duration::from_millis(1), 0)
                .assign_tenant("vip", "nope")
                .build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder()
                .assign_tenant("vip", "urgent")
                .build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder().default_tier("urgent").build(),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            TableConfig::builder().shards(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder().max_batch(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        let bad_scheduler = SchedulerConfig {
            chunk: 0,
            ..SchedulerConfig::default()
        };
        assert!(matches!(
            TableConfig::builder().scheduler(bad_scheduler).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder().replicas(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder().replica_range(3, 2).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder()
                .autoscale(AutoscalePolicy {
                    high_depth: 4,
                    low_depth: 4,
                    ..AutoscalePolicy::default()
                })
                .build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder()
                .autoscale(AutoscalePolicy {
                    sustain_ticks: 0,
                    ..AutoscalePolicy::default()
                })
                .build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            TableConfig::builder()
                .autoscale(AutoscalePolicy {
                    tick: Duration::ZERO,
                    ..AutoscalePolicy::default()
                })
                .build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServeConfig::builder().queue_capacity(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServeConfig::builder().per_tenant_quota(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServeConfig::builder().device_budget(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
    }
}
