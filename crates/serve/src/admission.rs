//! Per-tenant admission control.
//!
//! Tenants are identified by opaque string ids; each may have at most
//! `per_tenant_quota` queries in flight. The quota is enforced *before* key
//! generation, so an overloaded tenant costs the runtime nothing but a map
//! lookup — the shed signal ([`ServeError::QuotaExceeded`]) is the
//! backpressure mechanism multi-tenant deployments use to keep one noisy
//! tenant from starving the rest of the batch budget.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::AdmissionPolicy;
use crate::error::ServeError;

#[derive(Debug)]
pub(crate) struct Admission {
    policy: AdmissionPolicy,
    in_flight: Mutex<HashMap<String, usize>>,
}

impl Admission {
    pub(crate) fn new(policy: AdmissionPolicy) -> Self {
        Self {
            policy,
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Admit one query for `tenant`, returning a guard that releases the
    /// slot when dropped (i.e. when the query completes or is abandoned).
    pub(crate) fn admit(self: &Arc<Self>, tenant: &str) -> Result<InFlightGuard, ServeError> {
        let mut in_flight = self.in_flight.lock();
        let count = in_flight.entry(tenant.to_string()).or_insert(0);
        if *count >= self.policy.per_tenant_quota {
            return Err(ServeError::QuotaExceeded {
                tenant: tenant.to_string(),
                in_flight: *count,
                quota: self.policy.per_tenant_quota,
            });
        }
        *count += 1;
        Ok(InFlightGuard {
            admission: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    #[cfg(test)]
    pub(crate) fn in_flight(&self, tenant: &str) -> usize {
        self.in_flight.lock().get(tenant).copied().unwrap_or(0)
    }

    fn release(&self, tenant: &str) {
        let mut in_flight = self.in_flight.lock();
        if let Some(count) = in_flight.get_mut(tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                in_flight.remove(tenant);
            }
        }
    }
}

/// RAII slot in a tenant's quota.
#[derive(Debug)]
pub(crate) struct InFlightGuard {
    admission: Arc<Admission>,
    tenant: String,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.admission.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(quota: usize) -> Arc<Admission> {
        Arc::new(Admission::new(AdmissionPolicy {
            queue_capacity: 16,
            per_tenant_quota: quota,
        }))
    }

    #[test]
    fn quota_is_enforced_per_tenant() {
        let admission = admission(2);
        let _a1 = admission.admit("alice").unwrap();
        let _a2 = admission.admit("alice").unwrap();
        assert!(matches!(
            admission.admit("alice"),
            Err(ServeError::QuotaExceeded {
                in_flight: 2,
                quota: 2,
                ..
            })
        ));
        // Other tenants are unaffected.
        let _b1 = admission.admit("bob").unwrap();
        assert_eq!(admission.in_flight("alice"), 2);
        assert_eq!(admission.in_flight("bob"), 1);
    }

    #[test]
    fn guards_release_on_drop() {
        let admission = admission(1);
        let guard = admission.admit("carol").unwrap();
        assert!(admission.admit("carol").is_err());
        drop(guard);
        assert_eq!(admission.in_flight("carol"), 0);
        let _again = admission.admit("carol").unwrap();
    }
}
