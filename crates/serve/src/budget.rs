//! The runtime-wide device budget: a shared pool of simulated devices that
//! every table's batch dispatch draws from.
//!
//! Replica pools give a table *candidate* capacity; the budget decides how
//! much of the fleet a table may occupy *at this instant*. Each formed batch
//! acquires one token per device its replica spans for the duration of the
//! kernel launch, so cross-table load shifts capacity toward hot tables
//! (their workers acquire more often) instead of statically partitioning the
//! fleet — the "shared device budget" scheduling the ROADMAP calls for.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct BudgetState {
    in_use: usize,
    /// Backend-reported resident table bytes held by in-flight leases. This
    /// is the figure the memory plan computed (and the backend's ledger
    /// verifies) — the serve layer never re-derives table sizes itself.
    resident_bytes_in_use: u64,
    /// High-water mark of `resident_bytes_in_use` since the runtime started.
    peak_resident_bytes: u64,
    /// Next ticket to hand out / lowest ticket not yet granted: acquires are
    /// granted strictly in ticket order.
    next_ticket: u64,
    now_serving: u64,
}

/// A *fair* counting semaphore over the runtime's simulated device fleet.
///
/// Leases are granted in FIFO order, so a wide (multi-shard) request cannot
/// be starved by a steady stream of narrow ones that happen to fit the
/// remaining capacity — the cost is head-of-line blocking, which is exactly
/// the scheduling policy that makes "every acquire eventually succeeds"
/// true.
///
/// `None` capacity means an unbounded fleet: leases are granted immediately
/// but still tracked, so telemetry reports devices-in-use either way.
#[derive(Debug)]
pub(crate) struct DeviceBudget {
    capacity: Option<usize>,
    state: Mutex<BudgetState>,
    freed: Condvar,
}

impl DeviceBudget {
    pub(crate) fn new(capacity: Option<usize>) -> Self {
        Self {
            capacity,
            state: Mutex::new(BudgetState::default()),
            freed: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Devices currently leased by in-flight batches.
    pub(crate) fn devices_in_use(&self) -> usize {
        self.state.lock().in_use
    }

    /// Backend-reported resident bytes held by in-flight leases.
    pub(crate) fn resident_bytes_in_use(&self) -> u64 {
        self.state.lock().resident_bytes_in_use
    }

    /// High-water mark of resident bytes held at once since startup.
    pub(crate) fn peak_resident_bytes(&self) -> u64 {
        self.state.lock().peak_resident_bytes
    }

    /// Block until `devices` tokens are free *and* every older waiter has
    /// been served, then lease them along with `resident_bytes` — the
    /// memory plan's backend-reported resident footprint for the batch
    /// (tracked for telemetry, not gated on).
    ///
    /// The runtime validates at registration time that no single batch needs
    /// more devices than the whole budget, so with FIFO granting every
    /// acquire eventually succeeds once in-flight batches drain.
    pub(crate) fn acquire(self: &Arc<Self>, devices: usize, resident_bytes: u64) -> DeviceLease {
        let mut state = self.state.lock();
        if let Some(capacity) = self.capacity {
            debug_assert!(
                devices <= capacity,
                "a {devices}-device batch can never fit a {capacity}-device budget"
            );
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            while state.now_serving != ticket || state.in_use + devices > capacity {
                self.freed.wait(&mut state);
            }
            state.now_serving += 1;
        }
        state.in_use += devices;
        state.resident_bytes_in_use += resident_bytes;
        state.peak_resident_bytes = state.peak_resident_bytes.max(state.resident_bytes_in_use);
        drop(state);
        // The next ticket in line may already fit alongside this lease.
        self.freed.notify_all();
        DeviceLease {
            budget: Arc::clone(self),
            devices,
            resident_bytes,
        }
    }
}

/// RAII lease over part of the device budget; freeing wakes blocked batches.
#[derive(Debug)]
pub(crate) struct DeviceLease {
    budget: Arc<DeviceBudget>,
    devices: usize,
    resident_bytes: u64,
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        let mut state = self.budget.state.lock();
        state.in_use = state.in_use.saturating_sub(self.devices);
        state.resident_bytes_in_use = state
            .resident_bytes_in_use
            .saturating_sub(self.resident_bytes);
        drop(state);
        self.budget.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_budget_tracks_without_blocking() {
        let budget = Arc::new(DeviceBudget::new(None));
        let a = budget.acquire(4, 4096);
        let b = budget.acquire(1000, 1024);
        assert_eq!(budget.devices_in_use(), 1004);
        assert_eq!(budget.resident_bytes_in_use(), 5120);
        assert_eq!(budget.peak_resident_bytes(), 5120);
        drop(a);
        assert_eq!(budget.devices_in_use(), 1000);
        assert_eq!(budget.resident_bytes_in_use(), 1024);
        drop(b);
        assert_eq!(budget.devices_in_use(), 0);
        assert_eq!(budget.resident_bytes_in_use(), 0);
        assert_eq!(
            budget.peak_resident_bytes(),
            5120,
            "high-water mark persists"
        );
    }

    #[test]
    fn bounded_budget_blocks_until_freed() {
        let budget = Arc::new(DeviceBudget::new(Some(4)));
        let first = budget.acquire(3, 0);
        assert_eq!(budget.devices_in_use(), 3);

        // A 2-device acquire must wait for the 3-device lease to drop.
        let waiter = {
            let budget = Arc::clone(&budget);
            std::thread::spawn(move || {
                let lease = budget.acquire(2, 0);
                let seen = budget.devices_in_use();
                drop(lease);
                seen
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(budget.devices_in_use(), 3, "waiter must still be blocked");
        drop(first);
        assert_eq!(waiter.join().unwrap(), 2);
        assert_eq!(budget.devices_in_use(), 0);
    }

    #[test]
    fn wide_requests_are_not_starved_by_narrow_ones() {
        // Budget 2, one 1-device lease held. A 2-device acquire queues
        // first; a later 1-device acquire *would* fit the free capacity but
        // must wait its turn behind the wide request (FIFO), otherwise a
        // stream of narrow leases could starve the wide one forever.
        let budget = Arc::new(DeviceBudget::new(Some(2)));
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let held = budget.acquire(1, 0);

        let wide = {
            let budget = Arc::clone(&budget);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let lease = budget.acquire(2, 0);
                order.lock().push("wide");
                drop(lease);
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        let narrow = {
            let budget = Arc::clone(&budget);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let lease = budget.acquire(1, 0);
                order.lock().push("narrow");
                drop(lease);
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        // The narrow request fits capacity (1 + 1 <= 2) but must not
        // overtake the queued wide request.
        assert!(order.lock().is_empty(), "nobody may be served yet");

        drop(held);
        wide.join().unwrap();
        narrow.join().unwrap();
        assert_eq!(*order.lock(), vec!["wide", "narrow"]);
        assert_eq!(budget.devices_in_use(), 0);
    }
}
