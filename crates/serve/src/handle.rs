//! The client API: [`ServeHandle`] to submit queries, [`PendingQuery`] to
//! await them.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

use pir_protocol::{PirQuery, PirResponse};

use crate::admission::InFlightGuard;
use crate::error::ServeError;
use crate::oneshot::{self, Receiver};
use crate::registry::{HostedTable, PendingEntry};
use crate::runtime::RuntimeInner;
use crate::stats::StatsSnapshot;

/// A clonable, thread-safe handle for submitting queries to the runtime.
///
/// Handles stay valid across runtime shutdown: submissions after shutdown
/// shed with [`ServeError::ShuttingDown`].
#[derive(Clone)]
pub struct ServeHandle {
    pub(crate) inner: Arc<RuntimeInner>,
}

impl ServeHandle {
    /// Submit one private lookup of `index` in `table` on behalf of
    /// `tenant`.
    ///
    /// On success the query has been admitted: its keys are generated and
    /// its two server projections are queued at the table's two per-party
    /// dispatch queues. Await (or [`PendingQuery::wait`]) the returned
    /// future for the reconstructed row. Dropping the future cancels the
    /// query: its queued entries are skipped at batch formation and cost no
    /// device work.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownTable`] — no such table.
    /// * [`ServeError::IndexOutOfRange`] — index outside the table.
    /// * [`ServeError::QuotaExceeded`] / [`ServeError::QueueFull`] /
    ///   [`ServeError::ShuttingDown`] — backpressure; retry later.
    pub fn query(&self, table: &str, tenant: &str, index: u64) -> Result<PendingQuery, ServeError> {
        let hosted = self.inner.registry.get(table)?;
        if index >= hosted.table.entries() {
            return Err(ServeError::IndexOutOfRange {
                index,
                entries: hosted.table.entries(),
            });
        }
        // Checked after table resolution so queries shed by a shutdown are
        // attributed to their table's telemetry instead of vanishing.
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }

        let guard = match self.inner.admission.admit(tenant) {
            Ok(guard) => guard,
            Err(err) => {
                hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
        };

        // Key generation is the dominant client-side cost; give every query
        // its own deterministic RNG stream so concurrent submitters never
        // serialize on a shared generator.
        let mut rng = self.inner.query_rng();
        let query = hosted.client.query(index, &mut rng);
        let submitted_at = Instant::now();
        let canceled = Arc::new(AtomicBool::new(false));
        let (tx0, rx0) = oneshot::channel();
        let (tx1, rx1) = oneshot::channel();
        // Counted *before* the entries become visible to the batch formers:
        // a worker can answer within the enqueue call itself, and a stats
        // snapshot must never transiently observe answered > submitted.
        hosted.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let enqueued = hosted.enqueue_pair(
            self.inner.admission.policy().queue_capacity,
            PendingEntry {
                query: query.to_server(0),
                enqueued_at: submitted_at,
                responder: tx0,
                canceled: Arc::clone(&canceled),
            },
            PendingEntry {
                query: query.to_server(1),
                enqueued_at: submitted_at,
                responder: tx1,
                canceled: Arc::clone(&canceled),
            },
        );
        if let Err(err) = enqueued {
            hosted.stats.submitted.fetch_sub(1, Ordering::Relaxed);
            hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(err);
        }

        Ok(PendingQuery {
            hosted,
            query,
            rx0: Some(rx0),
            rx1: Some(rx1),
            response0: None,
            response1: None,
            submitted_at,
            canceled,
            completed: false,
            _guard: guard,
        })
    }

    /// Names of the registered tables.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.inner.registry.names()
    }

    /// A point-in-time statistics snapshot across all tables.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }
}

/// An admitted query: a [`Future`] resolving to the reconstructed row.
///
/// Dropping the future *cancels* the query: the tenant's quota slot is
/// released immediately and both queued server projections are marked
/// canceled, so batch formation skips them and the abandoned query consumes
/// no device work.
pub struct PendingQuery {
    hosted: Arc<HostedTable>,
    query: PirQuery,
    rx0: Option<Receiver<Result<PirResponse, ServeError>>>,
    rx1: Option<Receiver<Result<PirResponse, ServeError>>>,
    response0: Option<PirResponse>,
    response1: Option<PirResponse>,
    submitted_at: Instant,
    canceled: Arc<AtomicBool>,
    completed: bool,
    _guard: InFlightGuard,
}

impl std::fmt::Debug for PendingQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingQuery")
            .field("table", &self.hosted.name)
            .field("query_id", &self.query.query_id)
            .field("have_response0", &self.response0.is_some())
            .field("have_response1", &self.response1.is_some())
            .finish()
    }
}

impl PendingQuery {
    /// The query id assigned by the table's client.
    #[must_use]
    pub fn query_id(&self) -> u64 {
        self.query.query_id
    }

    /// Block the current thread until the row is reconstructed.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as polling the future.
    pub fn wait(self) -> Result<Vec<u8>, ServeError> {
        oneshot::block_on(self)
    }

    fn poll_side(
        rx: &mut Option<Receiver<Result<PirResponse, ServeError>>>,
        slot: &mut Option<PirResponse>,
        cx: &mut Context<'_>,
    ) -> Result<(), Option<ServeError>> {
        if slot.is_some() {
            return Ok(());
        }
        let receiver = rx.as_mut().expect("receiver live until slot filled");
        match Pin::new(receiver).poll(cx) {
            Poll::Pending => Err(None),
            Poll::Ready(Err(oneshot::Canceled)) => Err(Some(ServeError::ShuttingDown)),
            Poll::Ready(Ok(Err(err))) => Err(Some(err)),
            Poll::Ready(Ok(Ok(response))) => {
                *slot = Some(response);
                *rx = None;
                Ok(())
            }
        }
    }
}

impl Drop for PendingQuery {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Abandoned before resolution: flag both queued entries so batch
        // formation discards them instead of spending device work, and count
        // the cancellation so it doesn't vanish from telemetry. (The quota
        // slot is released by the guard either way.)
        self.canceled.store(true, Ordering::Release);
        self.hosted.stats.canceled.fetch_add(1, Ordering::Relaxed);
    }
}

impl Future for PendingQuery {
    type Output = Result<Vec<u8>, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();

        // Poll *both* sides even if the first is pending, so each registers
        // its waker and either server can wake this future.
        let side0 = Self::poll_side(&mut this.rx0, &mut this.response0, cx);
        let side1 = Self::poll_side(&mut this.rx1, &mut this.response1, cx);
        for side in [&side0, &side1] {
            if let Err(Some(err)) = side {
                this.completed = true;
                // The sibling party's entry may still be queued; flag it so
                // batch formation skips it instead of spending device work
                // on a share this future will never combine.
                this.canceled.store(true, Ordering::Release);
                this.hosted.stats.failed.fetch_add(1, Ordering::Relaxed);
                return Poll::Ready(Err(err.clone()));
            }
        }
        if side0.is_err() || side1.is_err() {
            return Poll::Pending;
        }

        this.completed = true;
        let response0 = this.response0.take().expect("side 0 resolved");
        let response1 = this.response1.take().expect("side 1 resolved");
        let outcome = this
            .hosted
            .client
            .reconstruct(&this.query, &response0, &response1)
            .map_err(ServeError::from);
        match &outcome {
            Ok(_) => {
                this.hosted.stats.answered.fetch_add(1, Ordering::Relaxed);
                let elapsed_ms = this.submitted_at.elapsed().as_secs_f64() * 1e3;
                this.hosted.stats.e2e.lock().record_ms(elapsed_ms);
            }
            Err(_) => {
                this.hosted.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        Poll::Ready(outcome)
    }
}
