//! The client API: [`ServeHandle`] to submit queries, [`PendingQuery`] to
//! await them.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

use pir_protocol::{PirError, PirQuery, ServerQuery};

use crate::admission::InFlightGuard;
use crate::error::ServeError;
use crate::oneshot::{self, Receiver};
use crate::registry::{AnsweredShare, HostedTable, PendingEntry, UpdateMarker};
use crate::runtime::RuntimeInner;
use crate::stats::StatsSnapshot;

/// A clonable, thread-safe handle for submitting queries to the runtime.
///
/// Handles stay valid across runtime shutdown: submissions after shutdown
/// shed with [`ServeError::ShuttingDown`].
#[derive(Clone)]
pub struct ServeHandle {
    pub(crate) inner: Arc<RuntimeInner>,
}

impl ServeHandle {
    /// Submit one private lookup of `index` in `table` on behalf of
    /// `tenant`.
    ///
    /// On success the query has been admitted: its keys are generated and
    /// its two server projections are queued at the table's two per-party
    /// dispatch queues. Await (or [`PendingQuery::wait`]) the returned
    /// future for the reconstructed row. Dropping the future cancels the
    /// query: its queued entries are skipped at batch formation and cost no
    /// device work.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownTable`] — no such table.
    /// * [`ServeError::IndexOutOfRange`] — index outside the table.
    /// * [`ServeError::QuotaExceeded`] / [`ServeError::QueueFull`] /
    ///   [`ServeError::ShuttingDown`] — backpressure; retry later.
    pub fn query(&self, table: &str, tenant: &str, index: u64) -> Result<PendingQuery, ServeError> {
        let hosted = self.inner.registry.get(table)?;
        if index >= hosted.schema.entries {
            return Err(ServeError::IndexOutOfRange {
                index,
                entries: hosted.schema.entries,
            });
        }
        // Resolved up front so every shed below is tier-attributed.
        let tier = hosted.config.tiers.tier_of(tenant);
        let class = hosted.config.tiers.class(tier);
        let shed_tier = |amount: u64| {
            if let Some(stats) = hosted.stats.tier(tier) {
                stats.shed.fetch_add(amount, Ordering::Relaxed);
            }
        };
        // Checked after table resolution so queries shed by a shutdown are
        // attributed to their table's telemetry instead of vanishing.
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
            shed_tier(1);
            return Err(ServeError::ShuttingDown);
        }

        let guard = match self.inner.admission.admit(tenant) {
            Ok(guard) => guard,
            Err(err) => {
                hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
                shed_tier(1);
                return Err(err);
            }
        };

        // Key generation is the dominant client-side cost; give every query
        // its own deterministic RNG stream so concurrent submitters never
        // serialize on a shared generator.
        let mut rng = self.inner.query_rng();
        let query = hosted.client.query(index, &mut rng);
        let submitted_at = Instant::now();
        let deadline = submitted_at + class.deadline;
        let priority = class.priority;
        let canceled = Arc::new(AtomicBool::new(false));
        let (tx0, rx0) = oneshot::channel();
        let (tx1, rx1) = oneshot::channel();
        // Counted *before* the entries become visible to the batch formers:
        // a worker can answer within the enqueue call itself, and a stats
        // snapshot must never transiently observe answered > submitted.
        hosted.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(stats) = hosted.stats.tier(tier) {
            stats.submitted.fetch_add(1, Ordering::Relaxed);
        }
        let enqueued = hosted.enqueue_pair(
            self.inner.admission.policy().queue_capacity,
            PendingEntry {
                query: query.to_server(0),
                enqueued_at: submitted_at,
                deadline,
                tier,
                priority,
                responder: tx0,
                canceled: Arc::clone(&canceled),
            },
            PendingEntry {
                query: query.to_server(1),
                enqueued_at: submitted_at,
                deadline,
                tier,
                priority,
                responder: tx1,
                canceled: Arc::clone(&canceled),
            },
        );
        if let Err(err) = enqueued {
            hosted.stats.submitted.fetch_sub(1, Ordering::Relaxed);
            hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
            if let Some(stats) = hosted.stats.tier(tier) {
                stats.submitted.fetch_sub(1, Ordering::Relaxed);
            }
            shed_tier(1);
            return Err(err);
        }

        Ok(PendingQuery {
            hosted,
            query,
            tier,
            rx0: Some(rx0),
            rx1: Some(rx1),
            response0: None,
            response1: None,
            submitted_at,
            canceled,
            completed: false,
            _guard: guard,
        })
    }

    /// Submit one *already-generated* server projection at a single party's
    /// queue (the wire frontend's path: keys arrive from remote clients,
    /// this runtime never sees the pair).
    ///
    /// # Errors
    ///
    /// Same backpressure errors as [`Self::query`], plus
    /// [`ServeError::Protocol`] with a schema mismatch if the query was
    /// generated for a different table shape.
    pub(crate) fn submit_server_query(
        &self,
        table: &str,
        tenant: &str,
        query: ServerQuery,
    ) -> Result<PendingShare, ServeError> {
        let hosted = self.inner.registry.get(table)?;
        if query.schema != hosted.schema || query.key.params.domain_size != hosted.schema.entries {
            return Err(ServeError::Protocol(PirError::SchemaMismatch {
                expected: query.schema.describe(),
                actual: hosted.schema.describe(),
            }));
        }
        let party = usize::from(query.party() & 1);
        let tier = hosted.config.tiers.tier_of(tenant);
        let class = hosted.config.tiers.class(tier);
        let shed_tier = |amount: u64| {
            if let Some(stats) = hosted.stats.tier(tier) {
                stats.shed.fetch_add(amount, Ordering::Relaxed);
            }
        };
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
            shed_tier(1);
            return Err(ServeError::ShuttingDown);
        }
        let guard = match self.inner.admission.admit(tenant) {
            Ok(guard) => guard,
            Err(err) => {
                hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
                shed_tier(1);
                return Err(err);
            }
        };
        let submitted_at = Instant::now();
        let deadline = submitted_at + class.deadline;
        let priority = class.priority;
        let (tx, rx) = oneshot::channel();
        let canceled = Arc::new(AtomicBool::new(false));
        // Wire-path telemetry counts per-party projections (each server
        // process of a networked deployment sees exactly one projection per
        // client query), mirroring the pair-level accounting of `query`.
        hosted.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(stats) = hosted.stats.tier(tier) {
            stats.submitted.fetch_add(1, Ordering::Relaxed);
        }
        let enqueued = hosted.enqueue_single(
            party,
            self.inner.admission.policy().queue_capacity,
            PendingEntry {
                query,
                enqueued_at: submitted_at,
                deadline,
                tier,
                priority,
                responder: tx,
                canceled: Arc::clone(&canceled),
            },
        );
        if let Err(err) = enqueued {
            hosted.stats.submitted.fetch_sub(1, Ordering::Relaxed);
            hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
            if let Some(stats) = hosted.stats.tier(tier) {
                stats.submitted.fetch_sub(1, Ordering::Relaxed);
            }
            shed_tier(1);
            return Err(err);
        }
        Ok(PendingShare {
            hosted,
            tier,
            rx,
            submitted_at,
            canceled,
            completed: false,
            _guard: guard,
        })
    }

    /// Overwrite one entry of a hosted table (hot reload) and block until
    /// both parties have applied it.
    ///
    /// The update travels through the same per-party dispatch queues as the
    /// queries, as a barrier: every in-flight *embedded* query (admitted by
    /// [`Self::query`], whose two projections enqueue atomically) is
    /// answered by both parties from the same table version — queries
    /// admitted before the update see the old row everywhere, queries
    /// admitted after see the new row everywhere, and mixed-version share
    /// pairs (which would reconstruct garbage) cannot occur. Clients need
    /// no new keys (§4.2: value updates are transparent).
    ///
    /// Wire-path queries arrive one projection per connection and get no
    /// such cross-queue atomicity: when updating a runtime that is serving
    /// remote traffic, sequence updates against in-flight wire queries (or
    /// accept that a query straddling the update may fail to reconstruct
    /// and be retried). Stamping responses with a table version so clients
    /// can detect the straddle is a noted follow-on.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownTable`] — no such table.
    /// * [`ServeError::IndexOutOfRange`] — index outside the table.
    /// * [`ServeError::Protocol`] — payload width differs from the schema.
    /// * [`ServeError::ShuttingDown`] — the runtime stopped first.
    pub fn update_entry(&self, table: &str, index: u64, bytes: &[u8]) -> Result<(), ServeError> {
        let hosted = self.inner.registry.get(table)?;
        if index >= hosted.schema.entries {
            return Err(ServeError::IndexOutOfRange {
                index,
                entries: hosted.schema.entries,
            });
        }
        if bytes.len() != hosted.schema.entry_bytes {
            return Err(ServeError::Protocol(PirError::SchemaMismatch {
                expected: format!("{} B entries", hosted.schema.entry_bytes),
                actual: format!("{} B update payload", bytes.len()),
            }));
        }
        let payload = Arc::new(bytes.to_vec());
        let (tx0, rx0) = oneshot::channel();
        let (tx1, rx1) = oneshot::channel();
        hosted.enqueue_update(
            UpdateMarker {
                index,
                bytes: Arc::clone(&payload),
                responder: tx0,
            },
            UpdateMarker {
                index,
                bytes: payload,
                responder: tx1,
            },
        )?;
        for rx in [rx0, rx1] {
            match oneshot::block_on(rx) {
                Ok(result) => result?,
                Err(oneshot::Canceled) => return Err(ServeError::ShuttingDown),
            }
        }
        Ok(())
    }

    /// Names of the registered tables.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        self.inner.registry.names()
    }

    /// The per-party table-version stamps of a hosted table.
    ///
    /// Each party's counter starts at 1 and increments once per applied
    /// update; every v2 wire response is stamped with the version its share
    /// was computed against. A cluster tier staging an update across shard
    /// owners reads this to verify the staged flip landed (the stamp is the
    /// fence: a shard answering with an unexpected version is mid-reload).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTable`] if no such table is registered.
    pub fn table_versions(&self, table: &str) -> Result<[u64; 2], ServeError> {
        let hosted = self.inner.registry.get(table)?;
        Ok([
            hosted.versions[0].load(Ordering::SeqCst),
            hosted.versions[1].load(Ordering::SeqCst),
        ])
    }

    /// A point-in-time statistics snapshot across all tables.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }
}

/// An admitted query: a [`Future`] resolving to the reconstructed row.
///
/// Dropping the future *cancels* the query: the tenant's quota slot is
/// released immediately and both queued server projections are marked
/// canceled, so batch formation skips them and the abandoned query consumes
/// no device work.
pub struct PendingQuery {
    hosted: Arc<HostedTable>,
    query: PirQuery,
    tier: usize,
    rx0: Option<Receiver<Result<AnsweredShare, ServeError>>>,
    rx1: Option<Receiver<Result<AnsweredShare, ServeError>>>,
    response0: Option<AnsweredShare>,
    response1: Option<AnsweredShare>,
    submitted_at: Instant,
    canceled: Arc<AtomicBool>,
    completed: bool,
    _guard: InFlightGuard,
}

impl std::fmt::Debug for PendingQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingQuery")
            .field("table", &self.hosted.name)
            .field("query_id", &self.query.query_id)
            .field("have_response0", &self.response0.is_some())
            .field("have_response1", &self.response1.is_some())
            .finish()
    }
}

impl PendingQuery {
    /// The query id assigned by the table's client.
    #[must_use]
    pub fn query_id(&self) -> u64 {
        self.query.query_id
    }

    /// Block the current thread until the row is reconstructed.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as polling the future.
    pub fn wait(self) -> Result<Vec<u8>, ServeError> {
        oneshot::block_on(self)
    }

    /// Block until the row is reconstructed, returning it together with the
    /// *table version* both shares were computed against.
    ///
    /// The version is the generation key a client-side hot-entry cache
    /// (`pir_protocol::hot_cache`) needs: cached rows admitted under version `g`
    /// stay bit-identical to served answers exactly until a hot reload
    /// bumps the table to `g + 1`, at which point the generation mismatch
    /// invalidates them.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as polling the future.
    pub fn wait_versioned(self) -> Result<(Vec<u8>, u64), ServeError> {
        struct Versioned(PendingQuery);
        impl Future for Versioned {
            type Output = Result<(Vec<u8>, u64), ServeError>;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                self.get_mut().0.poll_inner(cx)
            }
        }
        oneshot::block_on(Versioned(self))
    }

    fn poll_side(
        rx: &mut Option<Receiver<Result<AnsweredShare, ServeError>>>,
        slot: &mut Option<AnsweredShare>,
        cx: &mut Context<'_>,
    ) -> Result<(), Option<ServeError>> {
        if slot.is_some() {
            return Ok(());
        }
        // pir-lint: allow(panic-path, "rx is taken only when its slot fills, checked just above")
        let receiver = rx.as_mut().expect("receiver live until slot filled");
        match Pin::new(receiver).poll(cx) {
            Poll::Pending => Err(None),
            Poll::Ready(Err(oneshot::Canceled)) => Err(Some(ServeError::ShuttingDown)),
            Poll::Ready(Ok(Err(err))) => Err(Some(err)),
            Poll::Ready(Ok(Ok(response))) => {
                *slot = Some(response);
                *rx = None;
                Ok(())
            }
        }
    }
}

impl Drop for PendingQuery {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Abandoned before resolution: flag both queued entries so batch
        // formation discards them instead of spending device work, and count
        // the cancellation so it doesn't vanish from telemetry. (The quota
        // slot is released by the guard either way.)
        self.canceled.store(true, Ordering::Release);
        self.hosted.stats.canceled.fetch_add(1, Ordering::Relaxed);
    }
}

impl PendingQuery {
    /// The shared completion path: resolves to the reconstructed row plus
    /// the table version both shares were stamped with.
    fn poll_inner(&mut self, cx: &mut Context<'_>) -> Poll<Result<(Vec<u8>, u64), ServeError>> {
        // Poll *both* sides even if the first is pending, so each registers
        // its waker and either server can wake this future.
        let side0 = Self::poll_side(&mut self.rx0, &mut self.response0, cx);
        let side1 = Self::poll_side(&mut self.rx1, &mut self.response1, cx);
        for side in [&side0, &side1] {
            if let Err(Some(err)) = side {
                self.completed = true;
                // The sibling party's entry may still be queued; flag it so
                // batch formation skips it instead of spending device work
                // on a share this future will never combine.
                self.canceled.store(true, Ordering::Release);
                // Tier displacement surfaces here as a typed shed, not a
                // protocol failure; keep the two ledgers apart.
                if err.is_shed() {
                    self.hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
                    if let Some(tier) = self.hosted.stats.tier(self.tier) {
                        tier.shed.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    self.hosted.stats.failed.fetch_add(1, Ordering::Relaxed);
                    if let Some(tier) = self.hosted.stats.tier(self.tier) {
                        tier.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return Poll::Ready(Err(err.clone()));
            }
        }
        if side0.is_err() || side1.is_err() {
            return Poll::Pending;
        }

        self.completed = true;
        // pir-lint: allow(panic-path, "both poll_side calls above returned Ok, which fills the slots")
        let share0 = self.response0.take().expect("side 0 resolved");
        let share1 = self.response1.take().expect("side 1 resolved");
        // Pair-enqueued queries are protected by the cross-queue update
        // barrier: both parties must have answered from the same table
        // version. The stamp exists for wire clients; here it only guards
        // the invariant.
        debug_assert_eq!(
            share0.table_version, share1.table_version,
            "update barrier must keep pair-enqueued shares on one version"
        );
        let table_version = share0.table_version;
        let outcome = self
            .hosted
            .client
            .reconstruct(&self.query, &share0.response, &share1.response)
            .map_err(ServeError::from);
        match &outcome {
            Ok(_) => {
                self.hosted.stats.answered.fetch_add(1, Ordering::Relaxed);
                let elapsed_ms = self.submitted_at.elapsed().as_secs_f64() * 1e3;
                self.hosted.stats.e2e.lock().record_ms(elapsed_ms);
                if let Some(tier) = self.hosted.stats.tier(self.tier) {
                    tier.answered.fetch_add(1, Ordering::Relaxed);
                    tier.e2e.lock().record_ms(elapsed_ms);
                }
            }
            Err(_) => {
                self.hosted.stats.failed.fetch_add(1, Ordering::Relaxed);
                if let Some(tier) = self.hosted.stats.tier(self.tier) {
                    tier.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Poll::Ready(outcome.map(|row| (row, table_version)))
    }
}

impl Future for PendingQuery {
    type Output = Result<Vec<u8>, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut()
            .poll_inner(cx)
            .map(|outcome| outcome.map(|(row, _version)| row))
    }
}

/// A single-party projection admitted through the wire frontend: a
/// [`Future`] resolving to *one server's stamped share*, not a
/// reconstructed row (reconstruction happens client-side, beyond the trust
/// boundary).
///
/// Dropping an unresolved share *cancels* it, exactly like dropping a
/// [`PendingQuery`]: the queued entry is skipped at batch formation, so a
/// client that hangs up mid-pipeline costs no device work.
pub(crate) struct PendingShare {
    hosted: Arc<HostedTable>,
    tier: usize,
    rx: Receiver<Result<AnsweredShare, ServeError>>,
    submitted_at: Instant,
    canceled: Arc<AtomicBool>,
    completed: bool,
    _guard: InFlightGuard,
}

impl PendingShare {
    /// Block until this party's share is computed.
    pub(crate) fn wait(self) -> Result<AnsweredShare, ServeError> {
        oneshot::block_on(self)
    }
}

impl Future for PendingShare {
    type Output = Result<AnsweredShare, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let outcome = match Pin::new(&mut this.rx).poll(cx) {
            Poll::Pending => return Poll::Pending,
            Poll::Ready(Err(oneshot::Canceled)) => Err(ServeError::ShuttingDown),
            Poll::Ready(Ok(result)) => result,
        };
        this.completed = true;
        match &outcome {
            Ok(_) => {
                this.hosted.stats.answered.fetch_add(1, Ordering::Relaxed);
                let elapsed_ms = this.submitted_at.elapsed().as_secs_f64() * 1e3;
                this.hosted.stats.e2e.lock().record_ms(elapsed_ms);
                if let Some(tier) = this.hosted.stats.tier(this.tier) {
                    tier.answered.fetch_add(1, Ordering::Relaxed);
                    tier.e2e.lock().record_ms(elapsed_ms);
                }
            }
            Err(err) if err.is_shed() => {
                // Displacement by a higher-priority arrival: a typed shed,
                // not a failure.
                this.hosted.stats.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(tier) = this.hosted.stats.tier(this.tier) {
                    tier.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                this.hosted.stats.failed.fetch_add(1, Ordering::Relaxed);
                if let Some(tier) = this.hosted.stats.tier(this.tier) {
                    tier.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Poll::Ready(outcome)
    }
}

impl Drop for PendingShare {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Abandoned before resolution (the wire client hung up): flag the
        // queued entry so batch formation discards it.
        self.canceled.store(true, Ordering::Release);
        self.hosted.stats.canceled.fetch_add(1, Ordering::Relaxed);
    }
}
