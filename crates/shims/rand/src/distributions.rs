//! Distributions: the `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers and `bool`, uniform over `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        let value: u128 = Standard.sample(rng);
        value as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T, const N: usize> Distribution<[T; N]> for Standard
where
    Standard: Distribution<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| Standard.sample(rng))
    }
}

pub mod uniform {
    //! Uniform sampling from ranges, mirroring `rand::distributions::uniform`.

    use std::ops::{Range, RangeInclusive};

    use crate::RngCore;

    /// Types that can be sampled uniformly from a bounded range.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Sample uniformly from `[low, high)` (or `[low, high]` when
        /// `inclusive`).
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($ty:ty),*) => {$(
            impl SampleUniform for $ty {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    // Work in the unsigned 128-bit space so the span never
                    // overflows (two's complement makes the wrapping
                    // subtraction correct for signed types too).
                    let span = (high as u128).wrapping_sub(low as u128);
                    let span = if inclusive { span.wrapping_add(1) } else { span };
                    if span == 0 {
                        // Either an empty exclusive range (caller bug) or an
                        // inclusive range covering the whole domain.
                        assert!(inclusive, "cannot sample from empty range");
                        let raw = (u128::from(rng.next_u64()) << 64)
                            | u128::from(rng.next_u64());
                        return (low as u128).wrapping_add(raw) as $ty;
                    }
                    let raw = (u128::from(rng.next_u64()) << 64)
                        | u128::from(rng.next_u64());
                    (low as u128).wrapping_add(raw % span) as $ty
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_sample_uniform_float {
        ($($ty:ty),*) => {$(
            impl SampleUniform for $ty {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    _inclusive: bool,
                ) -> Self {
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let value = low as f64 + (high as f64 - low as f64) * unit;
                    value as $ty
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);

    /// Range types accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Sample one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample from empty range");
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample from empty range");
            T::sample_uniform(rng, low, high, true)
        }
    }
}
