//! Concrete RNG implementations.

use crate::{RngCore, SeedableRng};

/// A deterministic, fast RNG with the same interface as `rand::rngs::StdRng`.
///
/// Internally xoshiro256++ (Blackman–Vigna). Not cryptographically secure —
/// this workspace only uses it for test vectors and simulation noise.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(s: [u64; 4]) -> Self {
        // The all-zero state is a fixed point; nudge it.
        if s == [0, 0, 0, 0] {
            Self {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            }
        } else {
            Self { s }
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        Self::from_state(s)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
