//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` 0.8's API that the PIR
//! stack actually uses: [`Rng`]/[`RngCore`]/[`SeedableRng`], the [`Standard`]
//! distribution behind [`Rng::gen`], uniform range sampling behind
//! [`Rng::gen_range`], and a deterministic [`rngs::StdRng`].
//!
//! The shim is *not* cryptographically secure and is not intended to be: the
//! repository models a system, and every use of randomness here is either
//! test input generation or simulation noise. `StdRng` is xoshiro256++
//! seeded through SplitMix64, which is deterministic per seed on every
//! platform — the property the test-suite actually relies on.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

use distributions::uniform::{SampleRange, SampleUniform};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Fill `dest` entirely with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Seed type, usually a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create an RNG from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create an RNG from a `u64`, expanding it with SplitMix64 exactly like
    /// `rand` 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64, truncated to 32 bits per output as in rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Create an RNG seeded from a low-quality, non-reproducible source
    /// (process-unique state). Good enough for examples; do not use where
    /// determinism matters.
    fn from_entropy() -> Self {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let state = RandomState::new().build_hasher().finish();
        Self::seed_from_u64(state)
    }
}

/// Convenience constructor mirroring `rand::thread_rng` (process-unique,
/// not thread-cached; fine for examples).
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_references_work() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut dyn RngCore = &mut rng;
        let _ = sample(dynrng);
    }
}
