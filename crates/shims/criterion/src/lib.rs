//! Offline subset of `criterion`: a minimal wall-clock benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! surface the workspace's benches use — `Criterion`, benchmark groups,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!` and `Bencher::iter` —
//! with a simple mean-of-N wall-clock measurement instead of criterion's
//! statistical machinery. Run with `cargo bench`; each benchmark prints one
//! line with its mean time per iteration.
//!
//! Two environment variables drive CI integration:
//!
//! * `BENCH_QUICK=1` — smoke mode: fewer samples and a small per-benchmark
//!   time budget, so a whole bench binary finishes in seconds.
//! * `BENCH_JSON=<path>` — append one JSON line per benchmark
//!   (`{"name":…,"ns_per_iter":…,"iters":…}`) to `<path>`, the artifact
//!   the CI bench-regression gate (`bench_gate`) consumes.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Maximum wall-clock time spent measuring one benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Time budget under `BENCH_QUICK` — enough iterations to be meaningful as
/// a >2x-regression tripwire, small enough for CI smoke jobs.
const QUICK_TIME_BUDGET: Duration = Duration::from_millis(40);

/// Whether smoke mode is on.
fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: if quick_mode() { 5 } else { 20 },
        }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark aims for.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
    }
}

/// A named group of benchmarks sharing the parent driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, f);
        self
    }

    /// Finish the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(function), Some(parameter)) => write!(f, "{function}/{parameter}"),
            (Some(function), None) => f.write_str(function),
            (None, Some(parameter)) => f.write_str(parameter),
            (None, None) => f.write_str("bench"),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`, recording the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes lazily-allocated state).
        black_box(routine());

        let budget = if quick_mode() {
            QUICK_TIME_BUDGET
        } else {
            TIME_BUDGET
        };
        let mut iters = 0u64;
        let started = Instant::now();
        while iters < self.sample_size as u64 && started.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        let elapsed = started.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    let (value, unit) = humanize_ns(bencher.mean_ns);
    println!(
        "bench {label:<56} {value:>10.3} {unit}/iter ({} iters)",
        bencher.iters
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if !path.is_empty() {
            append_json_line(&path, label, bencher.mean_ns, bencher.iters);
        }
    }
}

/// Append one machine-readable result line (benchmark names are plain
/// ASCII identifiers; only quote/backslash need escaping).
fn append_json_line(path: &str, label: &str, mean_ns: f64, iters: u64) {
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let line =
        format!("{{\"name\":\"{escaped}\",\"ns_per_iter\":{mean_ns:.1},\"iters\":{iters}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(err) = written {
        eprintln!("warning: could not append bench result to {path}: {err}");
    }
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s ")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Group benchmark functions, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| 2 + 2));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3) * 3));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("gen", "2^10").to_string(), "gen/2^10");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
