//! Offline subset of `proptest`: deterministic randomized property testing.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of proptest's surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an optional
//!   `#![proptest_config(...)]` header,
//! * [`any::<T>()`] for primitive types,
//! * integer/float range strategies (`0u64..100`, `-1.0f32..1.0`),
//! * [`collection::vec`] for vectors with a sampled length,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports its
//! case number and RNG seed so it can be replayed, which is sufficient for
//! this repository's deterministic test-suite.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::Rng;

/// The RNG driving test-case generation.
pub type TestRng = rand::rngs::StdRng;

/// Configuration of a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// A failed property assertion.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Record an assertion failure with a message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "whole domain" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Sample a value covering the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T` (uniform for integers and `bool`,
/// `[0, 1)` for floats).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        low: usize,
        high_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            Self {
                low: range.start,
                high_exclusive: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            Self {
                low: *range.start(),
                high_exclusive: range.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                low: len,
                high_exclusive: len + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose length is sampled from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(
                self.size.low < self.size.high_exclusive,
                "empty size range for collection::vec"
            );
            let len = rng.gen_range(self.size.low..self.size.high_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Deterministic per-property seed derived from the property's name, so
/// every test function explores a different (but reproducible) sequence.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng: $crate::TestRng = <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        seed,
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2i32..=2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(bytes in crate::collection::vec(any::<u8>(), 0..9)) {
            prop_assert!(bytes.len() < 9);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(value in any::<u128>()) {
            prop_assert_eq!(value, value);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_case_number() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u8..8) {
                prop_assert!(x == 99, "impossible");
            }
        }
        always_fails();
    }
}
