//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! Provides the panic-free-guard flavour of `Mutex`/`RwLock` (locking never
//! returns a `Result`; a poisoned std lock is recovered transparently, which
//! matches `parking_lot`'s behaviour of not having poisoning at all) plus the
//! `Condvar` API the serving runtime's batch former uses.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual exclusion primitive whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership the way std requires.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(sync::TryLockError::Poisoned(poison)) => {
                Some(MutexGuard(Some(poison.into_inner())))
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// A reader–writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        handle.join().unwrap();
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let start = Instant::now();
        let result = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
