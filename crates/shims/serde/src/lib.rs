//! Offline stand-in for `serde`'s derive macros.
//!
//! The build environment has no crates.io access. The workspace's *actual*
//! wire format lives in `pir-wire`, whose encoders are hand-rolled so the
//! on-wire byte layout is canonical and deterministic (and so reported
//! communication sizes are exact); the `#[derive(Serialize, Deserialize)]`
//! annotations across the crates declare intent for interop with generic
//! serde formats (JSON config dumps, snapshot tooling, ...). This shim
//! keeps those annotations compiling by providing derive macros that
//! expand to nothing (and accept, and ignore, any `#[serde(...)]` helper
//! attributes).
//!
//! If crates.io access ever lands, replace this crate with the real
//! `serde` + `serde_derive` in the workspace manifest; no source changes to
//! the other crates should be needed.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
