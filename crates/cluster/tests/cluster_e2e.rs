//! End-to-end cluster tests: routers over real per-shard serving runtimes.
//!
//! Deployment shape under test = the real one: one runtime per
//! (shard, party) — each party's shard-owners are separate processes with
//! their own masked table copy — and one router per party fronting them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pir_cluster::{ClusterConfig, ClusterError, ClusterMembership, ClusterRouter, ShardEndpoints};
use pir_prf::PrfKind;
use pir_protocol::PirTable;
use pir_serve::{PirServeRuntime, ServeConfig, TableConfig, WireFrontend};
use pir_wire::{loopback_pair, Dialer, PirSession, PirTransport, WireError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENTRIES: u64 = 100;
const ENTRY_BYTES: usize = 8;

fn fill(row: u64, offset: usize) -> u8 {
    (row as u8).wrapping_mul(29).wrapping_add(offset as u8)
}

fn base_table() -> PirTable {
    PirTable::generate(ENTRIES, ENTRY_BYTES, fill)
}

fn shard_runtime(view: PirTable, seed: u64) -> Arc<PirServeRuntime> {
    let runtime = PirServeRuntime::new(ServeConfig::builder().seed(seed).build().unwrap());
    let config = TableConfig::builder()
        .prf_kind(PrfKind::SipHash)
        .max_batch(8)
        .max_wait(Duration::from_millis(1))
        .build()
        .unwrap();
    runtime.register_table("emb", view, config).unwrap();
    Arc::new(runtime)
}

/// A replica endpoint over loopback: every dial spawns a lockstep serve
/// thread against the replica's runtime. `dead` simulates the process
/// disappearing (dials refused); `serve_limit` simulates it dying mid-run
/// (the connection drops when asked to serve one more frame).
struct ReplicaDialer {
    runtime: Arc<PirServeRuntime>,
    party: u8,
    dead: Arc<AtomicBool>,
    serve_limit: Option<usize>,
}

impl ReplicaDialer {
    fn live(runtime: &Arc<PirServeRuntime>, party: u8) -> Arc<dyn Dialer> {
        Arc::new(Self {
            runtime: Arc::clone(runtime),
            party,
            dead: Arc::new(AtomicBool::new(false)),
            serve_limit: None,
        })
    }
}

impl Dialer for ReplicaDialer {
    fn dial(&self) -> Result<Box<dyn PirTransport>, WireError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(WireError::Transport("replica is down".into()));
        }
        let (client, mut server) = loopback_pair();
        let frontend = WireFrontend::new(self.runtime.handle(), self.party);
        let limit = self.serve_limit;
        std::thread::spawn(move || {
            let mut served = 0usize;
            while let Ok(frame) = server.recv() {
                if limit.is_some_and(|n| served >= n) {
                    return; // drops the connection mid-call
                }
                let reply = frontend.handle_frame(&frame);
                if server.send(&reply).is_err() {
                    return;
                }
                served += 1;
            }
        });
        Ok(Box::new(client))
    }

    fn describe(&self) -> String {
        format!("loopback-party{}", self.party)
    }
}

/// Routers for both parties over single-replica shards, from one base
/// table. Returns the per-(shard, party) runtimes alongside.
fn two_party_cluster(
    table: &PirTable,
    shards: usize,
) -> ([Arc<ClusterRouter>; 2], Vec<Arc<PirServeRuntime>>) {
    let map = pir_cluster::ShardMap::new(table.entries(), shards).unwrap();
    let views = map.provision(table);
    let config = ClusterConfig {
        probe_interval: None,
    };
    let mut runtimes = Vec::new();
    let mut routers = Vec::new();
    for party in 0..2u8 {
        let mut endpoints = Vec::new();
        for (shard, view) in views.iter().enumerate() {
            let runtime = shard_runtime(view.clone(), 100 * u64::from(party) + shard as u64);
            endpoints.push(ShardEndpoints::single(ReplicaDialer::live(&runtime, party)));
            runtimes.push(runtime);
        }
        let membership = ClusterMembership::new(endpoints);
        routers.push(Arc::new(
            ClusterRouter::connect(&membership, &config, party).unwrap(),
        ));
    }
    let router1 = routers.pop().unwrap();
    let router0 = routers.pop().unwrap();
    ([router0, router1], runtimes)
}

/// Connect a client session to the two routers over loopback.
fn connect_session(routers: &[Arc<ClusterRouter>; 2], tenant: &str) -> PirSession {
    let mut ends: Vec<Box<dyn PirTransport>> = Vec::new();
    for router in routers {
        let (client, server) = loopback_pair();
        let router = Arc::clone(router);
        std::thread::spawn(move || {
            router.serve(Box::new(server)).expect("router serve");
        });
        ends.push(Box::new(client));
    }
    let t1 = ends.pop().unwrap();
    let t0 = ends.pop().unwrap();
    PirSession::connect(t0, t1, tenant).expect("session connect")
}

#[test]
fn sharded_cluster_answers_are_bit_identical_to_the_table() {
    let table = base_table();
    let (routers, _runtimes) = two_party_cluster(&table, 3);
    let mut session = connect_session(&routers, "t");
    let mut rng = StdRng::seed_from_u64(7);
    // Subtree boundaries for 100 rows over 3 shards (span 32), plus strays.
    let mut indices = vec![0, 31, 32, 63, 64, 95, 96, 99];
    indices.extend((0..8).map(|_| rng.gen_range(0..ENTRIES)));
    for index in indices {
        let row = session.query("emb", index, &mut rng).expect("answered");
        assert_eq!(row, table.entry(index), "row {index}");
    }
    for router in &routers {
        let stats = router.stats();
        assert_eq!(stats.fence_lagged, 0);
        assert_eq!(stats.fences.len(), 1);
        assert_eq!(stats.fences[0].cluster_version, 1);
        // The first answers pinned every shard's fence slot.
        assert_eq!(stats.fences[0].shard_versions, vec![Some(1); 3]);
        assert!(stats.shards.iter().all(|s| s.in_flight == 0));
    }
}

#[test]
fn updates_route_to_the_owning_shard_and_flip_the_fence() {
    let table = base_table();
    let (routers, _runtimes) = two_party_cluster(&table, 3);
    let map = routers[0].shard_map("emb").unwrap().clone();
    let mut session = connect_session(&routers, "t");
    let mut rng = StdRng::seed_from_u64(8);
    // One update per shard, then read the rows back through the cluster.
    let targets: Vec<u64> = vec![5, 40, 70];
    for (round, &index) in targets.iter().enumerate() {
        let value = vec![0xE0 + round as u8; ENTRY_BYTES];
        session.update_entry("emb", index, &value).expect("update");
        let row = session.query("emb", index, &mut rng).expect("answered");
        assert_eq!(row, value, "row {index} after reload");
    }
    // Untouched rows still read exactly.
    let row = session.query("emb", 99, &mut rng).expect("answered");
    assert_eq!(row, table.entry(99));
    for router in &routers {
        let stats = router.stats();
        assert_eq!(stats.updates_staged, 3);
        assert_eq!(stats.updates_flipped, 3, "every staged update flipped");
        assert_eq!(stats.fence_lagged, 0);
        let fence = &stats.fences[0];
        assert_eq!(fence.cluster_version, 1 + 3);
        for shard in 0..3 {
            let owned_updates = targets
                .iter()
                .filter(|&&index| map.owner_of(index) == shard)
                .count() as u64;
            assert_eq!(
                fence.shard_versions[shard],
                Some(1 + owned_updates),
                "shard {shard} fence tracks its own reload count"
            );
        }
    }
}

#[test]
fn reload_churn_never_reconstructs_mixed_version_rows() {
    let table = base_table();
    let (routers, _runtimes) = two_party_cluster(&table, 2);
    // Rows on both shards (2 shards over 100 rows: split at subtree 64).
    const CHURNED: [u64; 2] = [3, 80];
    const FILLS: [u8; 3] = [0xA1, 0xB2, 0xC3];
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let mut admin = connect_session(&routers, "admin");
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0usize;
            let mut updates = 0u64;
            while !stop.load(Ordering::Acquire) {
                let row = CHURNED[round % CHURNED.len()];
                let fill = FILLS[round % FILLS.len()];
                admin
                    .update_entry("emb", row, &[fill; ENTRY_BYTES])
                    .expect("reload");
                updates += 1;
                round += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            updates
        })
    };
    let mut session = connect_session(&routers, "t");
    let mut rng = StdRng::seed_from_u64(9);
    for round in 0..60u64 {
        let index = if round % 3 == 0 {
            CHURNED[(round as usize / 3) % CHURNED.len()]
        } else {
            rng.gen_range(0..ENTRIES)
        };
        // A query may legitimately fail typed under brutal churn (cross-
        // party skew after the one transparent retry, or a fence
        // rejection): re-issue it. What must never happen is a garbage row.
        let mut attempts = 0;
        let row = loop {
            match session.query("emb", index, &mut rng) {
                Ok(row) => break row,
                Err(WireError::VersionSkew { .. }) | Err(WireError::Remote { shed: true, .. }) => {
                    attempts += 1;
                    assert!(attempts < 50, "typed retries runaway on row {index}");
                }
                Err(err) => panic!("query for row {index} failed hard: {err}"),
            }
        };
        let pristine: Vec<u8> = (0..ENTRY_BYTES).map(|o| fill(index, o)).collect();
        let ok = row == pristine
            || (CHURNED.contains(&index) && FILLS.iter().any(|&f| row.iter().all(|&b| b == f)));
        assert!(
            ok,
            "row {index} reconstructed to garbage under churn: {row:02x?}"
        );
    }
    stop.store(true, Ordering::Release);
    let updates = churn.join().expect("churn thread");
    assert!(updates > 0, "churn must have run");
    for router in &routers {
        let stats = router.stats();
        assert_eq!(
            stats.updates_staged, stats.updates_flipped,
            "no update left half-applied (staged without flipping)"
        );
        assert_eq!(stats.updates_flipped, updates);
        assert_eq!(stats.fences[0].cluster_version, 1 + updates);
    }
}

#[test]
fn dying_replica_fails_over_without_losing_queries() {
    let table = base_table();
    let map = pir_cluster::ShardMap::new(ENTRIES, 2).unwrap();
    let views = map.provision(&table);
    let config = ClusterConfig {
        probe_interval: None,
    };
    let mut routers = Vec::new();
    let mut keep = Vec::new();
    for party in 0..2u8 {
        // Shard 0: first replica serves the handshake plus one call, then
        // drops every connection; second replica is healthy. Shard 1:
        // healthy single replica. Both replicas of shard 0 host the same
        // masked copy, as a real deployment would.
        let dying_runtime = shard_runtime(views[0].clone(), 40 + u64::from(party));
        let dying: Arc<dyn Dialer> = Arc::new(ReplicaDialer {
            runtime: Arc::clone(&dying_runtime),
            party,
            dead: Arc::new(AtomicBool::new(false)),
            serve_limit: Some(2),
        });
        let healthy_runtime = shard_runtime(views[0].clone(), 50 + u64::from(party));
        let shard1_runtime = shard_runtime(views[1].clone(), 60 + u64::from(party));
        let membership = ClusterMembership::new(vec![
            ShardEndpoints::new(vec![dying, ReplicaDialer::live(&healthy_runtime, party)]),
            ShardEndpoints::single(ReplicaDialer::live(&shard1_runtime, party)),
        ]);
        routers.push(Arc::new(
            ClusterRouter::connect(&membership, &config, party).unwrap(),
        ));
        keep.push((dying_runtime, healthy_runtime, shard1_runtime));
    }
    let router1 = routers.pop().unwrap();
    let router0 = routers.pop().unwrap();
    let routers = [router0, router1];
    let mut session = connect_session(&routers, "t");
    let mut rng = StdRng::seed_from_u64(11);
    // Query 1 consumes the dying replica's last serve; query 2 hits the
    // dropped connection mid-call and must fail over, not fail.
    for index in [10u64, 20, 30, 70, 15] {
        let row = session.query("emb", index, &mut rng).expect("answered");
        assert_eq!(row, table.entry(index), "row {index}");
    }
    for router in &routers {
        let stats = router.stats();
        assert!(
            stats.shards[0].failovers >= 1,
            "shard 0 must have failed over: {stats:?}"
        );
        assert_eq!(stats.shards[1].failovers, 0);
        assert_eq!(stats.fence_lagged, 0);
    }
}

#[test]
fn losing_every_replica_degrades_to_a_typed_shed_error() {
    let table = base_table();
    let views = pir_cluster::ShardMap::new(ENTRIES, 1)
        .unwrap()
        .provision(&table);
    let config = ClusterConfig {
        probe_interval: None,
    };
    let mut routers = Vec::new();
    let mut switches = Vec::new();
    let mut keep = Vec::new();
    for party in 0..2u8 {
        let runtime = shard_runtime(views[0].clone(), 70 + u64::from(party));
        let dead = Arc::new(AtomicBool::new(false));
        let replica: Arc<dyn Dialer> = Arc::new(ReplicaDialer {
            runtime: Arc::clone(&runtime),
            party,
            dead: Arc::clone(&dead),
            // Serves only the connect handshake; afterwards the live
            // connection is gone and redials are refused once `dead` flips.
            serve_limit: Some(1),
        });
        let membership = ClusterMembership::new(vec![ShardEndpoints::single(replica)]);
        routers.push(Arc::new(
            ClusterRouter::connect(&membership, &config, party).unwrap(),
        ));
        switches.push(dead);
        keep.push(runtime);
    }
    let router1 = routers.pop().unwrap();
    let router0 = routers.pop().unwrap();
    let routers = [router0, router1];
    let mut session = connect_session(&routers, "t");
    for dead in &switches {
        dead.store(true, Ordering::SeqCst);
    }
    let mut rng = StdRng::seed_from_u64(12);
    match session.query("emb", 5, &mut rng) {
        Err(WireError::Remote { shed, message, .. }) => {
            assert!(
                shed,
                "ShardUnavailable must surface as a shed (retry-later) error"
            );
            assert!(message.contains("no live replica"), "{message}");
        }
        other => panic!("expected a shed error, got {other:?}"),
    }
}

#[test]
fn misprovisioned_clusters_are_rejected_at_connect() {
    let table = base_table();
    let config = ClusterConfig {
        probe_interval: None,
    };
    // Catalog disagreement: shard 1 hosts a differently-shaped table.
    let runtime0 = shard_runtime(table.clone(), 1);
    let runtime1 = shard_runtime(PirTable::generate(64, 8, fill), 2);
    let membership = ClusterMembership::new(vec![
        ShardEndpoints::single(ReplicaDialer::live(&runtime0, 0)),
        ShardEndpoints::single(ReplicaDialer::live(&runtime1, 0)),
    ]);
    match ClusterRouter::connect(&membership, &config, 0) {
        Err(ClusterError::CatalogMismatch { shard: 1, .. }) => {}
        other => panic!("expected catalog mismatch, got {other:?}"),
    }
    // Party disagreement: shards answer for party 1, router fronts party 0.
    let membership = ClusterMembership::new(vec![ShardEndpoints::single(ReplicaDialer::live(
        &runtime0, 1,
    ))]);
    match ClusterRouter::connect(&membership, &config, 0) {
        Err(ClusterError::Config(detail)) => assert!(detail.contains("party"), "{detail}"),
        other => panic!("expected config error, got {other:?}"),
    }
}

#[test]
fn probing_keeps_connections_warm() {
    let table = base_table();
    let views = pir_cluster::ShardMap::new(ENTRIES, 1)
        .unwrap()
        .provision(&table);
    let runtime = shard_runtime(views[0].clone(), 90);
    let membership = ClusterMembership::new(vec![ShardEndpoints::single(ReplicaDialer::live(
        &runtime, 0,
    ))]);
    let config = ClusterConfig {
        probe_interval: Some(Duration::from_millis(5)),
    };
    let router = ClusterRouter::connect(&membership, &config, 0).unwrap();
    std::thread::sleep(Duration::from_millis(40));
    let stats = router.stats();
    assert_eq!(stats.shards[0].probe_failures, 0);
    assert!(
        stats.shards[0].calls >= 2,
        "prober must have pinged the shard: {stats:?}"
    );
    assert_eq!(stats.shards[0].connected_replica, Some(0));
    router.shutdown();
}
