//! [`ClusterRouter`]: the per-party shard router/aggregator.
//!
//! The router owns the client-facing endpoint for **one party** and makes a
//! shard set look like one giant server. For every query it fans the
//! client's single key projection out to each shard-owner (whose masked
//! table makes its answer an additive partial share), sums the returned
//! share vectors lane-wise, and answers the client with one stamped
//! response. Because the per-row reduction is linear and the masked views
//! partition the rows, the sum is bit-identical to what an unsharded server
//! would have produced.
//!
//! # Trust model
//!
//! One router per party, deployed alongside that party's shards. A router
//! only ever sees its own party's key projection — exactly what the shard
//! processes behind it see — so the non-collusion boundary is unchanged:
//! compromising a router reveals nothing an unsharded server of the same
//! party would not have revealed. No type in this crate can represent a
//! key pair.
//!
//! # The reload fence
//!
//! Hot reloads make sharding dangerous. The danger is precisely the *same
//! shard* answering the two parties at different table versions: the
//! pair-sum of that shard's contributions then carries a DPF-masked delta
//! of the updated row, corrupting **every** query's reconstruction, not
//! just the updated row's. (Different shards at different versions are
//! harmless — each shard's pair is internally consistent.) The router
//! cannot check rows (privacy), so it makes the danger *visible* instead:
//! every aggregate is stamped with a position-dependent digest of the
//! per-shard version vector it was computed from. Two parties that mixed
//! any shard differently produce different digests, and the client's
//! existing v2 stamp comparison detects it, transparently retries once,
//! and fails with the typed `VersionSkew` on a double straddle — exactly
//! the single-process machinery, with no client changes. A mixed-version
//! pair is never silently reconstructed.
//!
//! On top of detection, the router keeps a per-table **fence**: the
//! expected version of every shard (pinned by a calibration query at
//! connect) plus a flip counter. `update_entry` is two-phase under the
//! fence lock — **stage** the row on every replica of the owning shard,
//! then **flip** the fence — which guarantees replicas stay
//! interchangeable across failover and gives queries a reference to chase:
//! a shard whose stamp lags the fence raced a flip mid-flight and is
//! re-asked exactly once before the aggregate is stamped, keeping
//! client-visible skew rare even under heavy reload churn.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use pir_protocol::{validate_update, PirError, PirResponse};
use pir_wire::{
    decode_message_versioned, encode_message_v, Catalog, CatalogEntry, ErrorCode, ErrorReply,
    PirTransport, QueryMsg, ResponseMsg, UpdateAckMsg, UpdateEntryMsg, WireError, WireMessage,
    MIN_SUPPORTED_VERSION, PROTOCOL_V1, PROTOCOL_V2,
};
use rand::SeedableRng;

use crate::backhaul::ShardConn;
use crate::config::{ClusterConfig, ClusterMembership};
use crate::error::ClusterError;
use crate::map::ShardMap;
use crate::stats::{RouterStatsSnapshot, RouterTelemetry, TableFenceSnapshot};

/// Longest detail string an error reply echoes back (same bound as the
/// single-process frontend, for the same reason: client-supplied names
/// must never push a reply past what the string codec can encode).
const MAX_ERROR_DETAIL_BYTES: usize = 512;

fn bounded_detail(message: String) -> String {
    if message.len() <= MAX_ERROR_DETAIL_BYTES {
        return message;
    }
    let mut cut = MAX_ERROR_DETAIL_BYTES;
    while !message.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}... (truncated)", &message[..cut])
}

/// One table's reload fence.
struct TableFence {
    /// Expected per-shard table version, pinned by the connect-time
    /// calibration query (`None` only during connect itself).
    shard: Vec<Option<u64>>,
    /// Flip counter (starts at 1, +1 per applied update) — telemetry and
    /// the staged→flip ordering proof, not the response stamp.
    cluster: u64,
}

/// Digest of a per-shard version vector, used as the aggregate's response
/// stamp. Position-dependent (a mix, not a sum): two vectors that disagree
/// in compensating ways — party 0 saw update A but not B, party 1 saw B
/// but not A — must still produce different stamps, or a dangerous
/// cross-party mix would cancel out and go undetected.
fn stamp_digest(stamps: impl Iterator<Item = u64>) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for stamp in stamps {
        digest ^= stamp.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        digest = digest.rotate_left(27).wrapping_mul(0x1000_0000_01b3);
    }
    digest
}

struct RouterInner {
    party: u8,
    /// Shard 0's catalog entries, re-advertised to clients.
    tables: Vec<CatalogEntry>,
    maps: HashMap<String, ShardMap>,
    /// Per-table fences. One lock for all of them: `update_entry` holds it
    /// across stage+flip so queries validating mid-reload wait for a
    /// consistent post-flip state instead of shedding.
    fences: Mutex<HashMap<String, TableFence>>,
    conns: Vec<ShardConn>,
    telemetry: RouterTelemetry,
    stop: AtomicBool,
}

/// The per-party shard router/aggregator (see the module docs).
pub struct ClusterRouter {
    inner: Arc<RouterInner>,
    prober: Mutex<Option<JoinHandle<()>>>,
}

/// What the fan-out produced for one shard.
type ShardAnswer = Result<(Vec<u32>, u64), Box<WireMessage>>;

impl ClusterRouter {
    /// Connect to every shard, validate the deployment, and build the
    /// router for `party`.
    ///
    /// Connect-time validation: every shard must answer for `party`, speak
    /// protocol v2 (the fence is built on response stamps), and advertise a
    /// catalog identical to shard 0's (masked copies share the schema, so
    /// any disagreement means mis-provisioning).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an invalid membership, party, or a
    /// v1-only shard; [`ClusterError::CatalogMismatch`] for catalog
    /// disagreements; [`ClusterError::ShardUnavailable`] when a shard
    /// cannot be reached at all.
    pub fn connect(
        membership: &ClusterMembership,
        config: &ClusterConfig,
        party: u8,
    ) -> Result<Self, ClusterError> {
        membership.validate()?;
        if party > 1 {
            return Err(ClusterError::Config(format!(
                "two-server protocol: party must be 0 or 1, got {party}"
            )));
        }
        let conns: Vec<ShardConn> = membership
            .shards
            .iter()
            .enumerate()
            .map(|(shard, endpoints)| ShardConn::new(shard, endpoints.replicas.clone()))
            .collect();
        let mut tables: Option<Vec<CatalogEntry>> = None;
        for conn in &conns {
            let catalog = conn.handshake()?;
            if catalog.party != party {
                return Err(ClusterError::Config(format!(
                    "shard {} answers for party {}, router fronts party {party}",
                    conn.shard(),
                    catalog.party
                )));
            }
            if catalog.protocol_version < PROTOCOL_V2 {
                return Err(ClusterError::Config(format!(
                    "shard {} speaks protocol v{} but the reload fence needs v{PROTOCOL_V2} \
                     response stamps",
                    conn.shard(),
                    catalog.protocol_version
                )));
            }
            match &tables {
                None => tables = Some(catalog.tables),
                Some(reference) => {
                    if &catalog.tables != reference {
                        return Err(ClusterError::CatalogMismatch {
                            shard: conn.shard(),
                            detail: format!(
                                "tables {:?} differ from shard 0's {:?}",
                                names(&catalog.tables),
                                names(reference)
                            ),
                        });
                    }
                }
            }
        }
        // pir-lint: allow(panic-path, "membership.validate() above rejects empty shard lists, so the loop ran at least once")
        let tables = tables.expect("membership has at least one shard");
        let mut maps = HashMap::new();
        let mut fences = HashMap::new();
        for entry in &tables {
            let map = ShardMap::new(entry.schema.entries, conns.len())?;
            fences.insert(
                entry.name.clone(),
                TableFence {
                    shard: vec![None; conns.len()],
                    cluster: 1,
                },
            );
            maps.insert(entry.name.clone(), map);
        }
        // Calibrate the fence: pin every shard's current table version with
        // a router-generated query, *before* any client traffic or update
        // can exist. Pinning lazily from client answers instead would race
        // concurrent flips (an answer's stamp reflects compute time, not
        // validation time) and could freeze the fence one version behind
        // forever. Connect time is the one quiescent moment where a stamp
        // is guaranteed current.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xfe9c_e0ca_11b8_47ed);
        for entry in &tables {
            let client = pir_protocol::PirClient::new(entry.schema, entry.prf_kind);
            // pir-lint: allow(panic-path, "the loop above inserted a fence for every table entry")
            let fence = fences.get_mut(&entry.name).expect("inserted above");
            for conn in &conns {
                let query = client.query(0, &mut rng);
                let query_id = query.query_id;
                let message = WireMessage::Query(QueryMsg {
                    table: entry.name.clone(),
                    tenant: "cluster-fence-calibration".into(),
                    query: query.to_server(party),
                });
                match conn.call(&message, PROTOCOL_V2, Some(query_id))? {
                    WireMessage::Response(msg) => {
                        fence.shard[conn.shard()] = Some(msg.table_version);
                    }
                    WireMessage::Error(reply) => {
                        return Err(ClusterError::Config(format!(
                            "shard {} failed the fence-calibration query for {:?}: {}",
                            conn.shard(),
                            entry.name,
                            reply.message
                        )))
                    }
                    other => {
                        return Err(ClusterError::CatalogMismatch {
                            shard: conn.shard(),
                            detail: format!("calibration answered with a {} frame", other.name()),
                        })
                    }
                }
            }
        }
        let inner = Arc::new(RouterInner {
            party,
            tables,
            maps,
            fences: Mutex::new(fences),
            conns,
            telemetry: RouterTelemetry::default(),
            stop: AtomicBool::new(false),
        });
        let prober = config.probe_interval.map(|interval| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("cluster-prober-party{party}"))
                .spawn(move || {
                    while !inner.stop.load(Ordering::SeqCst) {
                        for conn in &inner.conns {
                            conn.try_probe();
                        }
                        std::thread::sleep(interval);
                    }
                })
                // pir-lint: allow(panic-path, "OS thread spawn fails only on resource exhaustion; no recovery path at connect")
                .expect("spawn cluster prober")
        });
        Ok(Self {
            inner,
            prober: Mutex::new(prober),
        })
    }

    /// The party this router fronts.
    #[must_use]
    pub fn party(&self) -> u8 {
        self.inner.party
    }

    /// Number of shard-owners behind this router.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.inner.conns.len()
    }

    /// The shard map for `table`, if hosted.
    #[must_use]
    pub fn shard_map(&self, table: &str) -> Option<&ShardMap> {
        self.inner.maps.get(table)
    }

    /// Stop the background prober. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(prober) = self.prober.lock().take() {
            let _ = prober.join();
        }
    }

    /// Serve one client connection until the peer hangs up.
    ///
    /// Lockstep per connection (one frame in, one out); run one `serve`
    /// thread per accepted connection for concurrency, exactly like the
    /// single-process frontend.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Transport`] for I/O failures; a clean
    /// [`WireError::ConnectionClosed`] hang-up returns `Ok(())`.
    pub fn serve(&self, mut transport: Box<dyn PirTransport>) -> Result<(), WireError> {
        loop {
            let frame = match transport.recv() {
                Ok(frame) => frame,
                Err(WireError::ConnectionClosed) => return Ok(()),
                Err(err) => return Err(err),
            };
            let reply = self.handle_frame(&frame);
            match transport.send(&reply) {
                Ok(()) => {}
                Err(WireError::ConnectionClosed) => return Ok(()),
                Err(err) => return Err(err),
            }
        }
    }

    /// Handle one request frame and produce the reply frame. Total: every
    /// input, including garbage, yields an encoded reply.
    #[must_use]
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let (version, message) = match decode_message_versioned(frame) {
            Ok(decoded) => decoded,
            Err(WireError::UnsupportedVersion { got, .. }) => {
                return encode_message_v(
                    &WireMessage::Error(ErrorReply::unsupported_range(
                        got,
                        MIN_SUPPORTED_VERSION,
                        PROTOCOL_V2,
                    )),
                    PROTOCOL_V1,
                )
            }
            Err(err) => {
                return encode_message_v(
                    &error_reply(ErrorCode::Malformed, false, 0, err.to_string()),
                    PROTOCOL_V1,
                )
            }
        };
        let reply = match message {
            WireMessage::CatalogRequest => WireMessage::Catalog(Catalog {
                protocol_version: PROTOCOL_V2,
                party: self.inner.party,
                tables: self.inner.tables.clone(),
            }),
            WireMessage::Query(query) => self.handle_query(query),
            WireMessage::UpdateEntry(update) => self.handle_update(update),
            other => error_reply(
                ErrorCode::InvalidRequest,
                false,
                0,
                format!("router cannot accept a {} message", other.name()),
            ),
        };
        encode_message_v(&reply, version)
    }

    /// Answer one query: fan out, fence-validate, retry once, sum, stamp.
    fn handle_query(&self, query: QueryMsg) -> WireMessage {
        let inner = &self.inner;
        let query_id = query.query.query_id;
        inner.telemetry.queries.fetch_add(1, Ordering::Relaxed);
        if query.query.party() != inner.party {
            return error_reply(
                ErrorCode::InvalidRequest,
                false,
                query_id,
                format!(
                    "this router fronts party {}, key is for party {}",
                    inner.party,
                    query.query.party()
                ),
            );
        }
        if !inner.maps.contains_key(&query.table) {
            return error_reply(
                ErrorCode::UnknownTable,
                false,
                query_id,
                format!("no table named {:?} is hosted", query.table),
            );
        }
        // Fan the same projection out to every shard in parallel; each
        // masked copy turns it into that shard's additive partial share.
        let message = WireMessage::Query(query.clone());
        let mut answers: Vec<ShardAnswer> = std::thread::scope(|scope| {
            let handles: Vec<_> = inner
                .conns
                .iter()
                .map(|conn| scope.spawn(|| self.query_shard(conn, &message, query_id)))
                .collect();
            handles
                .into_iter()
                // pir-lint: allow(panic-path, "join errors only if the scoped thread panicked; re-raising the panic is the point")
                .map(|handle| handle.join().expect("shard fan-out thread panicked"))
                .collect()
        });
        if let Some(Err(reply)) = answers.iter().find(|outcome| outcome.is_err()) {
            return (**reply).clone();
        }
        // Chase the fence: a shard whose stamp lags it raced a flip
        // mid-flight and is re-asked exactly once (never holding the fence
        // lock across the network call). Whatever versions remain after
        // the retry are *answered* — the digest stamp below exposes them
        // to the client's cross-party check, which is the actual safety
        // net; the retry only keeps client-visible skew rare.
        let lagging = self.lagging_shards(&query.table, &answers);
        if !lagging.is_empty() {
            inner
                .telemetry
                .fence_retries
                .fetch_add(1, Ordering::Relaxed);
            for &shard in &lagging {
                answers[shard] = self.query_shard(&inner.conns[shard], &message, query_id);
            }
            if let Some(Err(reply)) = answers.iter().find(|outcome| outcome.is_err()) {
                return (**reply).clone();
            }
            if !self.lagging_shards(&query.table, &answers).is_empty() {
                inner.telemetry.fence_lagged.fetch_add(1, Ordering::Relaxed);
            }
        }
        let shares = match answers
            .iter()
            .map(Result::as_ref)
            .collect::<Result<Vec<_>, _>>()
        {
            Ok(shares) => shares,
            Err(reply) => return (**reply).clone(),
        };
        let cluster = stamp_digest(shares.iter().map(|(_, stamp)| *stamp));
        // Sum the partial shares lane-wise (wrapping add is associative and
        // commutative, so this is bit-identical to the unsharded answer).
        let mut summed: Vec<u32> = Vec::new();
        for (share, _) in &shares {
            if summed.is_empty() {
                summed = share.clone();
            } else if summed.len() != share.len() {
                return error_reply(
                    ErrorCode::Protocol,
                    false,
                    query_id,
                    format!(
                        "shards disagree on share width ({} vs {} lanes): mis-provisioned \
                         cluster",
                        summed.len(),
                        share.len()
                    ),
                );
            } else {
                for (lane, part) in summed.iter_mut().zip(share.iter()) {
                    *lane = lane.wrapping_add(*part);
                }
            }
        }
        WireMessage::Response(ResponseMsg {
            response: PirResponse {
                query_id,
                party: inner.party,
                share: summed,
            },
            table_version: cluster,
        })
    }

    /// One shard's leg of the fan-out, mapped onto the client-visible
    /// outcome.
    fn query_shard(&self, conn: &ShardConn, message: &WireMessage, query_id: u64) -> ShardAnswer {
        match conn.call(message, PROTOCOL_V2, Some(query_id)) {
            Ok(WireMessage::Response(msg)) => Ok((msg.response.share, msg.table_version)),
            Ok(WireMessage::Error(reply)) => {
                // A shard-level typed error (shed, unknown table...) is the
                // aggregate's error, re-attributed to the client's query.
                Err(Box::new(WireMessage::Error(ErrorReply {
                    query_id,
                    ..reply
                })))
            }
            Ok(other) => Err(Box::new(error_reply(
                ErrorCode::Protocol,
                false,
                query_id,
                format!(
                    "shard {} answered a query with a {} frame",
                    conn.shard(),
                    other.name()
                ),
            ))),
            // The typed degradation: every replica of the shard is gone.
            // Shed-flagged so clients treat it as retry-later backpressure.
            Err(err) => {
                let shed = matches!(err, ClusterError::ShardUnavailable { .. });
                Err(Box::new(error_to_reply(err, shed, query_id)))
            }
        }
    }

    /// Compare every shard's stamp against the fence, returning the
    /// shards whose answers *lag* it (they raced a flip mid-flight and
    /// hold the pre-reload table). An unpinned slot is pinned; a stamp
    /// *ahead* of the fence means the fence itself is stale (a flip
    /// landed between this router's bump and the shard's answer on the
    /// other party's router — versions only ever advance), so the fence
    /// adopts it rather than flagging the shard.
    fn lagging_shards(&self, table: &str, answers: &[ShardAnswer]) -> Vec<usize> {
        let mut fences = self.inner.fences.lock();
        let Some(fence) = fences.get_mut(table) else {
            return Vec::new(); // unhosted table: nothing to validate
        };
        let mut lagging = Vec::new();
        for (shard, outcome) in answers.iter().enumerate() {
            let Ok((_, stamp)) = outcome.as_ref() else {
                continue; // errored legs were already returned to the client
            };
            match fence.shard[shard] {
                None => fence.shard[shard] = Some(*stamp),
                Some(expected) if *stamp < expected => lagging.push(shard),
                Some(expected) if *stamp > expected => fence.shard[shard] = Some(*stamp),
                Some(_) => {}
            }
        }
        lagging
    }

    /// Apply one hot reload through the cluster-wide two-phase fence.
    fn handle_update(&self, update: UpdateEntryMsg) -> WireMessage {
        let inner = &self.inner;
        let Some(map) = inner.maps.get(&update.table) else {
            return error_reply(
                ErrorCode::UnknownTable,
                false,
                0,
                format!("no table named {:?} is hosted", update.table),
            );
        };
        let Some(schema) = inner
            .tables
            .iter()
            .find(|entry| entry.name == update.table)
            .map(|entry| entry.schema)
        else {
            return error_reply(
                ErrorCode::UnknownTable,
                false,
                0,
                format!("no table named {:?} is hosted", update.table),
            );
        };
        if let Err(err) = validate_update(schema, update.index, &update.bytes) {
            let code = match err {
                PirError::IndexOutOfRange { .. } => ErrorCode::IndexOutOfRange,
                _ => ErrorCode::InvalidRequest,
            };
            return error_reply(code, false, 0, err.to_string());
        }
        let owner = map.owner_of(update.index);
        // Hold the fence lock across stage+flip: queries validating during
        // the staging window wait and then see the consistent post-flip
        // fence, so the exactly-once retry is enough.
        let mut fences = self.inner.fences.lock();
        inner
            .telemetry
            .updates_staged
            .fetch_add(1, Ordering::Relaxed);
        let staged = inner.conns[owner]
            .broadcast_update(&WireMessage::UpdateEntry(update.clone()), PROTOCOL_V2);
        match staged {
            Ok(_acks) => {
                let fence = fences
                    .get_mut(&update.table)
                    // pir-lint: allow(panic-path, "a fence is created for every hosted table at connect, and the map lookup above proved the table is hosted")
                    .expect("hosted table has a fence");
                if let Some(version) = fence.shard[owner].as_mut() {
                    // Each replica applied exactly one update: the shard's
                    // own version counter advanced by one.
                    *version += 1;
                }
                fence.cluster += 1;
                inner
                    .telemetry
                    .updates_flipped
                    .fetch_add(1, Ordering::Relaxed);
                WireMessage::UpdateAck(UpdateAckMsg {
                    table: update.table,
                    index: update.index,
                })
            }
            // Zero replicas acked: nothing flipped, the fence is unchanged,
            // and the pre-update row is still what every query sees.
            Err(err) => {
                let shed = matches!(err, ClusterError::ShardUnavailable { .. });
                error_to_reply(err, shed, 0)
            }
        }
    }

    /// Point-in-time router stats (telemetry, per-shard back-haul, fences).
    #[must_use]
    pub fn stats(&self) -> RouterStatsSnapshot {
        let inner = &self.inner;
        let mut fences: Vec<TableFenceSnapshot> = inner
            .fences
            .lock()
            .iter()
            .map(|(table, fence)| TableFenceSnapshot {
                table: table.clone(),
                cluster_version: fence.cluster,
                shard_versions: fence.shard.clone(),
            })
            .collect();
        fences.sort_by(|a, b| a.table.cmp(&b.table));
        RouterStatsSnapshot {
            party: inner.party,
            queries: inner.telemetry.queries.load(Ordering::Relaxed),
            fence_retries: inner.telemetry.fence_retries.load(Ordering::Relaxed),
            fence_lagged: inner.telemetry.fence_lagged.load(Ordering::Relaxed),
            updates_staged: inner.telemetry.updates_staged.load(Ordering::Relaxed),
            updates_flipped: inner.telemetry.updates_flipped.load(Ordering::Relaxed),
            shards: inner.conns.iter().map(ShardConn::snapshot).collect(),
            fences,
        }
    }
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("party", &self.inner.party)
            .field("shards", &self.inner.conns.len())
            .field("tables", &names(&self.inner.tables))
            .finish()
    }
}

fn names(tables: &[CatalogEntry]) -> Vec<&str> {
    tables.iter().map(|entry| entry.name.as_str()).collect()
}

fn error_reply(code: ErrorCode, shed: bool, query_id: u64, message: String) -> WireMessage {
    WireMessage::Error(ErrorReply {
        code,
        shed,
        min_version: 0,
        max_version: 0,
        query_id,
        message: bounded_detail(message),
    })
}

/// Map a back-haul failure onto the client-visible typed reply.
fn error_to_reply(err: ClusterError, shed: bool, query_id: u64) -> WireMessage {
    let code = if shed {
        ErrorCode::Shed
    } else {
        ErrorCode::Protocol
    };
    error_reply(code, shed, query_id, err.to_string())
}
