//! Static cluster membership and router tuning knobs.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use pir_wire::Dialer;

use crate::error::ClusterError;

/// The replica endpoints of one shard-owner.
///
/// Replicas are interchangeable: each hosts the same masked table copy, so
/// the router holds one live connection per shard and rotates to the next
/// replica when it fails. Order is the failover preference order.
#[derive(Clone)]
pub struct ShardEndpoints {
    /// Dialers for this shard's replicas, in failover preference order.
    pub replicas: Vec<Arc<dyn Dialer>>,
}

impl ShardEndpoints {
    /// Endpoints from a replica dialer list.
    #[must_use]
    pub fn new(replicas: Vec<Arc<dyn Dialer>>) -> Self {
        Self { replicas }
    }

    /// A single-replica shard (no failover target).
    #[must_use]
    pub fn single(replica: Arc<dyn Dialer>) -> Self {
        Self {
            replicas: vec![replica],
        }
    }
}

impl fmt::Debug for ShardEndpoints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let described: Vec<String> = self.replicas.iter().map(|d| d.describe()).collect();
        f.debug_struct("ShardEndpoints")
            .field("replicas", &described)
            .finish()
    }
}

/// Static membership for one party's shard set.
///
/// Shard order is load-bearing: shard `i` here must be provisioned with
/// [`ShardMap::mask_table`](crate::ShardMap::mask_table) view `i` — the
/// router has no way to detect a permuted deployment (every masked copy
/// shares the catalog schema) and would silently aggregate wrong rows.
#[derive(Clone, Debug)]
pub struct ClusterMembership {
    /// One endpoint set per shard-owner, in shard-index order.
    pub shards: Vec<ShardEndpoints>,
}

impl ClusterMembership {
    /// Membership from per-shard endpoint sets.
    #[must_use]
    pub fn new(shards: Vec<ShardEndpoints>) -> Self {
        Self { shards }
    }

    /// Number of shard-owners.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Reject memberships the router cannot serve from.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] when there are no shards or a shard has no
    /// replica endpoints.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.shards.is_empty() {
            return Err(ClusterError::Config(
                "membership must name at least one shard".into(),
            ));
        }
        for (shard, endpoints) in self.shards.iter().enumerate() {
            if endpoints.replicas.is_empty() {
                return Err(ClusterError::Config(format!(
                    "shard {shard} has no replica endpoints"
                )));
            }
        }
        Ok(())
    }
}

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// How often the background prober checks each shard's back-haul
    /// connection (and pre-dials disconnected shards). `None` disables
    /// probing: dead replicas are then discovered only by the queries that
    /// hit them.
    pub probe_interval: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            probe_interval: Some(Duration::from_millis(100)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_wire::{PirTransport, WireError};

    fn dead_dialer() -> Arc<dyn Dialer> {
        Arc::new(|| -> Result<Box<dyn PirTransport>, WireError> {
            Err(WireError::ConnectionClosed)
        })
    }

    #[test]
    fn empty_memberships_are_rejected() {
        assert!(matches!(
            ClusterMembership::new(Vec::new()).validate(),
            Err(ClusterError::Config(_))
        ));
        let membership = ClusterMembership::new(vec![
            ShardEndpoints::single(dead_dialer()),
            ShardEndpoints::new(Vec::new()),
        ]);
        match membership.validate() {
            Err(ClusterError::Config(detail)) => assert!(detail.contains("shard 1")),
            other => panic!("expected config error, got {other:?}"),
        }
    }

    #[test]
    fn debug_uses_dialer_descriptions() {
        let membership = ClusterMembership::new(vec![ShardEndpoints::single(dead_dialer())]);
        assert!(format!("{membership:?}").contains("endpoint"));
        membership.validate().unwrap();
        assert_eq!(membership.shards(), 1);
    }
}
