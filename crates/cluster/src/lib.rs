//! `pir-cluster` — multi-node sharded PIR serving.
//!
//! One GPU server per party stops scaling when the table outgrows a box.
//! This crate adds the cluster tier: each party's rows are partitioned
//! across *shard-owner* processes (each running the unmodified serving
//! runtime and wire frontend), and a per-party [`ClusterRouter`] owns the
//! client-facing endpoint, fanning every query out over the v2 wire
//! protocol as back-haul and summing the returned share vectors so the
//! cluster answers as one giant server.
//!
//! # Why summing works
//!
//! The answer share is a linear reduction — `Σ_r dpf(r) · t(r)` over
//! wrapping `u32` lanes — so zeroed rows contribute nothing. Each shard is
//! provisioned with the **full-shape** table with every non-owned row
//! zeroed ([`ShardMap::mask_table`]); its ordinary answer to the client's
//! ordinary key projection is therefore an additive partial share, and the
//! lane-wise wrapping sum over shards is bit-identical to the unsharded
//! answer. No shard-aware client, key-splitting, or runtime change exists
//! anywhere: a single-process deployment is just the 1-shard instance.
//!
//! The partition reuses the multi-GPU split rule
//! ([`shard_split_bits`](pir_protocol::shard_split_bits)): contiguous DPF
//! subtrees striped over shards, clamped to the real table
//! ([`shard_owned_ranges`](pir_protocol::shard_owned_ranges)).
//!
//! # What the tier guarantees
//!
//! * **Privacy unchanged** — one router per party sees only that party's
//!   key projection; nothing in this crate can represent a key pair.
//! * **Health-checked failover** — each shard has a replica list; a dead
//!   replica is redialed around mid-call (each replica at most once per
//!   call), a background prober keeps connections warm, and only a shard
//!   with *no* live replica degrades to the typed
//!   [`ClusterError::ShardUnavailable`], surfaced to clients as a
//!   shed-flagged (retry-later) error.
//! * **Reload fence** — `update_entry` is two-phase (stage on every
//!   replica of the owning shard, then flip the per-table fence); a shard
//!   whose v2 response stamp lags the fence is re-asked exactly once, and
//!   every aggregate is stamped with a position-dependent digest of the
//!   per-shard version vector, so the client's existing cross-party stamp
//!   comparison detects — and transparently retries — any reconstruction
//!   that would mix table versions (see [`ClusterRouter`]).
//! * **Telemetry** — [`ClusterRouter::stats`] snapshots per-shard
//!   in-flight/latency/failover counters and per-table fence state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backhaul;
pub mod config;
pub mod error;
pub mod map;
pub mod router;
pub mod stats;

pub use config::{ClusterConfig, ClusterMembership, ShardEndpoints};
pub use error::ClusterError;
pub use map::ShardMap;
pub use router::ClusterRouter;
pub use stats::{RouterStatsSnapshot, ShardStatsSnapshot, TableFenceSnapshot};
