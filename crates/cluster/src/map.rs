//! The shard map: which shard-owner serves which index-bit ranges, and the
//! masked table views the owners are provisioned with.

use std::ops::Range;

use pir_protocol::{shard_owned_ranges, shard_split_bits, PirTable};

use crate::error::ClusterError;

/// The static decomposition of one table across shard-owners.
///
/// Derived from `shard_split_bits`, the same rule the in-process multi-GPU
/// engine uses for devices: the padded power-of-two DPF domain is cut into
/// `1 << split_bits` contiguous subtrees and subtree `t` belongs to shard
/// `t % shards`. Because the reduction is linear, a shard-owner hosting the
/// full-shape table with every non-owned row zeroed computes an *additive
/// partial share*; the router sums the shards' answers lane-wise (wrapping)
/// and the total equals the unsharded answer bit-exactly.
#[derive(Clone, Debug)]
pub struct ShardMap {
    entries: u64,
    shards: usize,
    split_bits: u32,
    domain_bits: u32,
    ranges: Vec<Vec<Range<u64>>>,
}

impl ShardMap {
    /// Build the map for a table of `entries` rows over `shards` owners.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Config`] when the split rule rejects the
    /// pair (zero shards, or a domain too shallow for that many subtrees).
    pub fn new(entries: u64, shards: usize) -> Result<Self, ClusterError> {
        let split_bits = shard_split_bits(entries, shards)
            .map_err(|err| ClusterError::Config(err.to_string()))?;
        let ranges = shard_owned_ranges(entries, shards)
            .map_err(|err| ClusterError::Config(err.to_string()))?;
        let domain_bits = if entries <= 1 {
            0
        } else {
            64 - (entries - 1).leading_zeros()
        };
        Ok(Self {
            entries,
            shards,
            split_bits,
            domain_bits,
            ranges,
        })
    }

    /// Number of rows in the (unpadded) table.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of shard-owners.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Prefix bits the DPF domain is split on.
    #[must_use]
    pub fn split_bits(&self) -> u32 {
        self.split_bits
    }

    /// The row ranges `shard` owns (clamped to the real table).
    #[must_use]
    pub fn owned_ranges(&self, shard: usize) -> &[Range<u64>] {
        &self.ranges[shard]
    }

    /// The shard that owns row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the table (callers validate against the
    /// schema first).
    #[must_use]
    pub fn owner_of(&self, index: u64) -> usize {
        assert!(index < self.entries, "row {index} outside the table");
        if self.split_bits == 0 {
            return 0;
        }
        let subtree = index >> (self.domain_bits - self.split_bits);
        subtree as usize % self.shards
    }

    /// Whether `shard` owns row `index`.
    #[must_use]
    pub fn owns(&self, shard: usize, index: u64) -> bool {
        self.ranges[shard]
            .iter()
            .any(|range| range.contains(&index))
    }

    /// The view `shard` is provisioned with: the full-shape table with
    /// every row outside the shard's owned ranges zeroed. Serving it
    /// through an *unmodified* runtime yields the shard's additive partial
    /// share for any full-domain query key.
    #[must_use]
    pub fn mask_table(&self, table: &PirTable, shard: usize) -> PirTable {
        assert_eq!(
            table.entries(),
            self.entries,
            "table shape disagrees with the shard map"
        );
        let owned = &self.ranges[shard];
        let mut cached_row = u64::MAX;
        let mut cache: Vec<u8> = Vec::new();
        PirTable::generate(table.entries(), table.entry_bytes(), |row, offset| {
            if !owned.iter().any(|range| range.contains(&row)) {
                return 0;
            }
            if row != cached_row {
                cache = table.entry(row);
                cached_row = row;
            }
            cache[offset]
        })
    }

    /// All shards' masked views, in shard order (the provisioning helper).
    #[must_use]
    pub fn provision(&self, table: &PirTable) -> Vec<PirTable> {
        (0..self.shards)
            .map(|shard| self.mask_table(table, shard))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(row: u64, offset: usize) -> u8 {
        (row as u8).wrapping_mul(11).wrapping_add(offset as u8)
    }

    #[test]
    fn owner_of_agrees_with_owned_ranges() {
        for shards in [1usize, 2, 3, 5] {
            let map = ShardMap::new(100, shards).unwrap();
            for row in 0..100u64 {
                let owner = map.owner_of(row);
                assert!(map.owns(owner, row), "row {row} shards {shards}");
                for other in (0..shards).filter(|&s| s != owner) {
                    assert!(!map.owns(other, row));
                }
            }
        }
    }

    #[test]
    fn masked_views_cover_the_table_without_overlap() {
        let table = PirTable::generate(37, 6, fill);
        let map = ShardMap::new(37, 3).unwrap();
        let views = map.provision(&table);
        assert_eq!(views.len(), 3);
        for row in 0..37u64 {
            let mut holders = 0;
            for (shard, view) in views.iter().enumerate() {
                let value = view.entry(row);
                if map.owns(shard, row) {
                    assert_eq!(value, table.entry(row));
                    holders += 1;
                } else {
                    assert!(value.iter().all(|&b| b == 0), "row {row} shard {shard}");
                }
            }
            assert_eq!(holders, 1);
        }
    }

    #[test]
    fn singleton_shard_is_the_whole_table() {
        let table = PirTable::generate(16, 4, fill);
        let map = ShardMap::new(16, 1).unwrap();
        assert_eq!(map.mask_table(&table, 0), table);
        assert_eq!(map.owner_of(15), 0);
    }

    #[test]
    fn invalid_splits_are_config_errors() {
        assert!(matches!(ShardMap::new(4, 64), Err(ClusterError::Config(_))));
        assert!(matches!(ShardMap::new(16, 0), Err(ClusterError::Config(_))));
    }
}
